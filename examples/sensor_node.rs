//! A solar-powered environmental sensor node — the application class the
//! paper's introduction motivates (sensor nodes where replacing
//! batteries is impracticable).
//!
//! The node samples sensors (short period), aggregates (medium period),
//! and transmits (long period), powered by a day/night solar source with
//! Markov-modulated weather. The policy only sees an online slotted-EWMA
//! predictor — no oracle — so this exercises the realistic prediction
//! path.
//!
//! ```sh
//! cargo run --release --example sensor_node
//! ```

use harvest_rt::energy::predictor::EwmaSlotPredictor;
use harvest_rt::prelude::*;

fn main() {
    // One simulated "day" is 200 time units; run a three-week mission.
    let day = 200i64;
    let horizon_days = 21i64;
    let horizon = SimDuration::from_whole_units(day * horizon_days);

    // Clear-sky day/night source, scaled by a sticky weather chain.
    let clear_sky = DayNightSource::new(
        4.0,
        0.05,
        SimDuration::from_whole_units(day),
        SimDuration::from_whole_units(day / 2),
    );
    let mut weather = MarkovWeatherSource::with_default_attenuation(clear_sky, 0.97);
    let profile = sample_profile(
        &mut weather,
        SimTime::ZERO,
        horizon,
        SimDuration::from_whole_units(1),
        2024,
    )
    .expect("valid sampling grid");
    println!(
        "harvest: mean {:.2}, peak {:.2} power units over {} days",
        profile.domain_mean(),
        profile.domain_max(),
        horizon_days
    );

    // The node's firmware tasks (WCET at full speed, in time units).
    let tasks = TaskSet::new(vec![
        Task::periodic_implicit(SimDuration::from_whole_units(10), 0.8), // sense
        Task::periodic_implicit(SimDuration::from_whole_units(50), 6.0), // aggregate
        Task::periodic_implicit(SimDuration::from_whole_units(200), 30.0), // transmit
    ]);
    println!(
        "workload: U = {:.2} across {} tasks",
        tasks.utilization(),
        tasks.len()
    );
    println!();

    // A modest supercapacitor.
    let storage = StorageSpec::ideal(300.0);

    println!("policy        miss-rate  stall-time  overflow  final-energy");
    println!("--------------------------------------------------------------");
    for policy in [PolicyKind::Edf, PolicyKind::Lsa, PolicyKind::EaDvfs] {
        let config = SystemConfig::new(presets::xscale(), storage, horizon);
        // Online predictor: one-day period, 20 slots, α = 0.3.
        let slots = 20usize;
        let period = SimDuration::from_whole_units(day);
        let predictor = EwmaSlotPredictor::new(period, slots, 0.3);
        let result = simulate(
            config,
            &tasks,
            profile.clone(),
            policy.build(),
            Box::new(predictor),
        );
        println!(
            "{:12}  {:9.4}  {:10.1}  {:8.1}  {:12.1}",
            policy.name(),
            result.miss_rate(),
            result.stall_time,
            result.energy.overflow,
            result.energy.final_level,
        );
    }
    println!();
    println!("EA-DVFS trades idle slack for lower power, so it should waste less");
    println!("energy to overflow and miss fewer deadlines through cloudy spells.");
}
