//! Trace-driven run: replay a recorded harvest-power trace (here a
//! synthetic stand-in for a Heliomote-style measurement log) and inspect
//! the full scheduling trace of one EA-DVFS run.
//!
//! ```sh
//! cargo run --example trace_driven
//! ```

use harvest_rt::core::trace::TraceEvent;
use harvest_rt::prelude::*;

fn main() {
    // A "measured" 100-sample power log: morning ramp, noon plateau with
    // a cloud dip, afternoon decay. Each sample holds for 2 time units;
    // the trace repeats (cyclic replay).
    let mut log = Vec::new();
    for i in 0..30 {
        log.push(4.0 * i as f64 / 30.0); // ramp up
    }
    for i in 0..40 {
        let cloud = if (15..25).contains(&i) { 0.3 } else { 1.0 };
        log.push(4.0 * cloud); // plateau with a cloud dip
    }
    for i in 0..30 {
        log.push(4.0 * (30 - i) as f64 / 30.0); // ramp down
    }
    let source = TraceSource::from_samples(SimDuration::from_whole_units(2), log, true)
        .expect("valid trace");
    let horizon = SimDuration::from_whole_units(400); // two trace cycles
    let profile = sample_profile(
        &mut { source },
        SimTime::ZERO,
        horizon,
        SimDuration::from_whole_units(1),
        0,
    )
    .expect("valid grid");

    let tasks = TaskSet::new(vec![
        Task::periodic_implicit(SimDuration::from_whole_units(20), 4.0),
        Task::periodic_implicit(SimDuration::from_whole_units(50), 8.0),
    ]);
    let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(150.0), horizon)
        .with_initial_level(40.0)
        .with_trace();

    let result = simulate(
        config,
        &tasks,
        profile.clone(),
        Box::new(EaDvfsScheduler::new()),
        Box::new(OraclePredictor::new(profile)),
    );

    println!("trace-driven EA-DVFS run: {} events", result.trace.len());
    println!();
    let mut slow_starts = 0;
    let mut full_starts = 0;
    for (t, ev) in result.trace.iter().take(40) {
        let line = match ev {
            TraceEvent::Released {
                job,
                deadline,
                task,
            } => {
                format!("release job {} of task {task} (deadline {deadline})", job.0)
            }
            TraceEvent::Started { job, level } => format!("run job {} at level {level}", job.0),
            TraceEvent::Completed { job } => format!("complete job {}", job.0),
            TraceEvent::Missed { job } => format!("MISS job {}", job.0),
            TraceEvent::Idled { until: Some(u) } => format!("idle until {u}"),
            TraceEvent::Idled { until: None } => "idle".into(),
            TraceEvent::Stalled { .. } => "stall: storage empty".into(),
            TraceEvent::HarvestFault { factor, active } => {
                format!("harvest fault: factor {factor} (active: {active})")
            }
            TraceEvent::LevelLockout { level, locked } => {
                format!("level {level} lockout: {locked}")
            }
        };
        println!("  {t:>12}  {line}");
    }
    println!(
        "  ... ({} more events)",
        result.trace.len().saturating_sub(40)
    );
    for (_, ev) in &result.trace {
        if let TraceEvent::Started { level, .. } = ev {
            if *level == 4 {
                full_starts += 1;
            } else {
                slow_starts += 1;
            }
        }
    }
    println!();
    println!(
        "summary: {} released, {} met, {} missed; {} slow starts vs {} full-speed starts",
        result.released(),
        result.completed_in_time(),
        result.missed(),
        slow_starts,
        full_starts
    );
    println!(
        "energy: harvested {:.0}, consumed {:.0}, overflowed {:.0}, final level {:.1}",
        result.energy.harvested,
        result.energy.consumed,
        result.energy.overflow,
        result.energy.final_level
    );
}
