//! Quickstart: compare LSA and EA-DVFS on the paper's §5.1 scenario.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use harvest_rt::prelude::*;

fn main() {
    // The paper's world in one line: XScale-class CPU, eq. 13 solar
    // source, five periodic tasks scaled to 40% utilization, an ideal
    // 500-unit store, 10 000 simulated time units.
    let scenario = PaperScenario::new(0.4, 500.0);

    println!("policy        released  met  missed  miss-rate  final-energy");
    println!("-------------------------------------------------------------");
    for policy in [PolicyKind::Edf, PolicyKind::Lsa, PolicyKind::EaDvfs] {
        // Average a handful of seeded trials.
        let trials = 10;
        let (mut released, mut met, mut missed, mut rate, mut level) = (0, 0, 0, 0.0, 0.0);
        for seed in 0..trials {
            let r = scenario.run(policy, seed);
            released += r.released();
            met += r.completed_in_time();
            missed += r.missed();
            rate += r.miss_rate() / trials as f64;
            level += r.energy.final_level / trials as f64;
        }
        println!(
            "{:12}  {released:8}  {met:3}  {missed:6}  {rate:9.4}  {level:12.1}",
            policy.name()
        );
    }
    println!();
    println!("EA-DVFS should show the lowest miss rate and the highest remaining energy.");
}
