//! Offline analysis before deploying: is the workload schedulable, is
//! the source sustainable, and how much storage does the worst harvest
//! lull require? Then confirm the verdicts by simulation.
//!
//! ```sh
//! cargo run --release --example offline_analysis
//! ```

use harvest_rt::prelude::*;
use harvest_rt::task::analysis::{
    edf_schedulable, is_sustainable, mean_power_demand, worst_case_deficit, Schedulability,
};

fn main() {
    // A candidate firmware workload.
    let tasks = TaskSet::new(vec![
        Task::periodic_implicit(SimDuration::from_whole_units(10), 1.2),
        Task::periodic_implicit(SimDuration::from_whole_units(25), 5.0),
        Task::periodic(
            SimTime::ZERO,
            SimDuration::from_whole_units(50),
            SimDuration::from_whole_units(30), // constrained deadline
            8.0,
        ),
    ]);
    let cpu = presets::xscale();

    println!(
        "workload: {} tasks, U = {:.3}",
        tasks.len(),
        tasks.utilization()
    );

    // 1. Timing: EDF processor-demand analysis.
    match edf_schedulable(&tasks) {
        Schedulability::Schedulable => println!("timing  : EDF-schedulable at full speed"),
        Schedulability::Unschedulable { witness } => {
            println!("timing  : NOT schedulable (witness window {witness:?})");
            return;
        }
    }

    // 2. Energy: sustainability against a day/night site profile.
    let mut site = DayNightSource::new(
        4.5,
        0.1,
        SimDuration::from_whole_units(200),
        SimDuration::from_whole_units(90),
    );
    let profile = sample_profile(
        &mut site,
        SimTime::ZERO,
        SimDuration::from_whole_units(4_000),
        SimDuration::from_whole_units(1),
        0,
    )
    .expect("valid grid");
    let demand = mean_power_demand(&tasks, cpu.max_power());
    println!(
        "energy  : site mean {:.2} vs demand {:.2} -> sustainable: {}",
        profile.domain_mean(),
        demand,
        is_sustainable(&profile, &tasks, cpu.max_power())
    );

    // 3. Storage sizing: worst-case lull deficit at full-speed demand.
    let deficit = worst_case_deficit(&profile, demand);
    let capacity = deficit * 1.5; // engineering margin
    println!("storage : worst-case deficit {deficit:.1} -> provision C = {capacity:.1}");

    // 4. Confirm by simulation with EA-DVFS.
    let config = SystemConfig::new(
        cpu,
        StorageSpec::ideal(capacity),
        SimDuration::from_whole_units(4_000),
    );
    let result = simulate(
        config,
        &tasks,
        profile.clone(),
        Box::new(EaDvfsScheduler::new()),
        Box::new(OraclePredictor::new(profile)),
    );
    println!(
        "simulate: {} released, {} missed (miss rate {:.4}), {} DVFS switches",
        result.released(),
        result.missed(),
        result.miss_rate(),
        result.switches
    );
    println!(
        "          energy harvested {:.0}, consumed {:.0}, final level {:.1}",
        result.energy.harvested, result.energy.consumed, result.energy.final_level
    );
}
