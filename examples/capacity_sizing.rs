//! Storage sizing: how big a supercapacitor does a node need to never
//! miss a deadline? (The engineering question behind the paper's
//! Table 1.)
//!
//! ```sh
//! cargo run --release --example capacity_sizing
//! ```

use harvest_rt::exp::figures::min_zero_miss_capacity;
use harvest_rt::prelude::*;

fn main() {
    let trials = 5; // task sets every candidate capacity must satisfy
    let threads = 4;

    println!("minimum zero-miss storage capacity (over {trials} random task sets)");
    println!();
    println!("   U    Cmin(LSA)  Cmin(EA-DVFS)  ratio");
    println!("------------------------------------------");
    for u in [0.2, 0.4, 0.6, 0.8] {
        let lsa = min_zero_miss_capacity(PolicyKind::Lsa, u, trials, threads, 1e7, 0.01);
        let ea = min_zero_miss_capacity(PolicyKind::EaDvfs, u, trials, threads, 1e7, 0.01);
        println!("  {u:.1}  {lsa:9.0}  {ea:13.0}  {:5.2}", lsa / ea);
    }
    println!();
    println!("Paper's Table 1 reports ratios 2.5 / 1.33 / 1.05 / 1.01: the cheaper");
    println!("the workload, the more storage EA-DVFS saves the hardware designer.");
}
