//! The paper's two worked examples, step by step.
//!
//! * §2 / Fig. 1 — LSA burns the slack of τ1 at full power and starves
//!   τ2; EA-DVFS stretches τ1 and meets both deadlines.
//! * §4.3 / Fig. 3 — stretching *greedily* (no `s2` cap) starves τ2 even
//!   though the energy suffices; EA-DVFS's cap saves it.
//!
//! ```sh
//! cargo run --example motivational
//! ```

use harvest_rt::core::trace::TraceEvent;
use harvest_rt::prelude::*;

fn show(label: &str, result: &SimResult) {
    println!("  {label}:");
    for (t, ev) in &result.trace {
        let what = match ev {
            TraceEvent::Released { job, deadline, .. } => {
                format!("release τ{} (deadline {deadline})", job.0 + 1)
            }
            TraceEvent::Started { job, level } => {
                format!("start τ{} at level {level}", job.0 + 1)
            }
            TraceEvent::Completed { job } => format!("complete τ{}", job.0 + 1),
            TraceEvent::Missed { job } => format!("MISS τ{}", job.0 + 1),
            TraceEvent::Idled { until: Some(u) } => format!("idle until {u}"),
            TraceEvent::Idled { until: None } => "idle".into(),
            TraceEvent::Stalled { .. } => "stall (storage empty)".into(),
            TraceEvent::HarvestFault { factor, .. } => format!("harvest fault (factor {factor})"),
            TraceEvent::LevelLockout { level, locked } => {
                format!("level {level} lockout: {locked}")
            }
        };
        println!("    {t:>12}  {what}");
    }
    println!(
        "    => missed {} of {} jobs",
        result.missed(),
        result.released()
    );
    println!();
}

fn main() {
    // ---------- §2 / Fig. 1 ----------
    println!("Section 2 example: τ1=(0,16,4), τ2=(5,16,1.5), EC(0)=24, Ps=0.5, Pmax=8");
    let tasks = TaskSet::new(vec![
        Task::once(SimTime::ZERO, SimDuration::from_whole_units(16), 4.0),
        Task::once(
            SimTime::from_whole_units(5),
            SimDuration::from_whole_units(16),
            1.5,
        ),
    ]);
    let profile = PiecewiseConstant::constant(0.5);
    let config = SystemConfig::new(
        presets::two_speed_example(),
        StorageSpec::ideal(1_000.0),
        SimDuration::from_whole_units(30),
    )
    .with_initial_level(24.0)
    .with_trace();

    let lsa = simulate(
        config.clone(),
        &tasks,
        profile.clone(),
        Box::new(LazyScheduler::new()),
        Box::new(OraclePredictor::new(profile.clone())),
    );
    show("LSA (runs τ1 at full power over [12,16), τ2 starves)", &lsa);

    let ea = simulate(
        config,
        &tasks,
        profile.clone(),
        Box::new(EaDvfsScheduler::new()),
        Box::new(OraclePredictor::new(profile)),
    );
    show("EA-DVFS (stretches τ1 at half speed over [4,12))", &ea);

    // ---------- §4.3 / Fig. 3 ----------
    println!("Section 4.3 example: τ2 deadline tightened to 12; quarter-speed level available");
    let tasks = TaskSet::new(vec![
        Task::once(SimTime::ZERO, SimDuration::from_whole_units(16), 4.0),
        Task::once(
            SimTime::from_whole_units(5),
            SimDuration::from_whole_units(12),
            1.5,
        ),
    ]);
    let profile = PiecewiseConstant::constant(0.0);
    let config = SystemConfig::new(
        presets::quarter_speed_example(),
        StorageSpec::ideal(1_000.0),
        SimDuration::from_whole_units(30),
    )
    .with_initial_level(32.0)
    .with_trace();

    let greedy = simulate(
        config.clone(),
        &tasks,
        profile.clone(),
        Box::new(GreedyStretchScheduler::new()),
        Box::new(OraclePredictor::new(profile.clone())),
    );
    show("greedy stretch (no s2 cap: τ1 crawls, τ2 starves)", &greedy);

    let ea = simulate(
        config,
        &tasks,
        profile.clone(),
        Box::new(EaDvfsScheduler::new()),
        Box::new(OraclePredictor::new(profile)),
    );
    show(
        "EA-DVFS (switches τ1 to full speed at s2=12: both met)",
        &ea,
    );
}
