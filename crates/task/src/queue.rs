//! EDF-ordered ready queue.

use harvest_sim::time::SimTime;

use crate::job::{Job, JobId};

/// Sentinel marking a job id as not currently queued.
const ABSENT: u32 = u32::MAX;

/// Number of children per heap node.
const ARITY: usize = 4;

/// The ready queue `Q` of the paper's scheduling loop (Fig. 4): all
/// released but unfinished jobs, ordered earliest-deadline-first with
/// FIFO tie-breaking.
///
/// Internally an indexed 4-ary min-heap on `(deadline, id)` plus a
/// position table indexed directly by job id, giving O(log n) push and
/// pop, O(1) [`contains`](Self::contains), O(log n)
/// [`remove`](Self::remove), and an allocation-free
/// [`drain_expired_into`](Self::drain_expired_into). Job ids are dense
/// release sequence numbers in the simulator, so direct indexing costs
/// O(max id) words — no hashing, no ordered-map rebalancing.
///
/// # Examples
///
/// ```
/// use harvest_task::job::{Job, JobId};
/// use harvest_task::queue::EdfQueue;
/// use harvest_sim::time::SimTime;
///
/// let mut q = EdfQueue::new();
/// q.push(Job::new(JobId(0), 0, SimTime::ZERO, SimTime::from_whole_units(16), 4.0));
/// q.push(Job::new(JobId(1), 1, SimTime::ZERO, SimTime::from_whole_units(12), 1.0));
/// // The deadline-12 job has priority.
/// assert_eq!(q.peek().unwrap().id(), JobId(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EdfQueue {
    /// Jobs arranged as a 4-ary min-heap on `(deadline, id)`.
    heap: Vec<Job>,
    /// `pos[id] == i` iff the job with that id sits at `heap[i]`.
    pos: Vec<u32>,
}

// Two queues are equal when they hold the same jobs — the heap's
// internal arrangement may differ between histories that queued the
// same set.
impl PartialEq for EdfQueue {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl EdfQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EdfQueue {
            heap: Vec::new(),
            pos: Vec::new(),
        }
    }

    /// Number of ready jobs.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no job is ready.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes every job while keeping the heap and position-table
    /// allocations, so a pooled simulation context can replay its next
    /// run without reallocating. A cleared queue behaves exactly like a
    /// fresh one (job ids restart densely from zero each run).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pos.clear();
    }

    /// Number of jobs the heap can hold without reallocating. Retained
    /// across [`clear`](Self::clear); bound it with
    /// [`shrink_to`](Self::shrink_to).
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Shrinks the retained heap and position-table storage toward
    /// `limit` entries (never below their current lengths).
    pub fn shrink_to(&mut self, limit: usize) {
        self.heap.shrink_to(limit);
        self.pos.shrink_to(limit);
    }

    /// Inserts a job.
    ///
    /// # Panics
    ///
    /// Panics if a job with the same id is already queued (ids are
    /// unique by construction, so this indicates a caller bug).
    pub fn push(&mut self, job: Job) {
        let id = job.id().0 as usize;
        if id >= self.pos.len() {
            self.pos.resize(id + 1, ABSENT);
        }
        assert!(
            self.pos[id] == ABSENT,
            "job re-queued while already present"
        );
        let i = self.heap.len();
        self.heap.push(job);
        self.pos[id] = i as u32;
        self.sift_up(i);
    }

    /// The highest-priority (earliest-deadline) job, if any.
    pub fn peek(&self) -> Option<&Job> {
        self.heap.first()
    }

    /// Mutable access to the highest-priority job (its deadline and id —
    /// the ordering key — are immutable, so mutation cannot corrupt the
    /// queue).
    pub fn peek_mut(&mut self) -> Option<&mut Job> {
        self.heap.first_mut()
    }

    /// `true` if a job with the given id is queued.
    pub fn contains(&self, id: JobId) -> bool {
        self.pos.get(id.0 as usize).is_some_and(|&p| p != ABSENT)
    }

    /// Removes and returns the highest-priority job.
    pub fn pop(&mut self) -> Option<Job> {
        if self.heap.is_empty() {
            None
        } else {
            Some(self.remove_at(0))
        }
    }

    /// Removes a specific job by id.
    pub fn remove(&mut self, id: JobId) -> Option<Job> {
        let &p = self.pos.get(id.0 as usize)?;
        if p == ABSENT {
            return None;
        }
        Some(self.remove_at(p as usize))
    }

    /// Iterates jobs in priority order.
    ///
    /// The heap is only partially ordered, so this sorts an index
    /// permutation first — O(n log n), meant for inspection and tests,
    /// not the scheduling hot path.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        let mut order: Vec<usize> = (0..self.heap.len()).collect();
        order.sort_unstable_by_key(|&i| self.key(i));
        order.into_iter().map(move |i| &self.heap[i])
    }

    /// Removes every job whose absolute deadline is at or before `now`
    /// (deadline misses under the abort policy), appending them to
    /// `out` in deadline order. Allocates nothing beyond `out`'s own
    /// growth.
    pub fn drain_expired_into(&mut self, now: SimTime, out: &mut Vec<Job>) {
        while let Some(head) = self.heap.first() {
            if head.absolute_deadline() > now {
                break;
            }
            let job = self.remove_at(0);
            out.push(job);
        }
    }

    /// Convenience wrapper over
    /// [`drain_expired_into`](Self::drain_expired_into) that collects
    /// into a fresh `Vec`.
    pub fn drain_expired(&mut self, now: SimTime) -> Vec<Job> {
        let mut out = Vec::new();
        self.drain_expired_into(now, &mut out);
        out
    }

    /// Total remaining full-speed work across all ready jobs.
    pub fn total_remaining_work(&self) -> f64 {
        self.heap.iter().map(Job::remaining_work).sum()
    }

    /// Ordering key of the job at heap index `i`.
    #[inline]
    fn key(&self, i: usize) -> (SimTime, JobId) {
        let j = &self.heap[i];
        (j.absolute_deadline(), j.id())
    }

    /// Records that the job at heap index `i` now lives there.
    #[inline]
    fn set_pos(&mut self, i: usize) {
        let id = self.heap[i].id().0 as usize;
        self.pos[id] = i as u32;
    }

    /// Detaches the job at heap index `i`, filling the vacancy with the
    /// last element and sifting it to restore heap order.
    fn remove_at(&mut self, i: usize) -> Job {
        let job = self.heap.swap_remove(i);
        self.pos[job.id().0 as usize] = ABSENT;
        if i < self.heap.len() {
            self.set_pos(i);
            // The filler came from the bottom, but after an interior
            // removal it may belong either above or below `i`.
            let rest = self.sift_up(i);
            if rest == i {
                self.sift_down(i);
            }
        }
        job
    }

    /// Moves the job at `i` toward the root until its parent is no
    /// larger, returning its final position.
    fn sift_up(&mut self, mut i: usize) -> usize {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.key(parent) <= self.key(i) {
                break;
            }
            self.heap.swap(i, parent);
            self.set_pos(i);
            i = parent;
        }
        self.set_pos(i);
        i
    }

    /// Moves the job at `i` toward the leaves until no child is smaller.
    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first = i * ARITY + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + ARITY).min(self.heap.len());
            let mut best = first;
            for child in first + 1..last {
                if self.key(child) < self.key(best) {
                    best = child;
                }
            }
            if self.key(i) <= self.key(best) {
                break;
            }
            self.heap.swap(i, best);
            self.set_pos(i);
            i = best;
        }
        self.set_pos(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, deadline: i64, work: f64) -> Job {
        Job::new(
            JobId(id),
            0,
            SimTime::ZERO,
            SimTime::from_whole_units(deadline),
            work,
        )
    }

    #[test]
    fn edf_ordering() {
        let mut q = EdfQueue::new();
        q.push(job(0, 30, 1.0));
        q.push(job(1, 10, 1.0));
        q.push(job(2, 20, 1.0));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|j| j.id().0)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_release_order() {
        let mut q = EdfQueue::new();
        q.push(job(5, 10, 1.0));
        q.push(job(3, 10, 1.0));
        assert_eq!(q.pop().unwrap().id(), JobId(3));
        assert_eq!(q.pop().unwrap().id(), JobId(5));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EdfQueue::new();
        q.push(job(0, 10, 1.0));
        assert_eq!(q.peek().unwrap().id(), JobId(0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn contains_is_exact() {
        let mut q = EdfQueue::new();
        q.push(job(0, 10, 1.0));
        q.push(job(2, 20, 1.0));
        assert!(q.contains(JobId(0)));
        assert!(!q.contains(JobId(1)));
        assert!(q.contains(JobId(2)));
        assert!(!q.contains(JobId(99)), "out-of-range id is absent");
        q.pop();
        assert!(!q.contains(JobId(0)), "popped job is absent");
    }

    #[test]
    fn remove_by_id() {
        let mut q = EdfQueue::new();
        q.push(job(0, 10, 1.0));
        q.push(job(1, 20, 1.0));
        let removed = q.remove(JobId(0)).unwrap();
        assert_eq!(removed.id(), JobId(0));
        assert_eq!(q.len(), 1);
        assert!(q.remove(JobId(99)).is_none());
        assert!(q.remove(JobId(0)).is_none(), "double remove is None");
    }

    #[test]
    fn remove_interior_preserves_order() {
        let mut q = EdfQueue::new();
        for i in 0..32u64 {
            q.push(job(i, 64 - i as i64, 1.0));
        }
        for i in (0..32).step_by(3) {
            assert!(q.remove(JobId(i)).is_some());
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|j| j.id().0)).collect();
        // Deadlines decrease with id, so survivors pop in reverse id order.
        let expected: Vec<u64> = (0..32).rev().filter(|i| i % 3 != 0).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn drain_expired_takes_due_jobs() {
        let mut q = EdfQueue::new();
        q.push(job(0, 10, 1.0));
        q.push(job(1, 20, 1.0));
        q.push(job(2, 30, 1.0));
        let missed = q.drain_expired(SimTime::from_whole_units(20));
        let ids: Vec<u64> = missed.iter().map(|j| j.id().0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drained_jobs_come_back_in_deadline_order() {
        // Regression for the old double-allocation drain: push in
        // scrambled order, drain, and require (deadline, id)-sorted
        // output — reused ids and deadline ties included.
        let mut q = EdfQueue::new();
        let deadlines = [40i64, 10, 30, 10, 20, 50, 20, 10];
        for (i, &d) in deadlines.iter().enumerate() {
            q.push(job(i as u64, d, 1.0));
        }
        let mut out = Vec::new();
        q.drain_expired_into(SimTime::from_whole_units(30), &mut out);
        let keys: Vec<(SimTime, JobId)> = out
            .iter()
            .map(|j| (j.absolute_deadline(), j.id()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "drain must yield deadline order");
        assert_eq!(out.len(), 6, "deadlines 10,10,10,20,20,30 are due");
        assert_eq!(q.len(), 2);
        // A second drain into the same buffer appends after the first.
        q.drain_expired_into(SimTime::from_whole_units(100), &mut out);
        assert_eq!(out.len(), 8);
        assert!(q.is_empty());
    }

    #[test]
    fn iter_yields_priority_order() {
        let mut q = EdfQueue::new();
        q.push(job(2, 30, 1.0));
        q.push(job(0, 10, 1.0));
        q.push(job(1, 20, 1.0));
        let ids: Vec<u64> = q.iter().map(|j| j.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn equality_ignores_heap_layout() {
        // Same jobs reached through different push/pop histories.
        let mut a = EdfQueue::new();
        a.push(job(0, 10, 1.0));
        a.push(job(1, 20, 1.0));
        a.push(job(2, 30, 1.0));

        let mut b = EdfQueue::new();
        b.push(job(3, 5, 1.0));
        b.push(job(2, 30, 1.0));
        b.push(job(1, 20, 1.0));
        b.push(job(0, 10, 1.0));
        b.remove(JobId(3));

        assert_eq!(a, b);
        b.pop();
        assert_ne!(a, b);
    }

    #[test]
    fn ids_are_reusable_after_removal() {
        let mut q = EdfQueue::new();
        q.push(job(0, 10, 1.0));
        q.pop();
        q.push(job(0, 20, 2.0));
        assert_eq!(
            q.peek().unwrap().absolute_deadline(),
            SimTime::from_whole_units(20)
        );
    }

    #[test]
    fn total_remaining_work_sums() {
        let mut q = EdfQueue::new();
        q.push(job(0, 10, 1.5));
        q.push(job(1, 20, 2.5));
        assert_eq!(q.total_remaining_work(), 4.0);
    }

    #[test]
    fn clear_keeps_capacity_and_replays_like_fresh() {
        let mut q = EdfQueue::new();
        for i in 0..64u64 {
            q.push(job(i, (64 - i) as i64, 1.0));
        }
        let warm = q.capacity();
        assert!(warm >= 64);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), warm, "clear keeps the heap allocation");
        assert!(!q.contains(JobId(3)), "cleared ids are absent");
        // Ids restart from zero, exactly like a fresh queue.
        q.push(job(0, 10, 1.0));
        q.push(job(1, 5, 1.0));
        assert_eq!(q.pop().unwrap().id(), JobId(1));
        assert_eq!(q.pop().unwrap().id(), JobId(0));
        q.shrink_to(4);
        assert!(q.capacity() < warm || warm <= 4);
    }

    #[test]
    #[should_panic(expected = "re-queued")]
    fn double_push_panics() {
        let mut q = EdfQueue::new();
        q.push(job(0, 10, 1.0));
        q.push(job(0, 10, 1.0));
    }
}
