//! EDF-ordered ready queue.

use std::collections::BTreeMap;

use harvest_sim::time::SimTime;

use crate::job::{Job, JobId};

/// Priority key: earliest deadline first, ties broken by release order.
type Key = (SimTime, JobId);

/// The ready queue `Q` of the paper's scheduling loop (Fig. 4): all
/// released but unfinished jobs, ordered earliest-deadline-first with
/// FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use harvest_task::job::{Job, JobId};
/// use harvest_task::queue::EdfQueue;
/// use harvest_sim::time::SimTime;
///
/// let mut q = EdfQueue::new();
/// q.push(Job::new(JobId(0), 0, SimTime::ZERO, SimTime::from_whole_units(16), 4.0));
/// q.push(Job::new(JobId(1), 1, SimTime::ZERO, SimTime::from_whole_units(12), 1.0));
/// // The deadline-12 job has priority.
/// assert_eq!(q.peek().unwrap().id(), JobId(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdfQueue {
    jobs: BTreeMap<Key, Job>,
}

impl EdfQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EdfQueue {
            jobs: BTreeMap::new(),
        }
    }

    /// Number of ready jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if no job is ready.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Inserts a job.
    ///
    /// # Panics
    ///
    /// Panics if a job with the same deadline *and* id is already queued
    /// (ids are unique by construction, so this indicates a caller bug).
    pub fn push(&mut self, job: Job) {
        let key = (job.absolute_deadline(), job.id());
        let prev = self.jobs.insert(key, job);
        assert!(prev.is_none(), "job re-queued while already present");
    }

    /// The highest-priority (earliest-deadline) job, if any.
    pub fn peek(&self) -> Option<&Job> {
        self.jobs.values().next()
    }

    /// Mutable access to the highest-priority job (its deadline and id —
    /// the ordering key — are immutable, so mutation cannot corrupt the
    /// queue).
    pub fn peek_mut(&mut self) -> Option<&mut Job> {
        self.jobs.values_mut().next()
    }

    /// `true` if a job with the given id is queued.
    pub fn contains(&self, id: JobId) -> bool {
        self.jobs.keys().any(|&(_, jid)| jid == id)
    }

    /// Removes and returns the highest-priority job.
    pub fn pop(&mut self) -> Option<Job> {
        let key = *self.jobs.keys().next()?;
        self.jobs.remove(&key)
    }

    /// Removes a specific job by id (O(n) scan; queues are small).
    pub fn remove(&mut self, id: JobId) -> Option<Job> {
        let key = *self.jobs.keys().find(|&&(_, jid)| jid == id)?;
        self.jobs.remove(&key)
    }

    /// Iterates jobs in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Removes and returns every job whose absolute deadline is at or
    /// before `now` (deadline misses under the abort policy).
    pub fn drain_expired(&mut self, now: SimTime) -> Vec<Job> {
        let expired: Vec<Key> = self
            .jobs
            .range(..=(now, JobId(u64::MAX)))
            .map(|(&k, _)| k)
            .collect();
        expired
            .into_iter()
            .filter_map(|k| self.jobs.remove(&k))
            .collect()
    }

    /// Total remaining full-speed work across all ready jobs.
    pub fn total_remaining_work(&self) -> f64 {
        self.jobs.values().map(Job::remaining_work).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, deadline: i64, work: f64) -> Job {
        Job::new(
            JobId(id),
            0,
            SimTime::ZERO,
            SimTime::from_whole_units(deadline),
            work,
        )
    }

    #[test]
    fn edf_ordering() {
        let mut q = EdfQueue::new();
        q.push(job(0, 30, 1.0));
        q.push(job(1, 10, 1.0));
        q.push(job(2, 20, 1.0));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|j| j.id().0)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_release_order() {
        let mut q = EdfQueue::new();
        q.push(job(5, 10, 1.0));
        q.push(job(3, 10, 1.0));
        assert_eq!(q.pop().unwrap().id(), JobId(3));
        assert_eq!(q.pop().unwrap().id(), JobId(5));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EdfQueue::new();
        q.push(job(0, 10, 1.0));
        assert_eq!(q.peek().unwrap().id(), JobId(0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn remove_by_id() {
        let mut q = EdfQueue::new();
        q.push(job(0, 10, 1.0));
        q.push(job(1, 20, 1.0));
        let removed = q.remove(JobId(0)).unwrap();
        assert_eq!(removed.id(), JobId(0));
        assert_eq!(q.len(), 1);
        assert!(q.remove(JobId(99)).is_none());
    }

    #[test]
    fn drain_expired_takes_due_jobs() {
        let mut q = EdfQueue::new();
        q.push(job(0, 10, 1.0));
        q.push(job(1, 20, 1.0));
        q.push(job(2, 30, 1.0));
        let missed = q.drain_expired(SimTime::from_whole_units(20));
        let ids: Vec<u64> = missed.iter().map(|j| j.id().0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn total_remaining_work_sums() {
        let mut q = EdfQueue::new();
        q.push(job(0, 10, 1.5));
        q.push(job(1, 20, 2.5));
        assert_eq!(q.total_remaining_work(), 4.0);
    }

    #[test]
    #[should_panic(expected = "re-queued")]
    fn double_push_panics() {
        let mut q = EdfQueue::new();
        q.push(job(0, 10, 1.0));
        q.push(job(0, 10, 1.0));
    }
}
