//! Offline schedulability and energy-feasibility analysis.
//!
//! Timing side: the classical EDF tests — utilization bound for
//! implicit deadlines and the processor-demand criterion for constrained
//! deadlines. Energy side: worst-case deficit of a harvest profile
//! against a constant demand, which lower-bounds the storage a workload
//! needs (the offline counterpart of the paper's Table 1 search).

use harvest_sim::piecewise::PiecewiseConstant;
use harvest_sim::time::SimDuration;

use crate::task::Task;
use crate::taskset::TaskSet;

/// Verdict of a timing-schedulability test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedulability {
    /// The test proves the set schedulable under EDF at full speed.
    Schedulable,
    /// The test proves the set unschedulable.
    Unschedulable {
        /// A witness interval length whose demand exceeds supply, if the
        /// processor-demand test found one.
        witness: Option<SimDuration>,
    },
}

impl Schedulability {
    /// `true` for [`Schedulability::Schedulable`].
    pub fn is_schedulable(&self) -> bool {
        matches!(self, Schedulability::Schedulable)
    }
}

/// EDF demand-bound function `h(t)` of a periodic task: the cumulative
/// work of jobs with both release and deadline inside a window of
/// length `t` (Baruah/Rosier/Howell).
///
/// One-shot tasks contribute their WCET once `t` covers their deadline.
///
/// # Panics
///
/// Panics if `t` is negative.
pub fn demand_bound(task: &Task, t: SimDuration) -> f64 {
    assert!(t >= SimDuration::ZERO, "window must be non-negative");
    let d = task.relative_deadline().as_units();
    let t = t.as_units();
    match task.period() {
        None => {
            if t >= d {
                task.wcet()
            } else {
                0.0
            }
        }
        Some(p) => {
            let p = p.as_units();
            if t < d {
                0.0
            } else {
                (((t - d) / p).floor() + 1.0) * task.wcet()
            }
        }
    }
}

/// Total demand-bound function of a set.
pub fn set_demand_bound(set: &TaskSet, t: SimDuration) -> f64 {
    set.iter().map(|task| demand_bound(task, t)).sum()
}

/// EDF schedulability at full speed.
///
/// * All deadlines ≥ periods (implicit/relaxed): the exact utilization
///   test `U ≤ 1`.
/// * Constrained deadlines: the processor-demand criterion
///   `∀t: h(t) ≤ t`, checked on the testing set of absolute deadlines up
///   to the Baruah bound `U/(1−U) · max(p_i − d_i)` (capped at the
///   hyperperiod when available).
///
/// # Panics
///
/// Panics if the set is empty.
pub fn edf_schedulable(set: &TaskSet) -> Schedulability {
    assert!(!set.is_empty(), "cannot analyse an empty set");
    let u = set.utilization();
    if u > 1.0 + 1e-12 {
        return Schedulability::Unschedulable { witness: None };
    }
    let constrained = set.iter().any(|t| match t.period() {
        Some(p) => t.relative_deadline() < p,
        None => false,
    });
    if !constrained {
        return Schedulability::Schedulable;
    }
    // Testing-set bound.
    let max_slack = set
        .iter()
        .filter_map(|t| {
            t.period()
                .map(|p| (p - t.relative_deadline()).as_units().max(0.0))
        })
        .fold(0.0, f64::max);
    let baruah = if u < 1.0 {
        u / (1.0 - u) * max_slack
    } else {
        f64::INFINITY
    };
    let hyper = set.hyperperiod().map_or(f64::INFINITY, |h| h.as_units());
    let horizon = baruah.min(hyper).min(1e7);
    // Check every absolute deadline in (0, horizon].
    let mut deadlines: Vec<i64> = Vec::new();
    for task in set.iter() {
        let d = task.relative_deadline().as_ticks();
        match task.period() {
            None => deadlines.push(d),
            Some(p) => {
                let mut t = d;
                while (t as f64) / 1e6 <= horizon {
                    deadlines.push(t);
                    t += p.as_ticks();
                }
            }
        }
    }
    deadlines.sort_unstable();
    deadlines.dedup();
    for t in deadlines {
        let window = SimDuration::from_ticks(t);
        if set_demand_bound(set, window) > window.as_units() + 1e-9 {
            return Schedulability::Unschedulable {
                witness: Some(window),
            };
        }
    }
    Schedulability::Schedulable
}

/// Worst-case energy deficit of a harvest profile against a constant
/// `demand` power: the largest `∫_{t1}^{t2} (demand − PS) dt` over all
/// `t1 ≤ t2` inside the profile's explicit domain.
///
/// A store of at least this size (kept full entering the worst window)
/// is necessary for the demand to be continuously servable — the
/// analytic lower bound on the paper's Table 1 capacities.
///
/// # Panics
///
/// Panics if `demand` is negative or not finite.
pub fn worst_case_deficit(profile: &PiecewiseConstant, demand: f64) -> f64 {
    assert!(
        demand.is_finite() && demand >= 0.0,
        "demand must be finite and >= 0"
    );
    // Maximum-subarray (Kadane) over the segment integrals of
    // (demand − PS).
    let mut best = 0.0_f64;
    let mut running = 0.0_f64;
    for seg in profile.segments_between(profile.domain_start(), profile.domain_end()) {
        let deficit = (demand - seg.value) * seg.duration().as_units();
        running = (running + deficit).max(0.0);
        best = best.max(running);
    }
    best
}

/// The long-run power demand of a task set at full speed:
/// `U · P_max`.
pub fn mean_power_demand(set: &TaskSet, max_power: f64) -> f64 {
    set.utilization() * max_power
}

/// `true` if the source's long-run mean power covers the workload's
/// long-run demand — the necessary sustainability condition for
/// perpetual operation (paper §1's "operate perennially").
pub fn is_sustainable(profile: &PiecewiseConstant, set: &TaskSet, max_power: f64) -> bool {
    profile.domain_mean() >= mean_power_demand(set, max_power)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim::piecewise::Extension;
    use harvest_sim::time::SimTime;

    fn d(x: i64) -> SimDuration {
        SimDuration::from_whole_units(x)
    }

    #[test]
    fn demand_bound_implicit_deadline() {
        let t = Task::periodic_implicit(d(10), 2.0);
        assert_eq!(demand_bound(&t, d(0)), 0.0);
        assert_eq!(demand_bound(&t, d(9)), 0.0);
        assert_eq!(demand_bound(&t, d(10)), 2.0);
        assert_eq!(demand_bound(&t, d(25)), 4.0);
        assert_eq!(demand_bound(&t, d(30)), 6.0);
    }

    #[test]
    fn demand_bound_constrained_deadline() {
        let t = Task::periodic(SimTime::ZERO, d(10), d(4), 2.0);
        assert_eq!(demand_bound(&t, d(3)), 0.0);
        assert_eq!(demand_bound(&t, d(4)), 2.0);
        assert_eq!(demand_bound(&t, d(13)), 2.0);
        assert_eq!(demand_bound(&t, d(14)), 4.0);
    }

    #[test]
    fn demand_bound_one_shot() {
        let t = Task::once(SimTime::ZERO, d(5), 1.5);
        assert_eq!(demand_bound(&t, d(4)), 0.0);
        assert_eq!(demand_bound(&t, d(5)), 1.5);
        assert_eq!(demand_bound(&t, d(100)), 1.5);
    }

    #[test]
    fn implicit_deadline_utilization_test() {
        let ok = TaskSet::new(vec![
            Task::periodic_implicit(d(10), 4.0),
            Task::periodic_implicit(d(20), 10.0),
        ]);
        assert!(edf_schedulable(&ok).is_schedulable()); // U = 0.9
        let over = TaskSet::new(vec![
            Task::periodic_implicit(d(10), 6.0),
            Task::periodic_implicit(d(20), 10.0),
        ]);
        assert!(!edf_schedulable(&over).is_schedulable()); // U = 1.1
    }

    #[test]
    fn constrained_deadline_demand_test() {
        // Two tasks, U = 0.7, but both must finish within 4 of release:
        // window t = 4 demands 2 + 2 = 4 ≤ 4 → schedulable.
        let tight = TaskSet::new(vec![
            Task::periodic(SimTime::ZERO, d(10), d(4), 2.0),
            Task::periodic(SimTime::ZERO, d(4), d(4), 2.0),
        ]);
        assert!(edf_schedulable(&tight).is_schedulable());
        // Increase one WCET: window 4 demands 4.5 > 4 → unschedulable
        // despite U = 0.85 < 1.
        let broken = TaskSet::new(vec![
            Task::periodic(SimTime::ZERO, d(10), d(4), 2.5),
            Task::periodic(SimTime::ZERO, d(4), d(4), 2.0),
        ]);
        match edf_schedulable(&broken) {
            Schedulability::Unschedulable { witness: Some(w) } => {
                assert_eq!(w, d(4));
            }
            other => panic!("expected demand-test failure, got {other:?}"),
        }
    }

    #[test]
    fn deficit_of_day_night_profile() {
        // 4 power for 10 units, then 0 for 10 units; demand 1.
        let profile =
            PiecewiseConstant::from_samples(SimTime::ZERO, d(10), vec![4.0, 0.0], Extension::Hold)
                .unwrap();
        // Worst window is the whole night: 10 · (1 − 0) = 10.
        assert_eq!(worst_case_deficit(&profile, 1.0), 10.0);
        // Demand 0 never runs a deficit.
        assert_eq!(worst_case_deficit(&profile, 0.0), 0.0);
        // Demand above the peak accumulates across the whole domain:
        // 10·(5−4) + 10·(5−0) = 60.
        assert_eq!(worst_case_deficit(&profile, 5.0), 60.0);
    }

    #[test]
    fn deficit_spans_segments_kadane() {
        // deficits per segment (demand 2): [-1, +1, +2, -5, +1]
        let profile = PiecewiseConstant::from_samples(
            SimTime::ZERO,
            d(1),
            vec![3.0, 1.0, 0.0, 7.0, 1.0],
            Extension::Hold,
        )
        .unwrap();
        // Best contiguous run: +1 +2 = 3.
        assert_eq!(worst_case_deficit(&profile, 2.0), 3.0);
    }

    #[test]
    fn sustainability_check() {
        let profile = PiecewiseConstant::constant(2.0);
        let light = TaskSet::new(vec![Task::periodic_implicit(d(10), 2.0)]); // U=0.2
        let heavy = TaskSet::new(vec![Task::periodic_implicit(d(10), 8.0)]); // U=0.8
        assert!(is_sustainable(&profile, &light, 3.2)); // demand 0.64
        assert!(!is_sustainable(&profile, &heavy, 3.2)); // demand 2.56
        assert!((mean_power_demand(&heavy, 3.2) - 2.56).abs() < 1e-12);
    }
}
