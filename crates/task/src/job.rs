//! Job instances released by tasks.

use harvest_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Unique identifier of a released job, ordered by release sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// One released instance of a task (paper §3.3: once released, arrival,
/// deadline and WCET are all known).
///
/// Work is measured in full-speed time units; executing at normalized
/// speed `S` for `Δt` wall-clock units retires `S·Δt` work. A job
/// carries two work figures:
///
/// * the **budget** `wcet` — what the scheduler must provision for
///   (paper's `w_m`), and
/// * the **actual** work — what the job really needs, `actual ≤ wcet`
///   (defaults to the budget; set a smaller value to model early
///   completions and study slack reclamation).
///
/// Schedulers see the conservative [`Job::remaining_work`]; the engine
/// uses [`Job::remaining_actual_work`] / [`Job::time_to_finish`] for
/// true completion.
///
/// # Examples
///
/// ```
/// use harvest_task::job::{Job, JobId};
/// use harvest_sim::time::{SimDuration, SimTime};
///
/// let mut job = Job::new(
///     JobId(0),
///     0,
///     SimTime::ZERO,
///     SimTime::from_whole_units(16),
///     4.0,
/// );
/// job.execute(0.5, SimDuration::from_whole_units(8)); // half speed, 8 units
/// assert!(job.is_finished());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    id: JobId,
    task_index: usize,
    arrival: SimTime,
    absolute_deadline: SimTime,
    wcet: f64,
    actual: f64,
    executed: f64,
}

impl Job {
    /// Creates a job whose actual work equals its budget.
    ///
    /// # Panics
    ///
    /// Panics if the deadline is not after the arrival or `wcet` is not
    /// finite and positive.
    pub fn new(
        id: JobId,
        task_index: usize,
        arrival: SimTime,
        absolute_deadline: SimTime,
        wcet: f64,
    ) -> Self {
        assert!(absolute_deadline > arrival, "deadline must follow arrival");
        assert!(
            wcet.is_finite() && wcet > 0.0,
            "wcet must be finite and positive"
        );
        Job {
            id,
            task_index,
            arrival,
            absolute_deadline,
            wcet,
            actual: wcet,
            executed: 0.0,
        }
    }

    /// Sets the actual work to a value below the budget (early
    /// completion).
    ///
    /// # Panics
    ///
    /// Panics if `actual` is not in `(0, wcet]`.
    pub fn with_actual_work(mut self, actual: f64) -> Self {
        assert!(
            actual > 0.0 && actual <= self.wcet + 1e-12,
            "actual work must lie in (0, wcet]"
        );
        self.actual = actual.min(self.wcet);
        self
    }

    /// The job's identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Index of the releasing task within its task set.
    pub fn task_index(&self) -> usize {
        self.task_index
    }

    /// Arrival (release) instant `a_m`.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// Absolute deadline `a_m + d_m`.
    pub fn absolute_deadline(&self) -> SimTime {
        self.absolute_deadline
    }

    /// Worst-case execution time (budget) at full speed.
    pub fn wcet(&self) -> f64 {
        self.wcet
    }

    /// The job's true work requirement at full speed.
    pub fn actual_work(&self) -> f64 {
        self.actual
    }

    /// Work retired so far.
    pub fn executed_work(&self) -> f64 {
        self.executed
    }

    /// Remaining *budgeted* full-speed work, `wcet − executed` — the
    /// conservative figure a scheduler provisions for.
    pub fn remaining_work(&self) -> f64 {
        (self.wcet - self.executed).max(0.0)
    }

    /// Remaining *actual* full-speed work, `actual − executed`.
    pub fn remaining_actual_work(&self) -> f64 {
        (self.actual - self.executed).max(0.0)
    }

    /// `true` once the actual work is retired.
    pub fn is_finished(&self) -> bool {
        self.remaining_actual_work() <= 0.0
    }

    /// Laxity with respect to full-speed execution of the remaining
    /// *budget* at time `now`: `deadline − now − remaining_work`.
    /// Negative laxity means even `f_max` cannot provably make the
    /// deadline.
    pub fn laxity(&self, now: SimTime) -> f64 {
        (self.absolute_deadline - now).as_units() - self.remaining_work()
    }

    /// Retires work by running at normalized `speed` for `dt`, returning
    /// the work actually retired (clamped at the remaining actual
    /// amount).
    ///
    /// # Panics
    ///
    /// Panics if `speed` is outside `(0, 1]` or `dt` is negative.
    pub fn execute(&mut self, speed: f64, dt: SimDuration) -> f64 {
        assert!(speed > 0.0 && speed <= 1.0, "speed must lie in (0, 1]");
        assert!(dt >= SimDuration::ZERO, "duration must be non-negative");
        let retired = (speed * dt.as_units()).min(self.remaining_actual_work());
        self.executed += retired;
        if self.remaining_actual_work() < 1e-12 {
            self.executed = self.actual;
        }
        retired
    }

    /// Wall-clock time to finish the remaining *actual* work at
    /// normalized `speed` (engine-facing; rounds up to a whole tick).
    ///
    /// # Panics
    ///
    /// Panics if `speed` is outside `(0, 1]`.
    pub fn time_to_finish(&self, speed: f64) -> SimDuration {
        assert!(speed > 0.0 && speed <= 1.0, "speed must lie in (0, 1]");
        SimDuration::from_units_ceil(self.remaining_actual_work() / speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job::new(
            JobId(1),
            0,
            SimTime::ZERO,
            SimTime::from_whole_units(16),
            4.0,
        )
    }

    #[test]
    fn fresh_job_state() {
        let j = job();
        assert_eq!(j.remaining_work(), 4.0);
        assert_eq!(j.remaining_actual_work(), 4.0);
        assert_eq!(j.executed_work(), 0.0);
        assert!(!j.is_finished());
        assert_eq!(j.laxity(SimTime::ZERO), 12.0);
    }

    #[test]
    fn execution_retires_work_at_speed() {
        let mut j = job();
        let retired = j.execute(0.5, SimDuration::from_whole_units(4));
        assert_eq!(retired, 2.0);
        assert_eq!(j.remaining_work(), 2.0);
    }

    #[test]
    fn execution_clamps_at_completion() {
        let mut j = job();
        let retired = j.execute(1.0, SimDuration::from_whole_units(100));
        assert_eq!(retired, 4.0);
        assert!(j.is_finished());
        // Further execution retires nothing.
        assert_eq!(j.execute(1.0, SimDuration::from_whole_units(1)), 0.0);
    }

    #[test]
    fn tiny_residue_snaps_to_zero() {
        let mut j = job();
        j.execute(1.0, SimDuration::from_units(4.0 - 1e-13));
        assert!(
            j.is_finished(),
            "residue {:e} should snap",
            j.remaining_actual_work()
        );
    }

    #[test]
    fn laxity_goes_negative_when_late() {
        let j = job();
        assert!(j.laxity(SimTime::from_whole_units(13)) < 0.0);
    }

    #[test]
    fn time_to_finish_rounds_up() {
        let j = job();
        assert_eq!(j.time_to_finish(0.5), SimDuration::from_whole_units(8));
        let mut j2 = job();
        j2.execute(1.0, SimDuration::from_units(0.5));
        assert_eq!(j2.time_to_finish(1.0), SimDuration::from_units(3.5));
    }

    #[test]
    fn early_completion_finishes_at_actual() {
        let mut j = job().with_actual_work(1.5);
        assert_eq!(j.actual_work(), 1.5);
        assert_eq!(j.remaining_work(), 4.0, "budget stays conservative");
        assert_eq!(j.remaining_actual_work(), 1.5);
        j.execute(1.0, SimDuration::from_units(1.5));
        assert!(j.is_finished());
        // The conservative view still reports budget headroom — that is
        // the reclaimed slack.
        assert!((j.remaining_work() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn early_completion_time_to_finish_uses_actual() {
        let j = job().with_actual_work(2.0);
        assert_eq!(j.time_to_finish(0.5), SimDuration::from_whole_units(4));
    }

    #[test]
    #[should_panic(expected = "actual work")]
    fn actual_above_budget_rejected() {
        let _ = job().with_actual_work(5.0);
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn deadline_before_arrival_rejected() {
        let _ = Job::new(
            JobId(0),
            0,
            SimTime::from_whole_units(5),
            SimTime::ZERO,
            1.0,
        );
    }
}
