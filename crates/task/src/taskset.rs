//! Collections of tasks.

use harvest_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::task::Task;

/// An ordered collection of tasks sharing a processor.
///
/// # Examples
///
/// ```
/// use harvest_task::task::Task;
/// use harvest_task::taskset::TaskSet;
/// use harvest_sim::time::SimDuration;
///
/// let set = TaskSet::new(vec![
///     Task::periodic_implicit(SimDuration::from_whole_units(10), 2.0),
///     Task::periodic_implicit(SimDuration::from_whole_units(20), 4.0),
/// ]);
/// assert_eq!(set.utilization(), 0.4);
/// let scaled = set.scaled_to_utilization(0.8);
/// assert!((scaled.utilization() - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates a task set.
    pub fn new(tasks: Vec<Task>) -> Self {
        TaskSet { tasks }
    }

    /// The tasks, in index order (job `task_index` refers into this).
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over the tasks.
    pub fn iter(&self) -> std::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// Adds a task, returning its index.
    pub fn push(&mut self, task: Task) -> usize {
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    /// Total utilization `U = Σ w_m / p_m` (paper eq. 14). One-shot
    /// tasks contribute zero.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().filter_map(Task::utilization).sum()
    }

    /// Returns a copy whose periodic WCETs are scaled by a common factor
    /// so the total utilization equals `target` (the paper's §5.1
    /// procedure: "we scale the worst case execution time of each task
    /// in a task set in the same ratio").
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 1]` or the set has zero
    /// utilization.
    pub fn scaled_to_utilization(&self, target: f64) -> TaskSet {
        assert!(
            target > 0.0 && target <= 1.0,
            "target utilization must lie in (0, 1]"
        );
        let current = self.utilization();
        assert!(current > 0.0, "cannot scale a set with zero utilization");
        let factor = target / current;
        TaskSet {
            tasks: self.tasks.iter().map(|t| t.scaled_wcet(factor)).collect(),
        }
    }

    /// Hyperperiod (LCM of the periodic tasks' periods). `None` if the
    /// set has no periodic task or the LCM overflows the tick range.
    pub fn hyperperiod(&self) -> Option<SimDuration> {
        let mut acc: Option<i64> = None;
        for t in &self.tasks {
            if let Some(p) = t.period() {
                let ticks = p.as_ticks();
                acc = Some(match acc {
                    None => ticks,
                    Some(a) => lcm(a, ticks)?,
                });
            }
        }
        acc.map(SimDuration::from_ticks)
    }

    /// All job arrivals of every task within `[from, until)`, as
    /// `(task_index, arrival)` pairs sorted by time then task index.
    pub fn arrivals_between(&self, from: SimTime, until: SimTime) -> Vec<(usize, SimTime)> {
        let mut out: Vec<(usize, SimTime)> = self
            .tasks
            .iter()
            .enumerate()
            .flat_map(|(i, t)| {
                t.arrivals_between(from, until)
                    .into_iter()
                    .map(move |a| (i, a))
            })
            .collect();
        out.sort_by_key(|&(i, a)| (a, i));
        out
    }
}

impl FromIterator<Task> for TaskSet {
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl Extend<Task> for TaskSet {
    fn extend<I: IntoIterator<Item = Task>>(&mut self, iter: I) {
        self.tasks.extend(iter);
    }
}

impl IntoIterator for TaskSet {
    type Item = Task;
    type IntoIter = std::vec::IntoIter<Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn lcm(a: i64, b: i64) -> Option<i64> {
    let g = gcd(a, b);
    if g == 0 {
        return Some(0);
    }
    (a / g).checked_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: i64) -> SimDuration {
        SimDuration::from_whole_units(x)
    }

    fn set() -> TaskSet {
        TaskSet::new(vec![
            Task::periodic_implicit(d(10), 1.0),
            Task::periodic_implicit(d(20), 3.0),
            Task::periodic_implicit(d(30), 3.0),
        ])
    }

    #[test]
    fn utilization_sums_ratios() {
        // 0.1 + 0.15 + 0.1 = 0.35
        assert!((set().utilization() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn one_shot_tasks_do_not_contribute() {
        let mut s = set();
        s.push(Task::once(SimTime::ZERO, d(5), 100.0));
        assert!((s.utilization() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn scaling_hits_target_exactly() {
        let s = set().scaled_to_utilization(0.7);
        assert!((s.utilization() - 0.7).abs() < 1e-12);
        // Per-task utilization never exceeds the total.
        for t in &s {
            assert!(t.utilization().unwrap() <= 0.7 + 1e-12);
        }
    }

    #[test]
    fn hyperperiod_is_lcm() {
        assert_eq!(set().hyperperiod(), Some(d(60)));
    }

    #[test]
    fn hyperperiod_none_without_periodic_tasks() {
        let s = TaskSet::new(vec![Task::once(SimTime::ZERO, d(5), 1.0)]);
        assert_eq!(s.hyperperiod(), None);
    }

    #[test]
    fn arrivals_merge_sorted() {
        let s = TaskSet::new(vec![
            Task::periodic_implicit(d(10), 1.0),
            Task::periodic_implicit(d(15), 1.0),
        ]);
        let arrivals = s.arrivals_between(SimTime::ZERO, SimTime::from_whole_units(30));
        let times: Vec<i64> = arrivals
            .iter()
            .map(|&(_, t)| t.as_ticks() / 1_000_000)
            .collect();
        assert_eq!(times, vec![0, 0, 10, 15, 20]);
        // Simultaneous arrivals ordered by task index.
        assert_eq!(arrivals[0].0, 0);
        assert_eq!(arrivals[1].0, 1);
    }

    #[test]
    fn collect_and_extend() {
        let s: TaskSet = (1..=3)
            .map(|i| Task::periodic_implicit(d(10 * i), 1.0))
            .collect();
        assert_eq!(s.len(), 3);
        let mut s2 = TaskSet::default();
        s2.extend(s.clone());
        assert_eq!(s2, s);
    }

    #[test]
    #[should_panic(expected = "target utilization")]
    fn scaling_rejects_overload() {
        let _ = set().scaled_to_utilization(1.5);
    }
}
