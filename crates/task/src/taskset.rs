//! Collections of tasks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use harvest_sim::event::{ReleaseEntry, ReleaseTape};
use harvest_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::task::Task;

/// An ordered collection of tasks sharing a processor.
///
/// # Examples
///
/// ```
/// use harvest_task::task::Task;
/// use harvest_task::taskset::TaskSet;
/// use harvest_sim::time::SimDuration;
///
/// let set = TaskSet::new(vec![
///     Task::periodic_implicit(SimDuration::from_whole_units(10), 2.0),
///     Task::periodic_implicit(SimDuration::from_whole_units(20), 4.0),
/// ]);
/// assert_eq!(set.utilization(), 0.4);
/// let scaled = set.scaled_to_utilization(0.8);
/// assert!((scaled.utilization() - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates a task set.
    pub fn new(tasks: Vec<Task>) -> Self {
        TaskSet { tasks }
    }

    /// The tasks, in index order (job `task_index` refers into this).
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over the tasks.
    pub fn iter(&self) -> std::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// Adds a task, returning its index.
    pub fn push(&mut self, task: Task) -> usize {
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    /// Total utilization `U = Σ w_m / p_m` (paper eq. 14). One-shot
    /// tasks contribute zero.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().filter_map(Task::utilization).sum()
    }

    /// Returns a copy whose periodic WCETs are scaled by a common factor
    /// so the total utilization equals `target` (the paper's §5.1
    /// procedure: "we scale the worst case execution time of each task
    /// in a task set in the same ratio").
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 1]` or the set has zero
    /// utilization.
    pub fn scaled_to_utilization(&self, target: f64) -> TaskSet {
        assert!(
            target > 0.0 && target <= 1.0,
            "target utilization must lie in (0, 1]"
        );
        let current = self.utilization();
        assert!(current > 0.0, "cannot scale a set with zero utilization");
        let factor = target / current;
        TaskSet {
            tasks: self.tasks.iter().map(|t| t.scaled_wcet(factor)).collect(),
        }
    }

    /// Hyperperiod (LCM of the periodic tasks' periods). `None` if the
    /// set has no periodic task or the LCM overflows the tick range.
    pub fn hyperperiod(&self) -> Option<SimDuration> {
        let mut acc: Option<i64> = None;
        for t in &self.tasks {
            if let Some(p) = t.period() {
                let ticks = p.as_ticks();
                acc = Some(match acc {
                    None => ticks,
                    Some(a) => lcm(a, ticks)?,
                });
            }
        }
        acc.map(SimDuration::from_ticks)
    }

    /// All job arrivals of every task within `[from, until)`, as
    /// `(task_index, arrival)` pairs sorted by time then task index.
    pub fn arrivals_between(&self, from: SimTime, until: SimTime) -> Vec<(usize, SimTime)> {
        let mut out: Vec<(usize, SimTime)> = self
            .tasks
            .iter()
            .enumerate()
            .flat_map(|(i, t)| {
                t.arrivals_between(from, until)
                    .into_iter()
                    .map(move |a| (i, a))
            })
            .collect();
        out.sort_by_key(|&(i, a)| (a, i));
        out
    }

    /// Precomputes the release timeline of `[0, horizon)` as a
    /// [`ReleaseTape`]: every arrival, in the exact order a heap-driven
    /// simulation pops them.
    ///
    /// That order is **not** `(time, task_index)` — it is `(time, seq)`
    /// under the simulator's scheduling discipline, where each handled
    /// arrival immediately schedules the task's next one. (Example: with
    /// task 0 = period 5 and task 1 = period 10 phase 5, task 0's t = 5
    /// arrival is scheduled while handling its t = 0 arrival, *after*
    /// task 1's seeded t = 5 arrival — so task 1 pops first at t = 5
    /// despite its higher index.) The builder therefore replays that
    /// discipline as a mini-simulation of release events only: seed the
    /// in-horizon phase arrivals in task-index order, then pop in
    /// `(ticks, seq)` order, each pop scheduling its successor.
    pub fn release_tape(&self, horizon: SimDuration) -> ReleaseTape {
        let horizon_ticks = (SimTime::ZERO + horizon).as_ticks();
        let mut seq: u32 = 0;
        let mut alloc = move || {
            let s = seq;
            seq += 1;
            s
        };
        // Min-heap of (ticks, seq, task): seq breaks same-instant ties in
        // scheduling order, exactly like the event queue.
        let mut heap: BinaryHeap<Reverse<(i64, u32, u32)>> = BinaryHeap::with_capacity(self.len());
        for (i, task) in self.tasks.iter().enumerate() {
            let phase = task.phase();
            if phase >= SimTime::ZERO && phase.as_ticks() < horizon_ticks {
                heap.push(Reverse((phase.as_ticks(), alloc(), i as u32)));
            }
        }
        let mut entries = Vec::new();
        let mut job_seq = vec![0u32; self.len()];
        while let Some(Reverse((ticks, _, task))) = heap.pop() {
            entries.push(ReleaseEntry {
                ticks,
                task,
                job_seq: job_seq[task as usize],
            });
            job_seq[task as usize] += 1;
            if let Some(period) = self.tasks[task as usize].period() {
                let next = ticks + period.as_ticks();
                // A beyond-horizon successor is scheduled by the real
                // run but never popped; eliding it from the mini-heap
                // renumbers later seqs uniformly without reordering.
                if next < horizon_ticks {
                    heap.push(Reverse((next, alloc(), task)));
                }
            }
        }
        ReleaseTape::from_entries(entries, horizon_ticks, self.len() as u32)
    }
}

impl FromIterator<Task> for TaskSet {
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl Extend<Task> for TaskSet {
    fn extend<I: IntoIterator<Item = Task>>(&mut self, iter: I) {
        self.tasks.extend(iter);
    }
}

impl IntoIterator for TaskSet {
    type Item = Task;
    type IntoIter = std::vec::IntoIter<Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn lcm(a: i64, b: i64) -> Option<i64> {
    let g = gcd(a, b);
    if g == 0 {
        return Some(0);
    }
    (a / g).checked_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: i64) -> SimDuration {
        SimDuration::from_whole_units(x)
    }

    fn set() -> TaskSet {
        TaskSet::new(vec![
            Task::periodic_implicit(d(10), 1.0),
            Task::periodic_implicit(d(20), 3.0),
            Task::periodic_implicit(d(30), 3.0),
        ])
    }

    #[test]
    fn utilization_sums_ratios() {
        // 0.1 + 0.15 + 0.1 = 0.35
        assert!((set().utilization() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn one_shot_tasks_do_not_contribute() {
        let mut s = set();
        s.push(Task::once(SimTime::ZERO, d(5), 100.0));
        assert!((s.utilization() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn scaling_hits_target_exactly() {
        let s = set().scaled_to_utilization(0.7);
        assert!((s.utilization() - 0.7).abs() < 1e-12);
        // Per-task utilization never exceeds the total.
        for t in &s {
            assert!(t.utilization().unwrap() <= 0.7 + 1e-12);
        }
    }

    #[test]
    fn hyperperiod_is_lcm() {
        assert_eq!(set().hyperperiod(), Some(d(60)));
    }

    #[test]
    fn hyperperiod_none_without_periodic_tasks() {
        let s = TaskSet::new(vec![Task::once(SimTime::ZERO, d(5), 1.0)]);
        assert_eq!(s.hyperperiod(), None);
    }

    #[test]
    fn arrivals_merge_sorted() {
        let s = TaskSet::new(vec![
            Task::periodic_implicit(d(10), 1.0),
            Task::periodic_implicit(d(15), 1.0),
        ]);
        let arrivals = s.arrivals_between(SimTime::ZERO, SimTime::from_whole_units(30));
        let times: Vec<i64> = arrivals
            .iter()
            .map(|&(_, t)| t.as_ticks() / 1_000_000)
            .collect();
        assert_eq!(times, vec![0, 0, 10, 15, 20]);
        // Simultaneous arrivals ordered by task index.
        assert_eq!(arrivals[0].0, 0);
        assert_eq!(arrivals[1].0, 1);
    }

    #[test]
    fn release_tape_matches_arrival_multiset_and_counts_jobs() {
        let s = set();
        let horizon = d(60);
        let tape = s.release_tape(horizon);
        // Same multiset of (task, time) as arrivals_between, whatever
        // the order.
        let mut tape_pairs: Vec<(usize, i64)> = tape
            .entries()
            .iter()
            .map(|e| (e.task as usize, e.ticks))
            .collect();
        let mut ref_pairs: Vec<(usize, i64)> = s
            .arrivals_between(SimTime::ZERO, SimTime::ZERO + horizon)
            .into_iter()
            .map(|(i, t)| (i, t.as_ticks()))
            .collect();
        tape_pairs.sort_unstable();
        ref_pairs.sort_unstable();
        assert_eq!(tape_pairs, ref_pairs);
        // job_seq counts each task's arrivals from zero, in time order.
        for (i, _) in s.iter().enumerate() {
            let seqs: Vec<u32> = tape
                .entries()
                .iter()
                .filter(|e| e.task as usize == i)
                .map(|e| e.job_seq)
                .collect();
            assert_eq!(seqs, (0..seqs.len() as u32).collect::<Vec<_>>());
        }
        assert_eq!(tape.task_count(), 3);
        assert_eq!(tape.horizon_ticks(), (SimTime::ZERO + horizon).as_ticks());
    }

    #[test]
    fn release_tape_orders_ties_by_scheduling_discipline_not_index() {
        // Task 0: period 5, phase 0. Task 1: period 10, phase 5. At
        // t = 5 both release — but task 1's arrival was seeded before
        // task 0's t = 5 arrival was scheduled (while handling t = 0),
        // so the heap-driven run pops task 1 first. A (time, index) sort
        // would wrongly put task 0 first.
        let s = TaskSet::new(vec![
            Task::periodic(SimTime::ZERO, d(5), d(5), 1.0),
            Task::periodic(SimTime::ZERO + d(5), d(10), d(10), 1.0),
        ]);
        let tape = s.release_tape(d(20));
        let order: Vec<(i64, u32)> = tape
            .entries()
            .iter()
            .map(|e| (e.ticks / 1_000_000, e.task))
            .collect();
        assert_eq!(
            order,
            vec![(0, 0), (5, 1), (5, 0), (10, 0), (15, 1), (15, 0)]
        );
    }

    #[test]
    fn collect_and_extend() {
        let s: TaskSet = (1..=3)
            .map(|i| Task::periodic_implicit(d(10 * i), 1.0))
            .collect();
        assert_eq!(s.len(), 3);
        let mut s2 = TaskSet::default();
        s2.extend(s.clone());
        assert_eq!(s2, s);
    }

    #[test]
    #[should_panic(expected = "target utilization")]
    fn scaling_rejects_overload() {
        let _ = set().scaled_to_utilization(1.5);
    }
}
