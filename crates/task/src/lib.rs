//! # harvest-task — real-time task model
//!
//! The paper's task abstraction (§3.3): independent, preemptable tasks
//! `τ_m = (a_m, d_m, w_m)` scheduled earliest-deadline-first.
//!
//! * [`task`] — [`Task`] definitions (periodic / one-shot) with arrival
//!   enumeration.
//! * [`job`] — released [`Job`] instances tracking remaining full-speed
//!   work.
//! * [`taskset`] — [`TaskSet`] with utilization, common-ratio scaling
//!   (§5.1) and hyperperiod.
//! * [`queue`] — the EDF-ordered ready queue of the scheduling loop
//!   (paper Fig. 4).
//! * [`generator`] — the §5.1 random workload generator.
//! * [`analysis`] — offline EDF schedulability (utilization and
//!   processor-demand tests) and energy-feasibility bounds.
//!
//! # Examples
//!
//! ```
//! use harvest_task::generator::WorkloadSpec;
//! use harvest_sim::time::SimTime;
//!
//! // 5 periodic tasks at U = 0.4 sized against a 2.0-power source and a
//! // 3.2-power processor — the paper's Fig. 8 workload.
//! let set = WorkloadSpec::paper(5, 0.4, 2.0, 3.2).generate(1);
//! let arrivals = set.arrivals_between(SimTime::ZERO, SimTime::from_whole_units(100));
//! assert!(!arrivals.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod generator;
pub mod job;
pub mod queue;
pub mod task;
pub mod taskset;

pub use analysis::{edf_schedulable, worst_case_deficit, Schedulability};
pub use generator::WorkloadSpec;
pub use job::{Job, JobId};
pub use queue::EdfQueue;
pub use task::{ReleasePattern, Task};
pub use taskset::TaskSet;
