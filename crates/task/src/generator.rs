//! The paper's random workload generator (§5.1).
//!
//! Periods are drawn uniformly from `{10, 20, …, 100}`; each task's
//! worst-case *energy* is drawn uniformly from `[0, P̄s·p]` (so that task
//! demand is commensurate with the source's mean power `P̄s`), converted
//! to a WCET via `w = e / P_max`, and finally all WCETs are scaled by a
//! common ratio to hit the requested utilization.

use harvest_sim::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::task::Task;
use crate::taskset::TaskSet;

/// Parameters of the §5.1 workload generator.
///
/// # Examples
///
/// ```
/// use harvest_task::generator::WorkloadSpec;
///
/// let spec = WorkloadSpec::paper(5, 0.4, 2.0, 3.2);
/// let set = spec.generate(42);
/// assert_eq!(set.len(), 5);
/// assert!((set.utilization() - 0.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of periodic tasks in the set.
    pub num_tasks: usize,
    /// Target total utilization `U ∈ (0, 1]`.
    pub utilization: f64,
    /// Mean harvested power `P̄s` used to size task energies.
    pub mean_harvest_power: f64,
    /// Maximum processor power `P_max` used to convert energy to WCET.
    pub max_cpu_power: f64,
    /// Candidate periods, in whole time units.
    pub period_choices: Vec<i64>,
    /// Lower bound of the actual-to-worst-case execution-time ratio.
    /// `1.0` (the paper's implicit assumption) makes every job consume
    /// its full WCET; smaller values draw each task's true work from
    /// `U[bcet_ratio, 1] · wcet`, modelling early completions.
    pub bcet_ratio: f64,
}

impl WorkloadSpec {
    /// The paper's configuration: periods drawn from `{10, 20, …, 100}`,
    /// implicit deadlines.
    ///
    /// # Panics
    ///
    /// Panics if `num_tasks` is zero, `utilization` is outside `(0, 1]`,
    /// or the powers are not positive.
    pub fn paper(
        num_tasks: usize,
        utilization: f64,
        mean_harvest_power: f64,
        max_cpu_power: f64,
    ) -> Self {
        let spec = WorkloadSpec {
            num_tasks,
            utilization,
            mean_harvest_power,
            max_cpu_power,
            period_choices: (1..=10).map(|k| 10 * k).collect(),
            bcet_ratio: 1.0,
        };
        spec.validate();
        spec
    }

    /// Sets the actual-to-WCET ratio lower bound (see
    /// [`WorkloadSpec::bcet_ratio`]).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `(0, 1]`.
    pub fn with_bcet_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "bcet ratio must lie in (0, 1]");
        self.bcet_ratio = ratio;
        self
    }

    fn validate(&self) {
        assert!(self.num_tasks > 0, "need at least one task");
        assert!(
            self.utilization > 0.0 && self.utilization <= 1.0,
            "utilization must lie in (0, 1]"
        );
        assert!(
            self.mean_harvest_power.is_finite() && self.mean_harvest_power > 0.0,
            "mean harvest power must be positive"
        );
        assert!(
            self.max_cpu_power.is_finite() && self.max_cpu_power > 0.0,
            "max CPU power must be positive"
        );
        assert!(!self.period_choices.is_empty(), "need candidate periods");
        assert!(
            self.period_choices.iter().all(|&p| p > 0),
            "periods must be positive"
        );
        assert!(
            self.bcet_ratio > 0.0 && self.bcet_ratio <= 1.0,
            "bcet ratio must lie in (0, 1]"
        );
    }

    /// Generates one task set deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (see [`WorkloadSpec::paper`]).
    pub fn generate(&self, seed: u64) -> TaskSet {
        self.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tasks = Vec::with_capacity(self.num_tasks);
        for _ in 0..self.num_tasks {
            let period_units = self.period_choices[rng.gen_range(0..self.period_choices.len())];
            let period = SimDuration::from_whole_units(period_units);
            // Worst-case energy e ~ U[0, P̄s·p]; floor at a sliver of the
            // range so no task degenerates to zero work.
            let e_max = self.mean_harvest_power * period_units as f64;
            let e = (rng.gen::<f64>() * e_max).max(1e-3 * e_max);
            let wcet = e / self.max_cpu_power;
            let mut task = Task::periodic_implicit(period, wcet);
            if self.bcet_ratio < 1.0 {
                let fraction = self.bcet_ratio + rng.gen::<f64>() * (1.0 - self.bcet_ratio);
                task = task.with_actual_work(wcet * fraction);
            }
            tasks.push(task);
        }
        TaskSet::new(tasks).scaled_to_utilization(self.utilization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::paper(5, 0.4, 2.0, 3.2)
    }

    #[test]
    fn generates_requested_count_and_utilization() {
        let set = spec().generate(7);
        assert_eq!(set.len(), 5);
        assert!((set.utilization() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(spec().generate(3), spec().generate(3));
        assert_ne!(spec().generate(3), spec().generate(4));
    }

    #[test]
    fn periods_come_from_choice_set() {
        let set = spec().generate(11);
        for t in &set {
            let p = t.period().unwrap().as_units();
            assert!((10..=100).contains(&(p as i64)));
            assert_eq!(p % 10.0, 0.0);
            // Implicit deadlines.
            assert_eq!(t.relative_deadline(), t.period().unwrap());
        }
    }

    #[test]
    fn per_task_utilization_bounded_by_total() {
        for seed in 0..50 {
            let set = spec().generate(seed);
            for t in &set {
                assert!(t.utilization().unwrap() <= 0.4 + 1e-9);
                assert!(t.wcet() > 0.0);
            }
        }
    }

    #[test]
    fn high_utilization_sets_remain_feasible() {
        let s = WorkloadSpec::paper(8, 1.0, 2.0, 3.2);
        let set = s.generate(1);
        assert!((set.utilization() - 1.0).abs() < 1e-9);
        for t in &set {
            // wcet ≤ period ⇔ per-task utilization ≤ 1.
            assert!(t.wcet() <= t.period().unwrap().as_units() + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn rejects_overload() {
        let _ = WorkloadSpec::paper(5, 1.2, 2.0, 3.2);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn rejects_empty() {
        let _ = WorkloadSpec::paper(0, 0.4, 2.0, 3.2);
    }
}
