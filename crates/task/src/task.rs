//! Task definitions.

use harvest_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How a task releases jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReleasePattern {
    /// One job per `period`, starting at the task's phase.
    Periodic {
        /// Inter-arrival time.
        period: SimDuration,
    },
    /// A single job released at the task's phase (used by the paper's
    /// §2/§4.3 worked examples).
    Once,
}

/// A real-time task `τ_m = (a_m, d_m, w_m)` (paper §3.3): arrival
/// behaviour, relative deadline, and worst-case execution time at the
/// maximum frequency.
///
/// # Examples
///
/// ```
/// use harvest_task::task::Task;
/// use harvest_sim::time::{SimDuration, SimTime};
///
/// // The paper's §2 task τ1 = (0, 16, 4).
/// let t1 = Task::once(SimTime::ZERO, SimDuration::from_whole_units(16), 4.0);
/// assert_eq!(t1.wcet(), 4.0);
///
/// // A periodic task with implicit deadline.
/// let p = Task::periodic_implicit(SimDuration::from_whole_units(20), 2.5);
/// assert_eq!(p.utilization(), Some(2.5 / 20.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    phase: SimTime,
    pattern: ReleasePattern,
    relative_deadline: SimDuration,
    wcet: f64,
    /// True per-job work, `0 < actual ≤ wcet`. Defaults to the WCET;
    /// smaller values model early completion (slack) — see
    /// [`Task::with_actual_work`].
    actual_work: f64,
}

impl Task {
    /// Creates a periodic task.
    ///
    /// # Panics
    ///
    /// Panics if `period` or `relative_deadline` are not positive, or
    /// `wcet` is not finite and positive.
    pub fn periodic(
        phase: SimTime,
        period: SimDuration,
        relative_deadline: SimDuration,
        wcet: f64,
    ) -> Self {
        assert!(period.is_positive(), "period must be positive");
        Task::validated(
            phase,
            ReleasePattern::Periodic { period },
            relative_deadline,
            wcet,
        )
    }

    /// Periodic task with phase 0 and deadline equal to the period — the
    /// paper's workload shape (§5.1: "the relative deadline of the
    /// periodic task is set to its period").
    ///
    /// # Panics
    ///
    /// As [`Task::periodic`].
    pub fn periodic_implicit(period: SimDuration, wcet: f64) -> Self {
        Task::periodic(SimTime::ZERO, period, period, wcet)
    }

    /// Creates a one-shot task arriving at `arrival`.
    ///
    /// # Panics
    ///
    /// Panics if `relative_deadline` is not positive or `wcet` is not
    /// finite and positive.
    pub fn once(arrival: SimTime, relative_deadline: SimDuration, wcet: f64) -> Self {
        Task::validated(arrival, ReleasePattern::Once, relative_deadline, wcet)
    }

    fn validated(
        phase: SimTime,
        pattern: ReleasePattern,
        relative_deadline: SimDuration,
        wcet: f64,
    ) -> Self {
        assert!(
            relative_deadline.is_positive(),
            "relative deadline must be positive"
        );
        assert!(
            wcet.is_finite() && wcet > 0.0,
            "wcet must be finite and positive"
        );
        Task {
            phase,
            pattern,
            relative_deadline,
            wcet,
            actual_work: wcet,
        }
    }

    /// Sets the true per-job work below the budget (jobs of this task
    /// complete after `actual` full-speed units while schedulers still
    /// provision for the WCET).
    ///
    /// # Panics
    ///
    /// Panics if `actual` is not in `(0, wcet]`.
    pub fn with_actual_work(mut self, actual: f64) -> Self {
        assert!(
            actual > 0.0 && actual <= self.wcet + 1e-12,
            "actual work must lie in (0, wcet]"
        );
        self.actual_work = actual.min(self.wcet);
        self
    }

    /// The true per-job work (defaults to the WCET).
    pub fn actual_work(&self) -> f64 {
        self.actual_work
    }

    /// Release phase (arrival time of the first job).
    pub fn phase(&self) -> SimTime {
        self.phase
    }

    /// The release pattern.
    pub fn pattern(&self) -> ReleasePattern {
        self.pattern
    }

    /// Period, if periodic.
    pub fn period(&self) -> Option<SimDuration> {
        match self.pattern {
            ReleasePattern::Periodic { period } => Some(period),
            ReleasePattern::Once => None,
        }
    }

    /// Relative deadline `d_m`.
    pub fn relative_deadline(&self) -> SimDuration {
        self.relative_deadline
    }

    /// Worst-case execution time `w_m` at the maximum frequency, in
    /// full-speed time units.
    pub fn wcet(&self) -> f64 {
        self.wcet
    }

    /// Returns a copy with the WCET scaled by `factor` (used to hit a
    /// target utilization, §5.1).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled_wcet(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        Task {
            wcet: self.wcet * factor,
            actual_work: self.actual_work * factor,
            ..self.clone()
        }
    }

    /// Utilization `w_m / p_m` (eq. 14); `None` for one-shot tasks.
    pub fn utilization(&self) -> Option<f64> {
        self.period().map(|p| self.wcet / p.as_units())
    }

    /// Arrival instants of this task's jobs within `[from, until)`.
    pub fn arrivals_between(&self, from: SimTime, until: SimTime) -> Vec<SimTime> {
        match self.pattern {
            ReleasePattern::Once => {
                if self.phase >= from && self.phase < until {
                    vec![self.phase]
                } else {
                    vec![]
                }
            }
            ReleasePattern::Periodic { period } => {
                let mut out = Vec::new();
                let p = period.as_ticks();
                let first_k = if from <= self.phase {
                    0
                } else {
                    // smallest k with phase + k·p ≥ from
                    let diff = (from - self.phase).as_ticks();
                    (diff + p - 1) / p
                };
                let mut t = self.phase + SimDuration::from_ticks(first_k * p);
                while t < until {
                    out.push(t);
                    t += period;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(x: i64) -> SimTime {
        SimTime::from_whole_units(x)
    }

    fn d(x: i64) -> SimDuration {
        SimDuration::from_whole_units(x)
    }

    #[test]
    fn periodic_accessors() {
        let t = Task::periodic(u(2), d(10), d(8), 1.5);
        assert_eq!(t.phase(), u(2));
        assert_eq!(t.period(), Some(d(10)));
        assert_eq!(t.relative_deadline(), d(8));
        assert_eq!(t.wcet(), 1.5);
        assert_eq!(t.utilization(), Some(0.15));
    }

    #[test]
    fn once_has_no_period() {
        let t = Task::once(u(5), d(16), 1.5);
        assert_eq!(t.period(), None);
        assert_eq!(t.utilization(), None);
    }

    #[test]
    fn scaled_wcet_preserves_everything_else() {
        let t = Task::periodic_implicit(d(10), 2.0);
        let s = t.scaled_wcet(0.5);
        assert_eq!(s.wcet(), 1.0);
        assert_eq!(s.period(), t.period());
    }

    #[test]
    fn arrivals_periodic_window() {
        let t = Task::periodic(u(3), d(10), d(10), 1.0);
        assert_eq!(t.arrivals_between(u(0), u(30)), vec![u(3), u(13), u(23)]);
        assert_eq!(t.arrivals_between(u(13), u(24)), vec![u(13), u(23)]);
        assert_eq!(t.arrivals_between(u(14), u(23)), vec![]);
    }

    #[test]
    fn arrivals_once_window() {
        let t = Task::once(u(5), d(16), 1.5);
        assert_eq!(t.arrivals_between(u(0), u(10)), vec![u(5)]);
        assert_eq!(t.arrivals_between(u(6), u(10)), vec![]);
        assert_eq!(t.arrivals_between(u(5), u(6)), vec![u(5)]);
    }

    #[test]
    #[should_panic(expected = "wcet")]
    fn zero_wcet_rejected() {
        let _ = Task::periodic_implicit(d(10), 0.0);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_rejected() {
        let _ = Task::periodic(u(0), SimDuration::ZERO, d(1), 1.0);
    }
}
