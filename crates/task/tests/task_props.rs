//! Property-based tests of the task model.

use harvest_sim::time::{SimDuration, SimTime};
use harvest_task::analysis::{demand_bound, set_demand_bound};
use harvest_task::generator::WorkloadSpec;
use harvest_task::job::{Job, JobId};
use harvest_task::queue::EdfQueue;
use harvest_task::task::Task;
use harvest_task::taskset::TaskSet;
use proptest::prelude::*;

proptest! {
    /// Arrivals enumerated over a window match first-principles
    /// counting: phase + k·period within [from, until).
    #[test]
    fn arrivals_match_closed_form(
        phase in 0i64..50,
        period in 1i64..40,
        from in 0i64..200,
        len in 0i64..200,
    ) {
        let task = Task::periodic(
            SimTime::from_whole_units(phase),
            SimDuration::from_whole_units(period),
            SimDuration::from_whole_units(period),
            1.0,
        );
        let until = from + len;
        let got = task.arrivals_between(
            SimTime::from_whole_units(from),
            SimTime::from_whole_units(until),
        );
        let expected: Vec<SimTime> = (0..)
            .map(|k| phase + k * period)
            .take_while(|&t| t < until)
            .filter(|&t| t >= from)
            .map(SimTime::from_whole_units)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Splitting an arrival window never loses or duplicates arrivals.
    #[test]
    fn arrivals_are_window_compositional(
        phase in 0i64..20,
        period in 1i64..30,
        cut in 0i64..100,
        rest in 0i64..100,
    ) {
        let task = Task::periodic(
            SimTime::from_whole_units(phase),
            SimDuration::from_whole_units(period),
            SimDuration::from_whole_units(period),
            1.0,
        );
        let a = SimTime::ZERO;
        let b = SimTime::from_whole_units(cut);
        let c = SimTime::from_whole_units(cut + rest);
        let mut split = task.arrivals_between(a, b);
        split.extend(task.arrivals_between(b, c));
        prop_assert_eq!(split, task.arrivals_between(a, c));
    }

    /// Scaling a set to a target utilization hits it exactly and keeps
    /// the per-task proportions.
    #[test]
    fn scaling_preserves_proportions(
        periods in proptest::collection::vec(1i64..20, 2..6),
        target in 0.05f64..1.0,
    ) {
        let set: TaskSet = periods
            .iter()
            .map(|&p| Task::periodic_implicit(
                SimDuration::from_whole_units(10 * p),
                p as f64,
            ))
            .collect();
        let scaled = set.scaled_to_utilization(target);
        prop_assert!((scaled.utilization() - target).abs() < 1e-9);
        let ratio0 = scaled.tasks()[0].wcet() / set.tasks()[0].wcet();
        for (orig, new) in set.iter().zip(scaled.iter()) {
            let r = new.wcet() / orig.wcet();
            prop_assert!((r - ratio0).abs() < 1e-9, "uneven scaling");
        }
    }

    /// The demand bound is monotone in the window and subadditive
    /// against utilization: h(t) ≤ U·t + Σw.
    #[test]
    fn demand_bound_is_sane(
        periods in proptest::collection::vec(1i64..20, 1..6),
        t in 0i64..500,
    ) {
        let set: TaskSet = periods
            .iter()
            .map(|&p| Task::periodic_implicit(SimDuration::from_whole_units(5 * p), 1.0))
            .collect();
        let window = SimDuration::from_whole_units(t);
        let h = set_demand_bound(&set, window);
        let h_next = set_demand_bound(&set, window + SimDuration::from_whole_units(1));
        prop_assert!(h_next + 1e-12 >= h, "demand bound must be monotone");
        let wsum: f64 = set.iter().map(Task::wcet).sum();
        prop_assert!(h <= set.utilization() * t as f64 + wsum + 1e-9);
        for task in &set {
            prop_assert!(demand_bound(task, window) >= 0.0);
        }
    }

    /// The workload generator respects its contract for every seed and
    /// parameterization.
    #[test]
    fn generator_contract(
        seed in 0u64..2_000,
        n in 1usize..10,
        u in 0.05f64..1.0,
        bcet in 0.1f64..1.0,
    ) {
        let set = WorkloadSpec::paper(n, u, 2.0, 3.2)
            .with_bcet_ratio(bcet)
            .generate(seed);
        prop_assert_eq!(set.len(), n);
        prop_assert!((set.utilization() - u).abs() < 1e-9);
        for task in &set {
            let p = task.period().expect("paper tasks are periodic");
            prop_assert_eq!(task.relative_deadline(), p);
            prop_assert!(task.wcet() <= p.as_units() + 1e-9, "wcet within period");
            prop_assert!(task.actual_work() <= task.wcet() + 1e-12);
            prop_assert!(task.actual_work() >= bcet * task.wcet() - 1e-9);
        }
    }

    /// EDF queue: any push sequence pops in (deadline, id) order, and
    /// total work is conserved.
    #[test]
    fn edf_queue_total_order(
        jobs in proptest::collection::vec((1i64..100, 0.1f64..5.0), 1..50),
    ) {
        let mut q = EdfQueue::new();
        let mut total = 0.0;
        for (i, &(deadline, work)) in jobs.iter().enumerate() {
            q.push(Job::new(
                JobId(i as u64),
                0,
                SimTime::ZERO,
                SimTime::from_whole_units(deadline),
                work,
            ));
            total += work;
        }
        prop_assert!((q.total_remaining_work() - total).abs() < 1e-9);
        let mut prev: Option<(SimTime, JobId)> = None;
        while let Some(job) = q.pop() {
            let key = (job.absolute_deadline(), job.id());
            if let Some(p) = prev {
                prop_assert!(key > p, "EDF order violated: {key:?} after {p:?}");
            }
            prev = Some(key);
        }
    }

    /// EDF queue vs. a naive sorted-Vec model: arbitrary interleavings
    /// of push/pop/remove/drain agree on contents, membership, and
    /// priority order — including deadline ties and removal of ids
    /// that are absent or already drained.
    #[test]
    fn edf_queue_matches_sorted_vec_model(
        ops in proptest::collection::vec((0u8..8, 1i64..20, 0usize..256), 1..200),
    ) {
        let mut q = EdfQueue::new();
        // The model: (deadline_units, id) keys of live jobs.
        let mut model: Vec<(i64, u64)> = Vec::new();
        let mut next_id = 0u64;
        let mut now = 0i64;

        for &(op, deadline, target) in &ops {
            match op {
                0..=3 => {
                    let id = next_id;
                    next_id += 1;
                    q.push(Job::new(
                        JobId(id),
                        0,
                        SimTime::ZERO,
                        SimTime::from_whole_units(deadline),
                        1.0,
                    ));
                    model.push((deadline, id));
                }
                4 => {
                    model.sort_unstable();
                    let expected = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0))
                    };
                    let got = q.pop().map(|j| {
                        (j.absolute_deadline().as_ticks()
                            / SimTime::from_whole_units(1).as_ticks(),
                         j.id().0)
                    });
                    prop_assert_eq!(got, expected, "pop diverged");
                }
                5 => {
                    if next_id == 0 {
                        continue;
                    }
                    let id = (target as u64) % next_id;
                    let expected = model.iter().position(|&(_, i)| i == id);
                    let got = q.remove(JobId(id));
                    prop_assert_eq!(
                        got.is_some(),
                        expected.is_some(),
                        "remove({}) presence diverged",
                        id
                    );
                    if let Some(pos) = expected {
                        model.swap_remove(pos);
                        prop_assert_eq!(got.unwrap().id(), JobId(id));
                    }
                }
                6 => {
                    now += deadline;
                    let mut expected: Vec<(i64, u64)> = model
                        .iter()
                        .copied()
                        .filter(|&(d, _)| d <= now)
                        .collect();
                    expected.sort_unstable();
                    model.retain(|&(d, _)| d > now);
                    let mut out = Vec::new();
                    q.drain_expired_into(SimTime::from_whole_units(now), &mut out);
                    let got: Vec<(i64, u64)> = out
                        .iter()
                        .map(|j| {
                            (j.absolute_deadline().as_ticks()
                                / SimTime::from_whole_units(1).as_ticks(),
                             j.id().0)
                        })
                        .collect();
                    prop_assert_eq!(got, expected, "drain diverged");
                }
                _ => {
                    prop_assert_eq!(q.len(), model.len());
                    if next_id > 0 {
                        let id = (target as u64) % next_id;
                        let expected = model.iter().any(|&(_, i)| i == id);
                        prop_assert_eq!(q.contains(JobId(id)), expected);
                    }
                    let mut sorted = model.clone();
                    sorted.sort_unstable();
                    let head = q.peek().map(|j| j.id().0);
                    prop_assert_eq!(head, sorted.first().map(|&(_, i)| i));
                }
            }
        }

        // Final drain in strict priority order.
        model.sort_unstable();
        for &(d, id) in &model {
            let j = q.pop().expect("model job present");
            prop_assert_eq!(j.id().0, id);
            prop_assert_eq!(j.absolute_deadline(), SimTime::from_whole_units(d));
        }
        prop_assert!(q.is_empty());
    }
}
