//! Batched structure-of-arrays trial engine.
//!
//! [`simulate_batch_in`] runs B sibling trials (typically the same
//! scenario at seeds `s..s+B`) through one event loop: a shared
//! time-ordered heap interleaves every lane's events, each tick's
//! storage advances sweep the lanes as flat `f64` arrays through
//! [`StorageSpec::advance_lanes`], and deferred end-of-tick decisions
//! evaluate the paper's eq. 5–9 across lanes at once (eq. 6 through
//! [`CpuModel::min_feasible_level_lanes`]).
//!
//! Every lane is **bit-identical** to the scalar
//! [`try_simulate_in`](crate::system::try_simulate_in) run of the same
//! inputs (pinned by the `batched_parity` property suite). That holds
//! because lanes share no mutable state — per-lane storage, queue,
//! policy, and profile — so any cross-lane interleaving that preserves
//! each lane's own event order (time, then FIFO) replays the scalar
//! schedule exactly, and every floating-point expression here is a
//! verbatim replica of the scalar path.
//!
//! Divergent lanes are not approximated: a lane whose configuration the
//! lean loop cannot replicate exactly (fault plans, watchdogs, traces,
//! metrics, non-ideal or infinite storage, non-oracle predictors,
//! non-uniform profiles) is drained through the scalar
//! `try_simulate_in` instead, so a mixed batch still returns exact
//! per-lane results.

use std::mem;
use std::sync::Arc;

use harvest_cpu::{CpuModel, LevelIndex};
use harvest_energy::predictor::EnergyPredictor;
use harvest_energy::storage::{AdvanceReport, Storage, StorageLanes, StorageSpec};
use harvest_sim::event::ReleaseTape;
use harvest_sim::piecewise::{PiecewiseConstant, UniformGridView};
use harvest_sim::time::{SimDuration, SimTime};
use harvest_task::job::{Job, JobId};
use harvest_task::queue::EdfQueue;
use harvest_task::taskset::TaskSet;

use crate::config::{MissPolicy, SystemConfig};
#[cfg(debug_assertions)]
use crate::policies::EaDvfsScheduler;
use crate::result::{EnergyAccounting, JobOutcome, JobRecord, SimError, SimResult};
use crate::scheduler::{Decision, SchedContext, Scheduler};
use crate::system::{try_simulate_in_taped, RunContext, ENERGY_EPS};
use crate::trace::TraceEvent;

/// One lane's inputs: the per-seed realization a scalar
/// [`try_simulate_in`](crate::system::try_simulate_in) call would take.
pub struct BatchLane {
    /// Run configuration (horizon, storage, processor, …).
    pub config: SystemConfig,
    /// The lane's task set.
    pub tasks: Arc<TaskSet>,
    /// The lane's realized harvest profile.
    pub profile: Arc<PiecewiseConstant>,
    /// The lane's `ÊS` estimator.
    pub predictor: Box<dyn EnergyPredictor>,
    /// Precomputed release timeline for this lane's task set (built by
    /// [`TaskSet::release_tape`]); `None` runs releases through the
    /// shared heap. Policy-lockstep lanes share one tape `Arc`.
    pub tape: Option<Arc<ReleaseTape>>,
}

impl std::fmt::Debug for BatchLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchLane")
            .field("config", &self.config)
            .field("tasks", &self.tasks.len())
            .field("predictor", &self.predictor.name())
            .finish()
    }
}

/// A lane-local event; the batched mirror of the scalar simulator's
/// event vocabulary (faults are handled by the scalar fallback, so no
/// `FaultEdge` arm exists here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneEvent {
    Arrival { task: u32 },
    DeadlineCheck { job: JobId },
    Reevaluate { epoch: u64 },
    Sample,
}

/// One pending event of the shared batch heap: `(ticks, seq)` is the
/// ordering key — time first, then global schedule order, exactly the
/// scalar event queue's FIFO tie-break.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    ticks: i64,
    seq: u32,
    lane: u32,
    event: LaneEvent,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (i64, u32) {
        (self.ticks, self.seq)
    }
}

/// A lean 4-ary min-heap over `(ticks, seq)` keys: the batched loop's
/// event queue. The scalar engine's radix calendar queue pays
/// per-bucket sorting that grows with event density; at B-lane density
/// a flat heap of 24-byte entries (a few cache lines total) pops and
/// pushes in a handful of branch-predictable compares. Ordering is
/// identical — time, then schedule order — so pops replay the same
/// per-lane sequences.
#[derive(Debug, Default)]
struct BatchHeap {
    entries: Vec<HeapEntry>,
    next_seq: u32,
}

impl BatchHeap {
    fn reset(&mut self) {
        self.entries.clear();
        self.next_seq = 0;
    }

    /// Claims the next sequence number without filing an event — the
    /// taped lanes' virtual allocation. The claim happens at exactly
    /// the program point where the heap-driven run would have pushed
    /// the `Arrival`, so `(ticks, seq)` keys — and therefore the merged
    /// dispatch order — are identical with and without tapes.
    #[inline]
    fn alloc_seq(&mut self) -> u32 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    #[inline]
    fn peek_ticks(&self) -> Option<i64> {
        self.entries.first().map(|e| e.ticks)
    }

    #[inline]
    fn push(&mut self, ticks: i64, lane: u32, event: LaneEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = HeapEntry {
            ticks,
            seq,
            lane,
            event,
        };
        // Hole-based sift-up: bubble the hole to the entry's slot, then
        // write the entry once.
        let mut i = self.entries.len();
        self.entries.push(entry);
        let key = entry.key();
        while i > 0 {
            let p = (i - 1) >> 2;
            if self.entries[p].key() <= key {
                break;
            }
            self.entries[i] = self.entries[p];
            i = p;
        }
        self.entries[i] = entry;
    }

    #[inline]
    fn pop(&mut self) -> Option<HeapEntry> {
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        let top = self.entries[0];
        let last = self.entries.pop().expect("non-empty");
        let n = n - 1;
        if n == 0 {
            return Some(top);
        }
        // Hole-based sift-down of the detached last entry.
        let key = last.key();
        let mut i = 0;
        loop {
            let first = (i << 2) + 1;
            if first >= n {
                break;
            }
            let mut m = first;
            let end = (first + 4).min(n);
            for c in first + 1..end {
                if self.entries[c].key() < self.entries[m].key() {
                    m = c;
                }
            }
            if key <= self.entries[m].key() {
                break;
            }
            self.entries[i] = self.entries[m];
            i = m;
        }
        self.entries[i] = last;
        Some(top)
    }
}

/// Reusable slabs of the batched engine. One per worker, beside its
/// [`RunContext`]; [`simulate_batch_in`] borrows both. Everything here
/// is cleared, never dropped, between cells, so steady-state batched
/// sweeps allocate O(1) slabs per cell (not per lane) — only the
/// per-lane result buffers (job records, samples, level residency) are
/// fresh, because they are moved into the returned [`SimResult`]s.
#[derive(Debug, Default)]
pub struct BatchContext {
    /// The shared event heap, keyed `(time, schedule seq)`, so two
    /// events of the same lane at the same tick pop in FIFO order —
    /// exactly the scalar tie-break — while events of different lanes
    /// interleave arbitrarily (harmless: lanes share no state).
    heap: BatchHeap,
    /// One tick's events as `(seq, lane, event)`, in schedule (seq)
    /// order — heap pops plus the taped lanes' release heads.
    scratch: Vec<(u32, u32, LaneEvent)>,
    /// Per-lane EDF ready queues (allocation reused across batches).
    queues: Vec<EdfQueue>,
    /// SoA storage state for the vectorized per-tick advance.
    soa: StorageLanes,
    /// Gather arrays for the single-segment sync fast path.
    sync_lanes: Vec<u32>,
    sync_from: Vec<SimTime>,
    sync_harvest: Vec<f64>,
    sync_dt: Vec<f64>,
    sync_load: Vec<f64>,
    /// Per-lane "already gathered this tick" flags.
    in_sync: Vec<bool>,
    /// Index of each lane's last event in `scratch`.
    last_of: Vec<u32>,
    /// Lanes whose end-of-tick decision was deferred to the group stage.
    deferred: Vec<u32>,
    /// Gather arrays for the lane-vectorized EA-DVFS evaluation.
    gd_lanes: Vec<u32>,
    gd_deadline: Vec<SimTime>,
    gd_avail: Vec<f64>,
    gd_work: Vec<f64>,
    gd_window: Vec<f64>,
    gd_out: Vec<Option<LevelIndex>>,
}

impl BatchContext {
    /// Creates an empty context; the first batch populates its slabs.
    pub fn new() -> Self {
        BatchContext::default()
    }
}

/// Batch-uniform parameters of the lean path, hoisted out of the
/// per-lane state: every lean lane shares these (enforced by the
/// eligibility screen), which is what lets one [`StorageSpec`] sweep
/// the lane arrays and one [`CpuModel`] answer the level searches.
struct Shared {
    cpu: CpuModel,
    spec: StorageSpec,
    cap: f64,
    miss_policy: MissPolicy,
    restart_quantum: f64,
    sample_interval: Option<SimDuration>,
    horizon: SimDuration,
    horizon_end: SimTime,
}

/// The batched mirror of the scalar `RunState`.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LaneRun {
    Idle,
    Stalled,
    Running { job: JobId, level: usize },
}

/// All mutable per-lane state of the lean loop.
struct LaneState {
    /// Index into the caller's lane/policy slices.
    orig: usize,
    tasks: Arc<TaskSet>,
    profile: Arc<PiecewiseConstant>,
    /// Kept for the debug cross-check and for symmetry with the scalar
    /// path; the lean loop itself computes oracle predictions straight
    /// off the uniform grid (bit-identical, pinned by the grid tests).
    predictor: Box<dyn EnergyPredictor>,
    /// Evaluate decisions through the lane-vectorized EA-DVFS replica.
    ea: bool,
    level: f64,
    state: LaneRun,
    last_sync: SimTime,
    epoch: u64,
    next_job_id: u64,
    records: Vec<JobRecord>,
    energy: EnergyAccounting,
    last_level: Option<usize>,
    switches: u64,
    level_time: Vec<f64>,
    idle_time: f64,
    stall_time: f64,
    samples: Vec<(SimTime, f64)>,
    /// Trace emissions per [`TraceEvent::kind_index`]; the counting-sink
    /// totals of the scalar path (which never retains records either on
    /// the sweep path).
    kinds: [u64; TraceEvent::KIND_COUNT],
    handled: u64,
    /// The head job finished during this tick's pre-sync; consumed by
    /// the lane's first event of the tick (the scalar `handle` computes
    /// the same flag per event, provably false after the first).
    completed_in_sync: bool,
    /// Precomputed release timeline; `None` runs releases through the
    /// shared heap.
    tape: Option<Arc<ReleaseTape>>,
    /// Index of the lane's next unconsumed tape entry.
    tape_next: usize,
    /// Virtual sequence number of each task's next pending release
    /// (meaningful only on taped lanes).
    pending_vseq: Vec<u32>,
    /// Whether deadline checks ride the side stream too (taped lanes
    /// with constrained deadlines only — see the scalar `TapeCursor`).
    elide_deadlines: bool,
    /// Per-task pending deadline check `(ticks, seq, job)`.
    deadline_slots: Vec<Option<(i64, u32, u64)>>,
    /// Cached minimum `(ticks, seq, task)` over the occupied slots.
    deadline_min: Option<(i64, u32, u32)>,
}

impl LaneState {
    #[inline]
    fn push_deadline(&mut self, task: usize, ticks: i64, seq: u32, job: u64) {
        debug_assert!(
            self.deadline_slots[task].is_none(),
            "constrained deadlines leave at most one outstanding check per task"
        );
        self.deadline_slots[task] = Some((ticks, seq, job));
        match self.deadline_min {
            Some((t, s, _)) if (t, s) < (ticks, seq) => {}
            _ => self.deadline_min = Some((ticks, seq, task as u32)),
        }
    }

    #[inline]
    fn pop_min_deadline(&mut self) -> u64 {
        let (_, _, task) = self.deadline_min.expect("popping an empty deadline stream");
        let (_, _, job) = self.deadline_slots[task as usize]
            .take()
            .expect("cached minimum points at an occupied slot");
        self.deadline_min = self
            .deadline_slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|(t, q, _)| (t, q, i as u32)))
            .min();
        job
    }
}

/// The shared event queue behind a horizon filter: events at or past
/// the horizon are dropped at the source (the scalar engine queues but
/// never handles them).
struct Sink<'a> {
    heap: &'a mut BatchHeap,
    horizon_ticks: i64,
}

impl Sink<'_> {
    #[inline]
    fn sched(&mut self, lane: u32, t: SimTime, event: LaneEvent) {
        let ticks = t.as_ticks();
        if ticks >= self.horizon_ticks {
            return;
        }
        self.heap.push(ticks, lane, event);
    }

    /// The taped mirror of a [`Self::sched`] for an elided event class
    /// (releases, deadline checks): claims the sequence number the push
    /// would have consumed, or `None` when the horizon filter would
    /// have dropped the event (and with it the allocation).
    #[inline]
    fn alloc_elided(&mut self, t: SimTime) -> Option<u32> {
        if t.as_ticks() >= self.horizon_ticks {
            None
        } else {
            Some(self.heap.alloc_seq())
        }
    }
}

/// Whether one lane can run on the lean batched loop at all. Everything
/// the lean loop does not replicate exactly — fault plans, watchdog
/// aborts, retained traces, metrics/profiling, non-ideal or infinite
/// storage, DVFS switch time, non-uniform or non-Hold profiles, and
/// non-oracle predictors (whose `observe` stream the fused sync walk
/// skips) — routes the lane to the scalar fallback.
fn lane_screen(lane: &BatchLane, oracle: bool) -> bool {
    let c = &lane.config;
    oracle
        && c.fault_plan.as_ref().is_none_or(|p| p.is_empty())
        && c.watchdog.is_none()
        && !c.collect_trace
        && !c.collect_metrics
        && !c.profile
        && c.cpu.switch_overhead().is_zero()
        && c.storage.is_ideal()
        && c.storage.capacity().is_finite()
        && lane.profile.uniform_grid().is_some()
}

/// How the lanes of one batch relate to each other. The engine itself
/// is agnostic — lanes share no mutable state either way — but the
/// retention statistics keep the two shapes apart: a sibling-seed batch
/// and a policy-lockstep batch of the same width have very different
/// synchrony (lockstep lanes share their release timeline exactly), so
/// folding both into one high-water mark would hide which shape a sweep
/// actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchGrouping {
    /// Lanes are sibling seeds of one (scenario, policy) cell.
    #[default]
    SiblingSeed,
    /// Lanes are policy arms of one (scenario, seed) cell.
    PolicyLockstep,
}

/// Whether a screened lane shares the batch-uniform parameters of the
/// first screened lane (sibling trials of one scenario always do).
fn lane_uniform(c: &SystemConfig, first: &SystemConfig) -> bool {
    c.cpu == first.cpu
        && c.storage == first.storage
        && c.miss_policy == first.miss_policy
        && c.restart_quantum == first.restart_quantum
        && c.sample_interval == first.sample_interval
        && c.horizon == first.horizon
}

/// Runs a batch of lanes, each bit-identical to the scalar
/// [`try_simulate_in`](crate::system::try_simulate_in) run of the same
/// inputs, returning one result per lane in order.
///
/// `oracle` declares that every predictor is the zero-state oracle over
/// its lane's profile (`observe` is a no-op and `predict_energy(a, b)`
/// is the exact profile integral): only then may the lean loop skip the
/// predictor entirely. Lanes that fail the eligibility screen — or
/// non-`oracle` batches wholesale — fall back to the scalar path per
/// lane; results are exact either way.
///
/// Policy counters (e.g. the EA-DVFS decision-class tallies) are not
/// maintained on the lean path: they are unobservable without
/// `collect_metrics` (which routes to the fallback) and every entry
/// point resets the policy before running. Lanes whose policy is named
/// `ea-dvfs` are evaluated through the lane-vectorized replica of
/// [`EaDvfsScheduler`] and cross-checked against it in debug builds;
/// other policies are consulted per lane through the ordinary
/// [`SchedContext`].
///
/// # Panics
///
/// Panics if `lanes` and `policies` lengths differ, or on the same
/// invalid-configuration conditions as the scalar path.
pub fn simulate_batch_in(
    batch: &mut BatchContext,
    ctx: &mut RunContext,
    lanes: Vec<BatchLane>,
    policies: &mut [Box<dyn Scheduler>],
    oracle: bool,
) -> Vec<Result<SimResult, SimError>> {
    simulate_batch_grouped_in(
        batch,
        ctx,
        lanes,
        policies,
        oracle,
        BatchGrouping::SiblingSeed,
    )
}

/// [`simulate_batch_in`] with an explicit [`BatchGrouping`]: identical
/// execution, but policy-lockstep batches account their occupancy into
/// the lockstep-specific [`PoolStats`](crate::system::PoolStats) fields
/// instead of the sibling-seed high-water mark.
pub fn simulate_batch_grouped_in(
    batch: &mut BatchContext,
    ctx: &mut RunContext,
    lanes: Vec<BatchLane>,
    policies: &mut [Box<dyn Scheduler>],
    oracle: bool,
    grouping: BatchGrouping,
) -> Vec<Result<SimResult, SimError>> {
    assert_eq!(
        lanes.len(),
        policies.len(),
        "one policy per lane is required"
    );
    let shared_cfg = lanes
        .iter()
        .find(|l| lane_screen(l, oracle))
        .map(|l| l.config.clone());
    let mut results: Vec<Option<Result<SimResult, SimError>>> =
        (0..lanes.len()).map(|_| None).collect();
    let mut lean: Vec<LaneState> = Vec::with_capacity(lanes.len());
    for (i, lane) in lanes.into_iter().enumerate() {
        let eligible = match &shared_cfg {
            Some(first) => lane_screen(&lane, oracle) && lane_uniform(&lane.config, first),
            None => false,
        };
        if eligible {
            let cap = lane.config.storage.capacity();
            let initial = lane.config.initial_level.unwrap_or(cap);
            assert!(
                initial >= 0.0 && initial <= cap,
                "initial level {initial} outside [0, {cap}]"
            );
            let level_count = lane.config.cpu.level_count();
            if let Some(t) = &lane.tape {
                assert_eq!(
                    t.horizon_ticks(),
                    lane.config.horizon.as_ticks(),
                    "release tape was built for a different horizon"
                );
                assert_eq!(
                    t.task_count(),
                    lane.tasks.len(),
                    "release tape was built for a different task set"
                );
            }
            // Arrivals are periodic from each task's phase, so the job
            // count is known up front: one exact-size slab instead of a
            // realloc chain while the log grows. A tape carries the
            // exact count.
            let jobs_hint = match &lane.tape {
                Some(t) => t.len(),
                None => {
                    let horizon_ticks = lane.config.horizon.as_ticks();
                    let mut hint = 0usize;
                    for task in lane.tasks.iter() {
                        let phase = task.phase().as_ticks();
                        if phase < 0 || phase >= horizon_ticks {
                            continue;
                        }
                        hint += match task.period() {
                            Some(p) if p.as_ticks() > 0 => {
                                ((horizon_ticks - 1 - phase) / p.as_ticks() + 1) as usize
                            }
                            _ => 1,
                        };
                    }
                    hint
                }
            };
            policies[i].reset();
            let pending_vseq = match &lane.tape {
                Some(_) => vec![0; lane.tasks.len()],
                None => Vec::new(),
            };
            let elide_deadlines = lane.tape.is_some()
                && lane
                    .tasks
                    .iter()
                    .all(|t| t.period().is_none_or(|p| t.relative_deadline() <= p));
            let deadline_slots = if elide_deadlines {
                vec![None; lane.tasks.len()]
            } else {
                Vec::new()
            };
            lean.push(LaneState {
                orig: i,
                tasks: lane.tasks,
                profile: lane.profile,
                predictor: lane.predictor,
                ea: policies[i].name() == "ea-dvfs",
                level: initial,
                state: LaneRun::Idle,
                last_sync: SimTime::ZERO,
                epoch: 0,
                next_job_id: 0,
                records: Vec::with_capacity(jobs_hint),
                energy: EnergyAccounting {
                    initial_level: initial,
                    ..EnergyAccounting::default()
                },
                last_level: None,
                switches: 0,
                level_time: vec![0.0; level_count],
                idle_time: 0.0,
                stall_time: 0.0,
                samples: Vec::new(),
                kinds: [0; TraceEvent::KIND_COUNT],
                handled: 0,
                completed_in_sync: false,
                tape: lane.tape,
                tape_next: 0,
                pending_vseq,
                elide_deadlines,
                deadline_slots,
                deadline_min: None,
            });
        } else {
            // The scalar fallback honors the tape too (and self-gates
            // on metric runs).
            results[i] = Some(try_simulate_in_taped(
                ctx,
                lane.config,
                lane.tasks,
                lane.profile,
                policies[i].as_mut(),
                lane.predictor,
                lane.tape,
            ));
        }
    }
    if !lean.is_empty() {
        let shared_cfg = shared_cfg.expect("lean lanes imply a screened config");
        let shared = Shared {
            cap: shared_cfg.storage.capacity(),
            spec: shared_cfg.storage,
            miss_policy: shared_cfg.miss_policy,
            restart_quantum: shared_cfg.restart_quantum,
            sample_interval: shared_cfg.sample_interval,
            horizon: shared_cfg.horizon,
            horizon_end: SimTime::ZERO + shared_cfg.horizon,
            cpu: shared_cfg.cpu,
        };
        let count = lean.len() as u64;
        let tally = run_lean_batch(batch, &shared, &mut lean, policies, &mut results);
        let stats = ctx.stats_mut();
        stats.runs += count;
        stats.batched_runs += count;
        stats.batch_ticks += tally.ticks;
        stats.multi_lane_ticks += tally.multi_lane_ticks;
        match grouping {
            BatchGrouping::SiblingSeed => {
                stats.batch_lane_high_water = stats.batch_lane_high_water.max(count);
            }
            BatchGrouping::PolicyLockstep => {
                stats.policy_batched_runs += count;
                stats.batch_policy_lane_high_water = stats.batch_policy_lane_high_water.max(count);
            }
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every lane produced a result"))
        .collect()
}

/// Per-batch synchrony tallies of one lean run, folded into
/// [`PoolStats`](crate::system::PoolStats) by the caller.
#[derive(Debug, Default, Clone, Copy)]
struct LeanTally {
    /// Distinct instants the lean loop processed.
    ticks: u64,
    /// Instants on which more than one lane had an event (the batch's
    /// cross-lane stages actually amortized work).
    multi_lane_ticks: u64,
}

/// The lean fused loop over the eligible lanes. Fills `results` at each
/// lane's original index.
fn run_lean_batch(
    batch: &mut BatchContext,
    sh: &Shared,
    lanes: &mut [LaneState],
    policies: &mut [Box<dyn Scheduler>],
    results: &mut [Option<Result<SimResult, SimError>>],
) -> LeanTally {
    let BatchContext {
        heap,
        scratch,
        queues,
        soa,
        sync_lanes,
        sync_from,
        sync_harvest,
        sync_dt,
        sync_load,
        in_sync,
        last_of,
        deferred,
        gd_lanes,
        gd_deadline,
        gd_avail,
        gd_work,
        gd_window,
        gd_out,
    } = batch;
    heap.reset();
    if queues.len() < lanes.len() {
        queues.resize_with(lanes.len(), EdfQueue::new);
    }
    in_sync.clear();
    in_sync.resize(lanes.len(), false);
    last_of.clear();
    last_of.resize(lanes.len(), 0);
    let mut sink = Sink {
        heap,
        horizon_ticks: sh.horizon_end.as_ticks(),
    };

    // One grid view per lane, built once: every profile lookup below
    // indexes through these instead of re-deriving a view (and bumping
    // the profile `Arc`) at each use site.
    let profiles: Vec<Arc<PiecewiseConstant>> =
        lanes.iter().map(|l| Arc::clone(&l.profile)).collect();
    let grids: Vec<UniformGridView<'_>> = profiles
        .iter()
        .map(|p| p.uniform_grid().expect("screened uniform grid"))
        .collect();

    // Seed first arrivals and the sampling grid, lane-sequentially: the
    // global seq preserves each lane's scalar seeding order. Taped
    // lanes claim each first release's sequence number instead of
    // pushing it.
    for li in 0..lanes.len() {
        debug_assert!(queues[li].is_empty(), "pooled ready queue must be cleared");
        let taped = lanes[li].tape.is_some();
        let tasks = Arc::clone(&lanes[li].tasks);
        for (i, task) in tasks.iter().enumerate() {
            let phase = task.phase();
            if phase >= SimTime::ZERO && phase < sh.horizon_end {
                if taped {
                    lanes[li].pending_vseq[i] = sink.heap.alloc_seq();
                } else {
                    sink.sched(li as u32, phase, LaneEvent::Arrival { task: i as u32 });
                }
            }
        }
        if sh.sample_interval.is_some() {
            sink.sched(li as u32, SimTime::ZERO, LaneEvent::Sample);
        }
    }

    let has_tape = lanes.iter().any(|l| l.tape.is_some());
    let mut tally = LeanTally::default();
    loop {
        // The next instant is the earliest of the heap top and every
        // taped lane's release head (an O(B) scan, paid only by taped
        // batches).
        let mut next = sink.heap.peek_ticks();
        if has_tape {
            for lane in lanes.iter() {
                if let Some(e) = lane
                    .tape
                    .as_deref()
                    .and_then(|t| t.entries().get(lane.tape_next))
                {
                    next = Some(match next {
                        Some(t) => t.min(e.ticks),
                        None => e.ticks,
                    });
                }
                if let Some((t, _, _)) = lane.deadline_min {
                    next = Some(match next {
                        Some(n) => n.min(t),
                        None => t,
                    });
                }
            }
        }
        let Some(now_ticks) = next else { break };
        let now = SimTime::from_ticks(now_ticks);
        tally.ticks += 1;
        // Collect the tick: every tape head at this instant (each
        // carrying its pre-claimed virtual seq — always allocated at or
        // before `now - period`, so valid here), then every heap event.
        scratch.clear();
        let mut side_events = 0usize;
        if has_tape {
            for (li, lane) in lanes.iter_mut().enumerate() {
                while let Some((t, seq, _)) = lane.deadline_min {
                    if t != now_ticks {
                        break;
                    }
                    let job = lane.pop_min_deadline();
                    scratch.push((seq, li as u32, LaneEvent::DeadlineCheck { job: JobId(job) }));
                    side_events += 1;
                }
                while let Some(e) = lane
                    .tape
                    .as_deref()
                    .and_then(|t| t.entries().get(lane.tape_next))
                    .copied()
                    .filter(|e| e.ticks == now_ticks)
                {
                    scratch.push((
                        lane.pending_vseq[e.task as usize],
                        li as u32,
                        LaneEvent::Arrival { task: e.task },
                    ));
                    lane.tape_next += 1;
                    side_events += 1;
                }
            }
        }
        while sink.heap.peek_ticks() == Some(now_ticks) {
            let e = sink.heap.pop().expect("peeked event pops");
            scratch.push((e.seq, e.lane, e.event));
        }
        // Heap pops arrive seq-sorted, but side events (deadline slots,
        // tape heads) from several per-lane streams may interleave with
        // them and each other; restore the merge order exactly when the
        // gather broke it.
        if side_events > 0 && scratch.len() > 1 && !scratch.windows(2).all(|w| w[0].0 <= w[1].0) {
            scratch.sort_unstable_by_key(|&(seq, _, _)| seq);
        }
        // Single-event fast path: most ticks carry exactly one event
        // (sibling seeds rarely share a tick), and every cross-lane
        // stage below would gather exactly one lane. Run the scalar
        // per-event sequence directly — the same op stream, minus the
        // batch bookkeeping (gather arrays, SoA round-trip, group
        // stage).
        if scratch.len() == 1 {
            let (_, le, event) = scratch[0];
            let li = le as usize;
            sync_walk(sh, &mut lanes[li], &mut queues[li], &grids[li], now);
            let need_decide = handle_event(
                sh,
                &mut lanes[li],
                &mut queues[li],
                &mut sink,
                le,
                now,
                event,
            );
            if need_decide {
                let orig = lanes[li].orig;
                decide_lane(
                    sh,
                    &mut lanes[li],
                    &mut queues[li],
                    &grids[li],
                    policies[orig].as_mut(),
                    &mut sink,
                    le,
                    now,
                );
            }
            continue;
        }
        // Single-lane tick: same inline sequence as above, per event.
        if scratch.iter().all(|&(_, le, _)| le == scratch[0].1) {
            let le = scratch[0].1;
            let li = le as usize;
            sync_walk(sh, &mut lanes[li], &mut queues[li], &grids[li], now);
            for &(_, _, event) in scratch.iter() {
                let need_decide = handle_event(
                    sh,
                    &mut lanes[li],
                    &mut queues[li],
                    &mut sink,
                    le,
                    now,
                    event,
                );
                if need_decide {
                    let orig = lanes[li].orig;
                    decide_lane(
                        sh,
                        &mut lanes[li],
                        &mut queues[li],
                        &grids[li],
                        policies[orig].as_mut(),
                        &mut sink,
                        le,
                        now,
                    );
                }
            }
            continue;
        }

        tally.multi_lane_ticks += 1;
        for (i, &(_, le, _)) in scratch.iter().enumerate() {
            last_of[le as usize] = i as u32;
        }

        // Pre-sync every lane with an event this tick. Lanes whose whole
        // window sits in one profile segment advance together through
        // the SoA lane sweep; multi-segment windows take the fused walk.
        // Either way the arithmetic is the scalar `advance_with` op
        // sequence per lane, so the interleaving is unobservable.
        sync_lanes.clear();
        sync_from.clear();
        sync_harvest.clear();
        sync_dt.clear();
        sync_load.clear();
        for &(_, le, _) in scratch.iter() {
            let li = le as usize;
            if in_sync[li] {
                continue;
            }
            let lane = &mut lanes[li];
            if lane.last_sync >= now {
                continue;
            }
            in_sync[li] = true;
            let from = lane.last_sync;
            let load = match lane.state {
                LaneRun::Running { level, .. } => sh.cpu.power(level),
                LaneRun::Idle | LaneRun::Stalled => sh.cpu.idle_power(),
            };
            let grid = &grids[li];
            let single = match grid.next_breakpoint_after(from) {
                None => true,
                Some(b) => b >= now,
            };
            if single {
                let dt = (now - from).as_units();
                let value = grid.value_at(from);
                // The window is the one clipped segment, so this is the
                // scalar accounting loop's single `seg.integral()` add.
                lane.energy.harvested += value * dt;
                sync_lanes.push(le);
                sync_from.push(from);
                sync_harvest.push(value);
                sync_dt.push(dt);
                sync_load.push(load);
            } else {
                sync_walk(sh, lane, &mut queues[li], grid, now);
            }
        }
        if !sync_lanes.is_empty() {
            soa.reset(sync_lanes.len(), 0.0);
            for (slot, &li) in sync_lanes.iter().enumerate() {
                soa.set_level(slot, lanes[li as usize].level);
            }
            let reports = soa.begin_advance();
            sh.spec
                .advance_lanes(reports, sync_harvest, sync_dt, sync_load);
            for (slot, &li) in sync_lanes.iter().enumerate() {
                let report = soa.reports()[slot];
                finish_sync(
                    sh,
                    &mut lanes[li as usize],
                    &mut queues[li as usize],
                    &report,
                    sync_from[slot],
                    now,
                );
            }
        }
        for &(_, le, _) in scratch.iter() {
            in_sync[le as usize] = false;
        }

        // Handle the tick's events in seq order. A lane's decision is
        // deferred to the cross-lane group stage only from its *last*
        // event of the tick: no later same-tick event of that lane can
        // observe the pre-decision state (events never self-schedule at
        // the current tick, so the batch is complete), and other lanes
        // share nothing. Earlier decisions run inline, exactly where the
        // scalar loop runs them.
        deferred.clear();
        for (i, &(_, le, event)) in scratch.iter().enumerate() {
            let li = le as usize;
            let need_decide = handle_event(
                sh,
                &mut lanes[li],
                &mut queues[li],
                &mut sink,
                le,
                now,
                event,
            );
            if need_decide {
                if last_of[li] == i as u32 {
                    deferred.push(le);
                } else {
                    let orig = lanes[li].orig;
                    decide_lane(
                        sh,
                        &mut lanes[li],
                        &mut queues[li],
                        &grids[li],
                        policies[orig].as_mut(),
                        &mut sink,
                        le,
                        now,
                    );
                }
            }
        }

        // Group decision stage: EA-DVFS lanes gather into arrays and
        // share one lane-vectorized eq. 6 search; other policies are
        // consulted per lane.
        gd_lanes.clear();
        gd_deadline.clear();
        gd_avail.clear();
        gd_work.clear();
        gd_window.clear();
        for &le in deferred.iter() {
            let li = le as usize;
            let lane = &mut lanes[li];
            lane.epoch += 1;
            let queue = &mut queues[li];
            if queue.is_empty() {
                lane.state = LaneRun::Idle;
                continue;
            }
            if lane.ea {
                let head = queue.peek().expect("non-empty queue");
                let d = head.absolute_deadline();
                let work = head.remaining_work();
                gd_lanes.push(le);
                gd_deadline.push(d);
                gd_avail.push(lane.level + oracle_predict(&grids[li], now, d));
                gd_work.push(work);
                gd_window.push((d - now).as_units());
            } else {
                let decision = {
                    let head = queue.peek().expect("non-empty queue");
                    let storage = Storage::new(sh.spec, lane.level);
                    let sctx =
                        SchedContext::new(now, head, &sh.cpu, &storage, lane.predictor.as_ref());
                    policies[lane.orig].decide(&sctx)
                };
                act(sh, lane, queue, &grids[li], &mut sink, le, now, decision);
            }
        }
        if !gd_lanes.is_empty() {
            gd_out.clear();
            gd_out.resize(gd_lanes.len(), None);
            sh.cpu.min_feasible_level_lanes(gd_work, gd_window, gd_out);
            for slot in 0..gd_lanes.len() {
                let le = gd_lanes[slot];
                let li = le as usize;
                let decision =
                    ea_decide_from(sh, now, gd_deadline[slot], gd_avail[slot], gd_out[slot]);
                debug_check_ea(sh, &lanes[li], &queues[li], now, decision);
                act(
                    sh,
                    &mut lanes[li],
                    &mut queues[li],
                    &grids[li],
                    &mut sink,
                    le,
                    now,
                    decision,
                );
            }
        }
    }
    // Settle each lane at the horizon and extract its result.
    for (li, lane) in lanes.iter_mut().enumerate() {
        sync_walk(sh, lane, &mut queues[li], &grids[li], sh.horizon_end);
        lane.energy.final_level = lane.level;
        for rec in &mut lane.records {
            if matches!(rec.outcome, JobOutcome::Pending) && rec.deadline <= sh.horizon_end {
                rec.outcome = JobOutcome::Missed { completed: None };
            }
        }
        queues[li].clear();
        let trace_kind_counts = lane.kinds.to_vec();
        let trace_events = lane.kinds.iter().sum();
        results[lane.orig] = Some(Ok(SimResult {
            scheduler: policies[lane.orig].name().to_owned(),
            horizon: sh.horizon,
            jobs: mem::take(&mut lane.records),
            energy: lane.energy,
            switches: lane.switches,
            events: lane.handled,
            trace_events,
            trace_kind_counts,
            level_time: mem::take(&mut lane.level_time),
            idle_time: lane.idle_time,
            stall_time: lane.stall_time,
            samples: mem::take(&mut lane.samples),
            trace: Vec::new(),
            metrics: None,
            profile: None,
        }));
    }
    tally
}

/// Tallies one trace emission (the counting-sink arm of the scalar
/// `trace_event`; the lean loop never retains records).
#[inline]
fn bump(lane: &mut LaneState, event: TraceEvent) {
    lane.kinds[event.kind_index()] += 1;
}

/// The exact oracle prediction: [`harvest_energy::predictor::OraclePredictor`]
/// answers `predict_energy(from, until)` with the profile integral (its
/// cursor is a pure accelerator), and the grid integral is pinned
/// bit-identical to the cursor path.
#[inline]
fn oracle_predict(grid: &UniformGridView<'_>, from: SimTime, until: SimTime) -> f64 {
    if until <= from {
        0.0
    } else {
        grid.integrate(from, until)
    }
}

/// Storage-advance epilogue shared by both sync paths: fold the report
/// into the accounting and advance job progress — the scalar `sync_to`
/// tail, verbatim.
fn finish_sync(
    sh: &Shared,
    lane: &mut LaneState,
    queue: &mut EdfQueue,
    report: &AdvanceReport,
    from: SimTime,
    now: SimTime,
) {
    lane.level = report.level;
    lane.energy.consumed += report.delivered;
    lane.energy.overflow += report.overflow;
    lane.energy.deficit += report.deficit;
    let span = (now - from).as_units();
    match lane.state {
        LaneRun::Running { job, level } => {
            lane.level_time[level] += span;
            let speed = sh.cpu.speed(level);
            let head = queue
                .peek_mut()
                .expect("running state implies a queued head job");
            debug_assert_eq!(head.id(), job, "running job must be the EDF head");
            head.execute(speed, now - from);
            lane.records[job.0 as usize].energy += report.delivered;
            if head.is_finished() {
                let done = queue.pop().expect("head exists");
                finish_job(lane, now, &done);
                lane.state = LaneRun::Idle;
                lane.completed_in_sync = true;
            }
        }
        LaneRun::Idle => lane.idle_time += span,
        LaneRun::Stalled => {
            lane.idle_time += span;
            lane.stall_time += span;
        }
    }
    lane.last_sync = now;
}

/// Advances one lane's continuous state to `now` with a fused walk over
/// the profile grid: per segment, one `advance_constant` step plus the
/// harvested-energy add — the same per-accumulator op sequences as the
/// scalar `advance_with` + accounting loop (`observe` is the oracle
/// no-op on this path).
fn sync_walk(
    sh: &Shared,
    lane: &mut LaneState,
    queue: &mut EdfQueue,
    grid: &UniformGridView<'_>,
    now: SimTime,
) {
    if now <= lane.last_sync {
        return;
    }
    let from = lane.last_sync;
    let load = match lane.state {
        LaneRun::Running { level, .. } => sh.cpu.power(level),
        LaneRun::Idle | LaneRun::Stalled => sh.cpu.idle_power(),
    };
    debug_assert!(lane.level >= 0.0 && lane.level <= sh.cap);
    let mut report = AdvanceReport {
        level: lane.level,
        ..AdvanceReport::default()
    };
    let harvested = &mut lane.energy.harvested;
    grid.for_each_segment(from, now, |seg| {
        sh.spec
            .advance_constant(&mut report, seg.value, seg.duration().as_units(), load);
        *harvested += seg.integral();
    });
    finish_sync(sh, lane, queue, &report, from, now);
}

/// Handles one lane event — the scalar engine's event dispatch,
/// verbatim — returning whether the scalar loop would consult the
/// policy afterwards (a completion observed during the preceding sync
/// also forces a decision, exactly as the scalar `sync_to` does).
#[inline]
fn handle_event(
    sh: &Shared,
    lane: &mut LaneState,
    queue: &mut EdfQueue,
    sink: &mut Sink,
    le: u32,
    now: SimTime,
    event: LaneEvent,
) -> bool {
    let completed = mem::take(&mut lane.completed_in_sync);
    let mut need_decide = completed;
    match event {
        LaneEvent::Arrival { task } => {
            release_job(lane, queue, sink, le, now, task as usize);
            need_decide = true;
        }
        LaneEvent::DeadlineCheck { job } => {
            let contained = queue.contains(job);
            handle_deadline(sh, lane, queue, job);
            if contained {
                need_decide = true;
            }
        }
        LaneEvent::Reevaluate { epoch } => {
            if epoch == lane.epoch {
                need_decide = true;
            }
        }
        LaneEvent::Sample => {
            let level = lane.level;
            lane.samples.push((now, level));
            if let Some(dt) = sh.sample_interval {
                sink.sched(le, now + dt, LaneEvent::Sample);
            }
        }
    }
    lane.handled += 1;
    need_decide
}

/// The scalar `release_job`, against lane-local state.
fn release_job(
    lane: &mut LaneState,
    queue: &mut EdfQueue,
    sink: &mut Sink,
    le: u32,
    now: SimTime,
    task_index: usize,
) {
    let tasks = Arc::clone(&lane.tasks);
    let task = &tasks.tasks()[task_index];
    let id = JobId(lane.next_job_id);
    lane.next_job_id += 1;
    let deadline = now + task.relative_deadline();
    let job =
        Job::new(id, task_index, now, deadline, task.wcet()).with_actual_work(task.actual_work());
    lane.records.push(JobRecord {
        id,
        task_index,
        arrival: now,
        deadline,
        wcet: task.wcet(),
        outcome: JobOutcome::Pending,
        energy: 0.0,
    });
    bump(
        lane,
        TraceEvent::Released {
            job: id,
            task: task_index,
            deadline,
        },
    );
    queue.push(job);
    if lane.elide_deadlines {
        // The check parks in the task's slot instead of the shared
        // heap; the claim mirrors the push's horizon filter.
        if let Some(seq) = sink.alloc_elided(deadline) {
            lane.push_deadline(task_index, deadline.as_ticks(), seq, id.0);
        }
    } else {
        sink.sched(le, deadline, LaneEvent::DeadlineCheck { job: id });
    }
    if let Some(period) = task.period() {
        if lane.tape.is_some() {
            // The successor release lives on the tape; claim the seq
            // the push would have taken (unless the horizon filter
            // would have dropped both).
            if let Some(vseq) = sink.alloc_elided(now + period) {
                lane.pending_vseq[task_index] = vseq;
            }
        } else {
            sink.sched(
                le,
                now + period,
                LaneEvent::Arrival {
                    task: task_index as u32,
                },
            );
        }
    }
}

/// The scalar `handle_deadline`, against lane-local state.
fn handle_deadline(sh: &Shared, lane: &mut LaneState, queue: &mut EdfQueue, job: JobId) {
    if !queue.contains(job) {
        return;
    }
    if !matches!(lane.records[job.0 as usize].outcome, JobOutcome::Pending) {
        return;
    }
    lane.records[job.0 as usize].outcome = JobOutcome::Missed { completed: None };
    bump(lane, TraceEvent::Missed { job });
    if sh.miss_policy == MissPolicy::AbortAtDeadline {
        let was_running = matches!(lane.state, LaneRun::Running { job: j, .. } if j == job);
        queue.remove(job).expect("checked contains");
        if was_running {
            lane.state = LaneRun::Idle;
        }
    }
}

/// The scalar `finish_job`, against lane-local state.
fn finish_job(lane: &mut LaneState, now: SimTime, job: &Job) {
    let id = job.id();
    match lane.records[id.0 as usize].outcome {
        JobOutcome::Pending => {
            lane.records[id.0 as usize].outcome = JobOutcome::Completed { at: now };
            bump(lane, TraceEvent::Completed { job: id });
        }
        JobOutcome::Missed { completed: None } => {
            lane.records[id.0 as usize].outcome = JobOutcome::Missed {
                completed: Some(now),
            };
            bump(lane, TraceEvent::Completed { job: id });
        }
        ref other => unreachable!("finishing a job in state {other:?}"),
    }
}

/// One inline decision: the scalar `decide` (epoch bump, policy
/// consult, action) for a single lane.
#[allow(clippy::too_many_arguments)] // mirrors the scalar decide's context, split per lane
fn decide_lane(
    sh: &Shared,
    lane: &mut LaneState,
    queue: &mut EdfQueue,
    grid: &UniformGridView<'_>,
    policy: &mut dyn Scheduler,
    sink: &mut Sink,
    le: u32,
    now: SimTime,
) {
    lane.epoch += 1;
    if queue.is_empty() {
        lane.state = LaneRun::Idle;
        return;
    }
    let decision = if lane.ea {
        let head = queue.peek().expect("non-empty queue");
        let d = head.absolute_deadline();
        let window = (d - now).as_units();
        let avail = lane.level + oracle_predict(grid, now, d);
        let feasible = sh.cpu.min_feasible_level(head.remaining_work(), window);
        let decision = ea_decide_from(sh, now, d, avail, feasible);
        debug_check_ea(sh, lane, queue, now, decision);
        decision
    } else {
        let head = queue.peek().expect("non-empty queue");
        let storage = Storage::new(sh.spec, lane.level);
        let sctx = SchedContext::new(now, head, &sh.cpu, &storage, lane.predictor.as_ref());
        policy.decide(&sctx)
    };
    act(sh, lane, queue, grid, sink, le, now, decision);
}

/// Paper eq. 7/8: `max(now, D − sr)` — the [`SchedContext::latest_start`]
/// expression, verbatim.
#[inline]
fn latest_start(now: SimTime, d: SimTime, run_time: f64) -> SimTime {
    if run_time.is_infinite() {
        return now;
    }
    SimTime::from_units(d.as_units() - run_time).max(now)
}

/// The [`EaDvfsScheduler`] decision rule on pre-gathered lane inputs:
/// `avail` is the memoized `EC + ÊS` (computed once, as the scalar
/// memo guarantees) and `feasible` the eq. 6 search result (pure, so
/// evaluating it for shortcut lanes that never consult it is harmless).
/// Storage is finite on this path, so `run_time_at_power` is the plain
/// division.
fn ea_decide_from(
    sh: &Shared,
    now: SimTime,
    d: SimTime,
    avail: f64,
    feasible: Option<LevelIndex>,
) -> Decision {
    let max = sh.cpu.max_level();
    let sr_max = avail / sh.cpu.max_power();
    let s2 = latest_start(now, d, sr_max);
    if s2 <= now {
        return Decision::run(max);
    }
    let n = match feasible {
        None => return Decision::run(max),
        Some(n) => n,
    };
    if n == max {
        return if s2 > now {
            Decision::IdleUntil(s2)
        } else {
            Decision::run(max)
        };
    }
    let sr_n = avail / sh.cpu.power(n);
    let s1 = latest_start(now, d, sr_n);
    debug_assert!(s1 <= s2, "slower power must allow an earlier latest-start");
    if now < s1 {
        Decision::IdleUntil(s1)
    } else {
        Decision::Run {
            level: n,
            review: Some(s2),
        }
    }
}

/// Debug-build cross-check: the lane evaluator must agree with the real
/// [`EaDvfsScheduler`] consulted through an ordinary [`SchedContext`].
#[allow(unused_variables)]
fn debug_check_ea(
    sh: &Shared,
    lane: &LaneState,
    queue: &EdfQueue,
    now: SimTime,
    decision: Decision,
) {
    #[cfg(debug_assertions)]
    {
        let head = queue.peek().expect("non-empty queue");
        let storage = Storage::new(sh.spec, lane.level);
        let sctx = SchedContext::new(now, head, &sh.cpu, &storage, lane.predictor.as_ref());
        let mut reference = EaDvfsScheduler::new();
        let expected = reference.decide(&sctx);
        debug_assert_eq!(
            decision, expected,
            "lane-vectorized EA-DVFS diverged from the scalar policy"
        );
    }
}

/// Acts on a decision: the scalar `decide`'s post-policy tail (state
/// transition, switch accounting, wake-up scheduling), verbatim against
/// lane-local state, with every profile lookup answered by the uniform
/// grid (pinned bit-identical to the cursor paths).
#[allow(clippy::too_many_arguments)] // mirrors the scalar decide's context, split per lane
fn act(
    sh: &Shared,
    lane: &mut LaneState,
    queue: &mut EdfQueue,
    grid: &UniformGridView<'_>,
    sink: &mut Sink,
    le: u32,
    now: SimTime,
    decision: Decision,
) {
    match decision {
        Decision::IdleUntil(s) => {
            assert!(s > now, "policy idled until the past ({s} <= {now})");
            lane.state = LaneRun::Idle;
            bump(lane, TraceEvent::Idled { until: Some(s) });
            sink.sched(le, s, LaneEvent::Reevaluate { epoch: lane.epoch });
        }
        Decision::Run { level, review } => {
            assert!(level < sh.cpu.level_count(), "invalid level {level}");
            let power = sh.cpu.power(level);
            let harvest_now = grid.value_at(now);
            let net = sh.spec.net_rate(harvest_now, power);
            if lane.level < ENERGY_EPS && net < 0.0 {
                stall(sh, lane, sink, le, now, power, grid);
                return;
            }
            let speed = sh.cpu.speed(level);
            let head = queue.peek().expect("head unchanged");
            let head_id = head.id();
            let completion = now + head.time_to_finish(speed);
            if lane.last_level != Some(level) {
                if lane.last_level.is_some() {
                    lane.switches += 1;
                    let cost = sh.cpu.switch_energy();
                    if cost > 0.0 {
                        let drained = (lane.level - cost).max(0.0);
                        lane.energy.consumed += lane.level - drained;
                        lane.level = drained;
                    }
                }
                lane.last_level = Some(level);
            }
            lane.state = LaneRun::Running {
                job: head_id,
                level,
            };
            bump(
                lane,
                TraceEvent::Started {
                    job: head_id,
                    level,
                },
            );
            sink.sched(le, completion, LaneEvent::Reevaluate { epoch: lane.epoch });
            let mut window_end = completion;
            if let Some(r) = review {
                if r > now && r < completion {
                    sink.sched(le, r, LaneEvent::Reevaluate { epoch: lane.epoch });
                    window_end = r;
                }
            }
            if lane.level > ENERGY_EPS {
                // The scalar `first_crossing_with` with target 0: the
                // level differs from the target here, and the spec is
                // ideal and finite, so it is exactly the grid's clamped
                // accumulation crossing.
                if let Some(t) = grid
                    .first_accumulation_crossing(now, window_end, lane.level, -power, sh.cap, 0.0)
                {
                    if t > now {
                        sink.sched(le, t, LaneEvent::Reevaluate { epoch: lane.epoch });
                    }
                }
            } else if let Some(t) = grid.next_breakpoint_after(now) {
                if t < window_end {
                    sink.sched(le, t, LaneEvent::Reevaluate { epoch: lane.epoch });
                }
            }
        }
    }
}

/// The scalar `stall` (paper §4.2 restart-quantum scavenging), with the
/// crossing solved on the grid (identical, including the
/// level-equals-target early return).
fn stall(
    sh: &Shared,
    lane: &mut LaneState,
    sink: &mut Sink,
    le: u32,
    now: SimTime,
    power: f64,
    grid: &UniformGridView<'_>,
) {
    let target = (sh.restart_quantum * power).min(sh.cap);
    let wake = grid.first_accumulation_crossing(
        now,
        sh.horizon_end,
        lane.level,
        -sh.cpu.idle_power(),
        sh.cap,
        target,
    );
    lane.state = LaneRun::Stalled;
    match wake {
        Some(t) if t > now => {
            bump(lane, TraceEvent::Stalled { until: Some(t) });
            sink.sched(le, t, LaneEvent::Reevaluate { epoch: lane.epoch });
        }
        // Restart level already met (boundary rounding) — retry on the
        // next tick rather than spinning at the same instant.
        Some(_) => {
            let t = now + SimDuration::TICK;
            bump(lane, TraceEvent::Stalled { until: Some(t) });
            sink.sched(le, t, LaneEvent::Reevaluate { epoch: lane.epoch });
        }
        // The source never recovers within the horizon: sleep until an
        // arrival changes the picture.
        None => bump(lane, TraceEvent::Stalled { until: None }),
    }
}
