//! The closed-loop system simulator.
//!
//! Binds together the paper's Figure 2 system: an ambient source
//! realization (piecewise-constant profile), the energy storage, a
//! DVFS processor, an EDF ready queue, a scheduling policy, and an
//! energy predictor. All continuous evolution (storage level, job
//! progress) is piecewise-linear and synchronized lazily at events, so
//! the run is exact up to one tick per scheduled crossing.
//!
//! Event structure:
//!
//! * `Arrival` — a task releases a job (and schedules its next release);
//! * `DeadlineCheck` — fires at each job's absolute deadline to record
//!   misses (paper's firm-deadline semantics);
//! * `Reevaluate` — policy-requested wake-ups: idle-until (`s1`, LSA's
//!   `s`), the EA-DVFS `s2` review, predicted completion, and storage
//!   depletion; stale ones are filtered by a decision epoch;
//! * `Sample` — storage-level sampling for the Fig. 6/7 curves.

use harvest_energy::fault::{apply_harvest_faults, harvest_factor_at};
use harvest_energy::predictor::{EnergyPredictor, FaultyPredictor};
use harvest_energy::storage::Storage;
use harvest_obs::flight::FlightDump;
use harvest_obs::profile::PhaseProfiler;
use harvest_obs::{
    FlightRecorder, Log2Histogram, MetricsRegistry, MetricsSink, SharedFlightRecorder,
};
use harvest_sim::engine::{Engine, Model, RunOutcome, Scheduler as EngineCtx, WatchdogKind};
use harvest_sim::event::{EventQueue, QueueStats, ReleaseTape};
use harvest_sim::piecewise::{Cursor, CursorStats, PiecewiseConstant};
use harvest_sim::time::{SimDuration, SimTime};
use harvest_sim::trace::CountingSink;
use harvest_task::job::{Job, JobId};
use harvest_task::queue::EdfQueue;
use harvest_task::task::Task;
use harvest_task::taskset::TaskSet;
use serde::{Deserialize, Serialize};

use std::sync::Arc;

use crate::config::{MissPolicy, SystemConfig};
use crate::fault::FaultPlan;
use crate::result::{EnergyAccounting, JobOutcome, JobRecord, SimError, SimResult};
use crate::scheduler::{Decision, SchedContext, Scheduler};
use crate::trace::TraceEvent;

/// Stored-energy amounts below this are treated as "empty" when deciding
/// whether execution can proceed.
pub(crate) const ENERGY_EPS: f64 = 1e-9;

/// Phase name for the continuous-state advance ([`SystemModel::sync_to`]:
/// storage integration, accounting, job progress) in a profiled run.
pub const PHASE_ENERGY_SYNC: &str = "energy.sync";

/// Phase name for the policy's `decide` call in a profiled run.
pub const PHASE_POLICY_DECIDE: &str = "policy.decide";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SysEvent {
    Arrival {
        task: usize,
    },
    DeadlineCheck {
        job: JobId,
    },
    Reevaluate {
        epoch: u64,
    },
    Sample,
    /// An injected fault window opens or closes; the model re-derives
    /// the attenuation/lockout state and re-decides.
    FaultEdge,
}

/// Where domain trace events go. Sweeps only need statistics, so the
/// default arm counts emissions through a [`CountingSink`] without ever
/// constructing a record; figure runs keep the full log.
#[derive(Debug)]
enum TraceLog {
    /// Count emissions only (the sweep fast path).
    Count(CountingSink),
    /// Retain every record (figure traces).
    Keep(Vec<(SimTime, TraceEvent)>),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RunState {
    Idle,
    Stalled,
    Running { job: JobId, level: usize },
}

/// Decision-shape counters of one run. Always maintained — each is a
/// plain integer add (or one histogram insert per *decision*, far off
/// the per-event hot path) — and frozen into the metrics snapshot only
/// when `collect_metrics` is set. Counting never influences decisions.
struct ObsCounters {
    /// Policy consultations (queue non-empty at a scheduling event).
    decide_calls: u64,
    /// Decisions that idled the processor until a wake-up.
    idle_decisions: u64,
    /// Decisions that ran the head job.
    run_decisions: u64,
    /// Times the system entered the stalled state (empty store, §4.2).
    stall_entries: u64,
    /// Exact storage-depletion crossings scheduled inside run windows.
    depletion_wakeups: u64,
    /// Advance windows that pinned the store at empty (shortfall).
    clamp_empty_windows: u64,
    /// Advance windows that pinned the store at full (overflow).
    clamp_full_windows: u64,
    /// `ÊS(t, D)` lookups answered by the per-decision memo.
    es_memo_hits: u64,
    /// `ÊS(t, D)` lookups that queried the predictor.
    es_memo_misses: u64,
    /// Execution (re)starts per DVFS level.
    level_starts: Vec<u64>,
    /// Injected harvest attenuation changes that fired.
    fault_harvest_edges: u64,
    /// Injected DVFS lockout toggles (per level transition).
    fault_lockout_changes: u64,
    /// Lengths of policy-chosen idle waits, in time units.
    idle_wait: Log2Histogram,
}

impl ObsCounters {
    fn new(level_count: usize) -> Self {
        ObsCounters {
            decide_calls: 0,
            idle_decisions: 0,
            run_decisions: 0,
            stall_entries: 0,
            depletion_wakeups: 0,
            clamp_empty_windows: 0,
            clamp_full_windows: 0,
            es_memo_hits: 0,
            es_memo_misses: 0,
            level_starts: vec![0; level_count],
            fault_harvest_edges: 0,
            fault_lockout_changes: 0,
            idle_wait: Log2Histogram::new(),
        }
    }
}

/// Live fault-injection state carried by the model: the plan plus the
/// attenuation factor in effect after the last handled edge (for
/// change detection and trace emission).
#[derive(Debug)]
struct FaultRuntime {
    plan: FaultPlan,
    harvest_factor: f64,
}

/// Monotone cursor over a shared [`ReleaseTape`]: releases are served
/// from the precomputed timeline instead of round-tripping through the
/// radix event queue, one `Arrival` push/pop per job.
///
/// Bit-identity with the heap-driven run hinges on `pending_seq`: each
/// task's next release carries a *virtual* sequence number allocated
/// from the event queue's shared counter ([`EventQueue::alloc_seq`]) at
/// exactly the program point where the heap path would have scheduled
/// the `Arrival` — at seeding for the first release, inside
/// [`SystemModel::release_job`] for every successor. The merged
/// `(time, seq)` dispatch order is therefore identical, tie-for-tie.
#[derive(Debug)]
struct TapeCursor {
    tape: Arc<ReleaseTape>,
    /// Index of the next unconsumed tape entry.
    next: usize,
    /// Virtual sequence number of each task's next pending release.
    pending_seq: Vec<u32>,
    /// Whether deadline checks ride the side stream too. Requires
    /// constrained deadlines (`D_i <= T_i` for every periodic task):
    /// then a job's check fires no later than the task's next release,
    /// so one slot per task can never hold two outstanding checks.
    elide_deadlines: bool,
    /// Per-task pending deadline check `(ticks, seq, job)`, claimed at
    /// release exactly where the heap path would have scheduled it.
    deadline_slots: Vec<Option<(i64, u32, u64)>>,
    /// Cached minimum `(ticks, seq, task)` over the occupied slots, so
    /// the per-event side peek is a compare, not a slot scan.
    deadline_min: Option<(i64, u32, u32)>,
}

impl TapeCursor {
    #[inline]
    fn push_deadline(&mut self, task: usize, ticks: i64, seq: u32, job: u64) {
        debug_assert!(
            self.deadline_slots[task].is_none(),
            "constrained deadlines leave at most one outstanding check per task"
        );
        self.deadline_slots[task] = Some((ticks, seq, job));
        match self.deadline_min {
            Some((t, s, _)) if (t, s) < (ticks, seq) => {}
            _ => self.deadline_min = Some((ticks, seq, task as u32)),
        }
    }

    /// Clears the slot behind `deadline_min` and returns its job;
    /// rescans the slots (one short pass per fired check) to restore
    /// the cached minimum.
    #[inline]
    fn pop_min_deadline(&mut self) -> u64 {
        let (_, _, task) = self.deadline_min.expect("popping an empty deadline stream");
        let (_, _, job) = self.deadline_slots[task as usize]
            .take()
            .expect("cached minimum points at an occupied slot");
        self.deadline_min = self
            .deadline_slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|(t, q, _)| (t, q, i as u32)))
            .min();
        job
    }
}

struct SystemModel<P: Scheduler> {
    config: SystemConfig,
    tasks: Arc<TaskSet>,
    profile: Arc<PiecewiseConstant>,
    policy: P,
    predictor: Box<dyn EnergyPredictor>,
    storage: Storage,
    queue: EdfQueue,
    state: RunState,
    last_sync: SimTime,
    epoch: u64,
    next_job_id: u64,
    records: Vec<JobRecord>,
    energy: EnergyAccounting,
    /// Last level actually executed at, for DVFS switch accounting.
    last_level: Option<usize>,
    /// Number of frequency switches performed.
    switches: u64,
    level_time: Vec<f64>,
    idle_time: f64,
    stall_time: f64,
    samples: Vec<(SimTime, f64)>,
    trace: TraceLog,
    /// Profile cursors, one per monotone query stream. Simulation time
    /// only moves forward, so each stream resumes its breakpoint lookup
    /// where it left off (amortized `O(1)` per query). They are pure
    /// accelerators: results are identical with fresh cursors. Kept
    /// separate because the streams sit at different positions — the
    /// fused advance-plus-accounting walk covers `[last_sync, now)`
    /// while the decision-time lookups probe `now` and crossing windows
    /// ahead of it; sharing one hint would thrash it.
    adv_cursor: Cursor,
    point_cursor: Cursor,
    cross_cursor: Cursor,
    obs: ObsCounters,
    /// Injected-fault state; `None` on the fault-free path, which then
    /// pays exactly one branch per event.
    fault: Option<FaultRuntime>,
    /// Scoped phase timers for `energy.sync` / `policy.decide`; `None`
    /// unless the config enables profiling, so a plain run pays one
    /// branch per phase boundary and zero clock reads.
    profiler: Option<Box<PhaseProfiler>>,
    /// Crash flight recorder lent by the [`RunContext`]; `None` (one
    /// branch per trace event) unless a campaign asked for post-mortems.
    /// When set, every domain trace event is also rendered into the
    /// shared ring so a watchdog abort can dump the recent tail.
    flight: Option<SharedFlightRecorder>,
    /// Precomputed release timeline; `None` runs releases through the
    /// event queue (the reference path).
    tape: Option<TapeCursor>,
}

impl<P: Scheduler> SystemModel<P> {
    /// Advances all continuous state from `last_sync` to `now`:
    /// storage level, energy accounting, predictor observations, job
    /// progress, and residency counters. Detects job completion.
    fn sync_to(&mut self, now: SimTime) {
        if now <= self.last_sync {
            return;
        }
        let t0 = self.profiler.as_ref().map(|_| PhaseProfiler::start());
        let from = self.last_sync;
        let span = (now - from).as_units();
        let load = match self.state {
            RunState::Running { level, .. } => self.config.cpu.power(level),
            RunState::Idle | RunState::Stalled => self.config.cpu.idle_power(),
        };
        // One fused profile walk: the storage advance and the harvest
        // accounting (plus predictor observations) consume the same
        // clipped segments, so re-walking the window with a second
        // cursor — the old shape — paid the clipping twice per event.
        // Per-accumulator op order is unchanged; bit-identity is pinned
        // by the tape-parity and figure-digest suites.
        let report = {
            let energy = &mut self.energy;
            let predictor = &mut self.predictor;
            self.storage.advance_with_each(
                &mut self.adv_cursor,
                &self.profile,
                from,
                now,
                load,
                |seg| {
                    energy.harvested += seg.integral();
                    predictor.observe(seg);
                },
            )
        };
        if report.clamped_empty {
            self.obs.clamp_empty_windows += 1;
        }
        if report.clamped_full {
            self.obs.clamp_full_windows += 1;
        }
        self.energy.consumed += report.delivered;
        self.energy.overflow += report.overflow;
        self.energy.deficit += report.deficit;
        match self.state {
            RunState::Running { job, level } => {
                self.level_time[level] += span;
                let speed = self.config.cpu.speed(level);
                let head = self
                    .queue
                    .peek_mut()
                    .expect("running state implies a queued head job");
                debug_assert_eq!(head.id(), job, "running job must be the EDF head");
                head.execute(speed, now - from);
                self.records[job.0 as usize].energy += report.delivered;
                if head.is_finished() {
                    let done = self.queue.pop().expect("head exists");
                    self.finish_job(now, &done);
                    self.state = RunState::Idle;
                }
            }
            RunState::Idle => self.idle_time += span,
            RunState::Stalled => {
                self.idle_time += span;
                self.stall_time += span;
            }
        }
        if let Some(t0) = t0 {
            if let Some(p) = self.profiler.as_mut() {
                p.stop(PHASE_ENERGY_SYNC, t0);
            }
        }
        self.last_sync = now;
    }

    fn finish_job(&mut self, now: SimTime, job: &Job) {
        let rec = &mut self.records[job.id().0 as usize];
        match rec.outcome {
            JobOutcome::Pending => {
                rec.outcome = JobOutcome::Completed { at: now };
                self.trace_event(now, || TraceEvent::Completed { job: job.id() });
            }
            // RunToCompletion: the miss was recorded at the deadline;
            // note the late completion.
            JobOutcome::Missed { completed: None } => {
                rec.outcome = JobOutcome::Missed {
                    completed: Some(now),
                };
                self.trace_event(now, || TraceEvent::Completed { job: job.id() });
            }
            ref other => unreachable!("finishing a job in state {other:?}"),
        }
    }

    /// Accounts one domain trace event. `event` builds the record — a
    /// small `Copy` value — which counting mode tallies per variant and
    /// immediately discards; only figure runs retain it. With a flight
    /// recorder installed the record is additionally rendered into the
    /// shared ring; without one the extra cost is a single `None` branch.
    fn trace_event(&mut self, now: SimTime, event: impl FnOnce() -> TraceEvent) {
        if let Some(flight) = &self.flight {
            let ev = event();
            flight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .record(now.as_units(), ev.kind_name(), format!("{ev:?}"));
            match &mut self.trace {
                TraceLog::Count(sink) => sink.bump_kind(ev.kind_index()),
                TraceLog::Keep(log) => log.push((now, ev)),
            }
            return;
        }
        match &mut self.trace {
            TraceLog::Count(sink) => sink.bump_kind(event().kind_index()),
            TraceLog::Keep(log) => log.push((now, event())),
        }
    }

    fn release_job(&mut self, now: SimTime, task_index: usize, ctx: &mut EngineCtx<'_, SysEvent>) {
        // Extract the `Copy` parameters up front instead of cloning the
        // task: releases are the hottest event class even with the tape.
        let (relative_deadline, wcet, actual_work, period) = {
            let task: &Task = &self.tasks.tasks()[task_index];
            (
                task.relative_deadline(),
                task.wcet(),
                task.actual_work(),
                task.period(),
            )
        };
        let id = JobId(self.next_job_id);
        self.next_job_id += 1;
        let deadline = now + relative_deadline;
        let job = Job::new(id, task_index, now, deadline, wcet).with_actual_work(actual_work);
        self.records.push(JobRecord {
            id,
            task_index,
            arrival: now,
            deadline,
            wcet,
            outcome: JobOutcome::Pending,
            energy: 0.0,
        });
        self.trace_event(now, || TraceEvent::Released {
            job: id,
            task: task_index,
            deadline,
        });
        self.queue.push(job);
        match &mut self.tape {
            // Side-stream bookkeeping replaces the heap pushes: the
            // deadline check parks in the task's slot and the successor
            // release lives on the tape. Both claim the sequence number
            // the heap path would have consumed — in the same order —
            // so later same-tick events keep their relative order. The
            // heap path schedules both unconditionally (even past the
            // horizon), so the claims are too.
            Some(tc) if tc.elide_deadlines => {
                tc.push_deadline(task_index, deadline.as_ticks(), ctx.alloc_seq(), id.0);
                if period.is_some() {
                    tc.pending_seq[task_index] = ctx.alloc_seq();
                }
            }
            Some(tc) => {
                ctx.schedule(deadline, SysEvent::DeadlineCheck { job: id });
                if period.is_some() {
                    tc.pending_seq[task_index] = ctx.alloc_seq();
                }
            }
            None => {
                ctx.schedule(deadline, SysEvent::DeadlineCheck { job: id });
                if let Some(period) = period {
                    ctx.schedule(now + period, SysEvent::Arrival { task: task_index });
                }
            }
        }
    }

    fn handle_deadline(&mut self, now: SimTime, job: JobId) {
        // sync_to already ran, so a job finishing exactly at its deadline
        // has been removed from the queue and counts as met.
        if !self.queue.contains(job) {
            return;
        }
        let rec = &mut self.records[job.0 as usize];
        if !matches!(rec.outcome, JobOutcome::Pending) {
            return;
        }
        rec.outcome = JobOutcome::Missed { completed: None };
        self.trace_event(now, || TraceEvent::Missed { job });
        if self.config.miss_policy == MissPolicy::AbortAtDeadline {
            let was_running = matches!(self.state, RunState::Running { job: j, .. } if j == job);
            self.queue.remove(job).expect("checked contains");
            if was_running {
                self.state = RunState::Idle;
            }
        }
    }

    /// Re-runs the policy for the current queue head and schedules the
    /// wake-ups implied by the decision.
    fn decide(&mut self, now: SimTime, ctx: &mut EngineCtx<'_, SysEvent>) {
        self.epoch += 1;
        let Some(head) = self.queue.peek() else {
            self.state = RunState::Idle;
            return;
        };
        let head_id = head.id();
        self.obs.decide_calls += 1;
        let (decision, (memo_hits, memo_misses)) = {
            let sched_ctx = SchedContext::new(
                now,
                head,
                &self.config.cpu,
                &self.storage,
                self.predictor.as_ref(),
            );
            let t0 = self.profiler.as_ref().map(|_| PhaseProfiler::start());
            let d = self.policy.decide(&sched_ctx);
            if let Some(t0) = t0 {
                if let Some(p) = self.profiler.as_mut() {
                    p.stop(PHASE_POLICY_DECIDE, t0);
                }
            }
            (d, sched_ctx.memo_stats())
        };
        self.obs.es_memo_hits += memo_hits;
        self.obs.es_memo_misses += memo_misses;
        match decision {
            Decision::IdleUntil(s) => {
                assert!(s > now, "policy idled until the past ({s} <= {now})");
                self.state = RunState::Idle;
                self.obs.idle_decisions += 1;
                self.obs.idle_wait.observe((s - now).as_units());
                self.trace_event(now, || TraceEvent::Idled { until: Some(s) });
                ctx.schedule(s, SysEvent::Reevaluate { epoch: self.epoch });
            }
            Decision::Run { level, review } => {
                assert!(
                    level < self.config.cpu.level_count(),
                    "invalid level {level}"
                );
                let power = self.config.cpu.power(level);
                let harvest_now = self.profile.value_at_with(&mut self.point_cursor, now);
                let net = self.storage.spec().net_rate(harvest_now, power);
                if self.storage.level() < ENERGY_EPS && net < 0.0 {
                    // Depleted and the source cannot carry the load:
                    // stall until a restart quantum has been scavenged
                    // (paper §4.2).
                    self.stall(now, power, ctx);
                    return;
                }
                let speed = self.config.cpu.speed(level);
                let head = self.queue.peek().expect("head unchanged");
                let completion = now + head.time_to_finish(speed);
                // DVFS switch cost: energy drawn instantaneously from the
                // store when the frequency actually changes (the paper
                // assumes this negligible; the model supports it for
                // sensitivity studies — time overhead is rejected at
                // configuration, see `simulate`).
                if self.last_level != Some(level) {
                    if self.last_level.is_some() {
                        self.switches += 1;
                        let cost = self.config.cpu.switch_energy();
                        if cost > 0.0 {
                            let drained = (self.storage.level() - cost).max(0.0);
                            self.energy.consumed += self.storage.level() - drained;
                            self.storage.set_level(drained);
                        }
                    }
                    self.last_level = Some(level);
                }
                self.state = RunState::Running {
                    job: head_id,
                    level,
                };
                self.obs.run_decisions += 1;
                self.obs.level_starts[level] += 1;
                self.trace_event(now, || TraceEvent::Started {
                    job: head_id,
                    level,
                });
                ctx.schedule(completion, SysEvent::Reevaluate { epoch: self.epoch });
                let mut window_end = completion;
                if let Some(r) = review {
                    if r > now && r < completion {
                        ctx.schedule(r, SysEvent::Reevaluate { epoch: self.epoch });
                        window_end = r;
                    }
                }
                // Exact storage-depletion crossing within the run window.
                if self.storage.level() > ENERGY_EPS {
                    if let Some(t) = self.storage.spec().first_crossing_with(
                        &mut self.cross_cursor,
                        self.storage.level(),
                        0.0,
                        &self.profile,
                        now,
                        window_end,
                        power,
                    ) {
                        if t > now {
                            self.obs.depletion_wakeups += 1;
                            ctx.schedule(t, SysEvent::Reevaluate { epoch: self.epoch });
                        }
                    }
                } else {
                    // Running hand-to-mouth on the direct harvest path:
                    // re-check at the next profile change, where the
                    // source may no longer carry the load.
                    if let Some(t) = self
                        .profile
                        .next_breakpoint_after_with(&mut self.point_cursor, now)
                    {
                        if t < window_end {
                            ctx.schedule(t, SysEvent::Reevaluate { epoch: self.epoch });
                        }
                    }
                }
            }
        }
    }

    /// Re-derives the injected state (harvest attenuation, lockout
    /// mask) for instant `now`, traces every change, and reports
    /// whether anything changed (the caller then re-decides).
    fn apply_fault_state(&mut self, now: SimTime) -> bool {
        let (new_factor, active, new_mask, old_factor) = match &self.fault {
            Some(fr) => (
                harvest_factor_at(&fr.plan.harvest, now),
                fr.plan.harvest.iter().any(|w| w.contains(now)),
                fr.plan.lockout_mask_at(now),
                fr.harvest_factor,
            ),
            None => return false,
        };
        let mut changed = false;
        if new_factor != old_factor {
            self.obs.fault_harvest_edges += 1;
            self.trace_event(now, || TraceEvent::HarvestFault {
                factor: new_factor,
                active,
            });
            if let Some(fr) = &mut self.fault {
                fr.harvest_factor = new_factor;
            }
            changed = true;
        }
        let old_mask = self.config.cpu.locked_mask();
        if new_mask != old_mask {
            let diff = new_mask ^ old_mask;
            for level in 0..self.config.cpu.level_count().min(64) {
                if diff & (1 << level) != 0 {
                    self.obs.fault_lockout_changes += 1;
                    let locked = new_mask & (1 << level) != 0;
                    self.trace_event(now, || TraceEvent::LevelLockout { level, locked });
                }
            }
            self.config.cpu.set_locked_mask(new_mask);
            changed = true;
        }
        changed
    }

    fn stall(&mut self, now: SimTime, power: f64, ctx: &mut EngineCtx<'_, SysEvent>) {
        self.obs.stall_entries += 1;
        let spec = *self.storage.spec();
        let target = (self.config.restart_quantum * power).min(spec.capacity());
        let horizon_end = SimTime::ZERO + self.config.horizon;
        let wake = spec.first_crossing_with(
            &mut self.cross_cursor,
            self.storage.level(),
            target,
            &self.profile,
            now,
            horizon_end,
            self.config.cpu.idle_power(),
        );
        self.state = RunState::Stalled;
        match wake {
            Some(t) if t > now => {
                self.trace_event(now, || TraceEvent::Stalled { until: Some(t) });
                ctx.schedule(t, SysEvent::Reevaluate { epoch: self.epoch });
            }
            // Restart level already met (boundary rounding) — retry on
            // the next tick rather than spinning at the same instant.
            Some(_) => {
                let t = now + SimDuration::TICK;
                self.trace_event(now, || TraceEvent::Stalled { until: Some(t) });
                ctx.schedule(t, SysEvent::Reevaluate { epoch: self.epoch });
            }
            // The source never recovers within the horizon: sleep until
            // an arrival changes the picture.
            None => self.trace_event(now, || TraceEvent::Stalled { until: None }),
        }
    }

    /// Post-run bookkeeping: settle state at the horizon and classify
    /// jobs whose deadline falls at or before it.
    fn finalize(&mut self, horizon: SimTime) {
        self.sync_to(horizon);
        self.energy.final_level = self.storage.level();
        for rec in &mut self.records {
            if matches!(rec.outcome, JobOutcome::Pending) && rec.deadline <= horizon {
                rec.outcome = JobOutcome::Missed { completed: None };
            }
        }
    }

    /// Per-variant totals of emitted trace events, indexed by
    /// [`TraceEvent::kind_index`].
    fn trace_kind_counts(&self) -> Vec<u64> {
        match &self.trace {
            TraceLog::Count(sink) => sink.kind_counts()[..TraceEvent::KIND_COUNT].to_vec(),
            TraceLog::Keep(log) => {
                let mut counts = vec![0u64; TraceEvent::KIND_COUNT];
                for (_, ev) in log {
                    counts[ev.kind_index()] += 1;
                }
                counts
            }
        }
    }

    /// Publishes every inline counter into the registry, once, at end of
    /// run. This is the only place instrumentation touches metric names,
    /// so the hot loops stay monomorphic integer adds.
    fn publish_metrics(
        &self,
        reg: &mut MetricsRegistry,
        events: u64,
        queue: QueueStats,
        kind_counts: &[u64],
    ) {
        if !reg.is_enabled() {
            return;
        }
        reg.counter("engine.events", events);
        reg.counter("queue.scheduled", queue.scheduled);
        reg.counter("queue.popped", queue.popped);
        reg.counter("queue.cancelled", queue.cancelled);
        reg.counter("queue.cleared", queue.cleared);
        reg.counter("queue.max_pending", queue.max_pending);
        reg.counter("queue.drains.sorted", queue.sorted_drains);
        reg.counter("queue.drains.scattered", queue.scattered_drains);

        let mut cursor = CursorStats::default();
        for c in [&self.adv_cursor, &self.point_cursor, &self.cross_cursor] {
            cursor.merge(&c.stats());
        }
        reg.counter("cursor.locates", cursor.locates as u64);
        reg.counter("cursor.hint_hits", cursor.hint_hits as u64);
        reg.counter("cursor.gallops", cursor.gallops as u64);
        reg.counter("cursor.gallop_segments", cursor.gallop_segments as u64);
        reg.counter("cursor.backward_jumps", cursor.backward_jumps as u64);
        reg.counter("cursor.fresh_searches", cursor.fresh_searches as u64);
        reg.counter("cursor.cross.reject", cursor.cross_reject as u64);
        reg.counter("cursor.cross.bisect", cursor.cross_bisect as u64);
        reg.counter("cursor.cross.scan", cursor.cross_scan as u64);
        reg.counter("cursor.cross.cyclic", cursor.cross_cyclic as u64);

        reg.counter("sched.decisions", self.obs.decide_calls);
        reg.counter("sched.idle_decisions", self.obs.idle_decisions);
        reg.counter("sched.run_decisions", self.obs.run_decisions);
        reg.counter("sched.stalls", self.obs.stall_entries);
        reg.counter("sched.depletion_wakeups", self.obs.depletion_wakeups);
        reg.counter("sched.es_memo.hits", self.obs.es_memo_hits);
        reg.counter("sched.es_memo.misses", self.obs.es_memo_misses);
        for (level, &starts) in self.obs.level_starts.iter().enumerate() {
            reg.counter(&format!("sched.level_starts.{level}"), starts);
        }
        reg.record_histogram("sched.idle_wait", &self.obs.idle_wait);

        reg.counter("storage.clamp_empty_windows", self.obs.clamp_empty_windows);
        reg.counter("storage.clamp_full_windows", self.obs.clamp_full_windows);
        reg.counter("fault.harvest_edges", self.obs.fault_harvest_edges);
        reg.counter("fault.lockout_changes", self.obs.fault_lockout_changes);
        reg.gauge("energy.final_level", self.energy.final_level);
        reg.gauge("energy.deficit", self.energy.deficit);

        for (name, &count) in TraceEvent::KIND_NAMES.iter().zip(kind_counts.iter()) {
            reg.counter(&format!("trace.{name}"), count);
        }
        for (name, count) in self.policy.metrics() {
            reg.counter(&format!("policy.{}.{name}", self.policy.name()), count);
        }
    }
}

impl<P: Scheduler> Model for SystemModel<P> {
    type Event = SysEvent;

    #[inline]
    fn side_peek(&self) -> Option<(SimTime, u32)> {
        let tc = self.tape.as_ref()?;
        let release = tc
            .tape
            .entries()
            .get(tc.next)
            .map(|e| (e.ticks, tc.pending_seq[e.task as usize]));
        let deadline = tc.deadline_min.map(|(t, s, _)| (t, s));
        let (ticks, seq) = match (release, deadline) {
            (None, None) => return None,
            (Some(k), None) | (None, Some(k)) => k,
            (Some(r), Some(d)) => r.min(d),
        };
        Some((SimTime::from_ticks(ticks), seq))
    }

    #[inline]
    fn side_pop(&mut self) -> SysEvent {
        let tc = self.tape.as_mut().expect("side_pop without a tape");
        let release = tc
            .tape
            .entries()
            .get(tc.next)
            .map(|e| (e.ticks, tc.pending_seq[e.task as usize]));
        let take_deadline = match (release, tc.deadline_min) {
            (Some(r), Some((t, s, _))) => (t, s) < r,
            (None, Some(_)) => true,
            _ => false,
        };
        if take_deadline {
            let job = tc.pop_min_deadline();
            SysEvent::DeadlineCheck { job: JobId(job) }
        } else {
            let e = tc.tape.entries()[tc.next];
            tc.next += 1;
            SysEvent::Arrival {
                task: e.task as usize,
            }
        }
    }

    fn handle(&mut self, now: SimTime, event: SysEvent, ctx: &mut EngineCtx<'_, SysEvent>) {
        let was_running = matches!(self.state, RunState::Running { .. });
        self.sync_to(now);
        // A job finishing during the sync leaves the processor idle; a
        // fresh decision is due even if the event itself is inert.
        let completed_in_sync = was_running && !matches!(self.state, RunState::Running { .. });
        let mut need_decide = completed_in_sync;
        match event {
            SysEvent::Arrival { task } => {
                self.release_job(now, task, ctx);
                need_decide = true;
            }
            SysEvent::DeadlineCheck { job } => {
                let contained = self.queue.contains(job);
                self.handle_deadline(now, job);
                if contained {
                    need_decide = true;
                }
            }
            SysEvent::Reevaluate { epoch } => {
                if epoch == self.epoch {
                    need_decide = true;
                }
            }
            SysEvent::Sample => {
                self.samples.push((now, self.storage.level()));
                if let Some(dt) = self.config.sample_interval {
                    ctx.schedule(now + dt, SysEvent::Sample);
                }
            }
            SysEvent::FaultEdge => {
                if self.apply_fault_state(now) {
                    need_decide = true;
                }
            }
        }
        if need_decide {
            self.decide(now, ctx);
        }
    }
}

/// Runs one closed-loop simulation.
///
/// * `config` — processor, storage, horizon, policies (see
///   [`SystemConfig`]).
/// * `tasks` — the task set; all phases should lie within the horizon.
/// * `profile` — one realized harvest-power profile (e.g. from
///   [`harvest_energy::source::sample_profile`]).
/// * `policy` — the scheduling policy under test.
/// * `predictor` — the `ÊS` estimator the policy consults.
///
/// # Examples
///
/// ```
/// use harvest_core::config::SystemConfig;
/// use harvest_core::policies::EaDvfsScheduler;
/// use harvest_core::system::simulate;
/// use harvest_cpu::presets;
/// use harvest_energy::predictor::OraclePredictor;
/// use harvest_energy::storage::StorageSpec;
/// use harvest_sim::piecewise::PiecewiseConstant;
/// use harvest_sim::time::{SimDuration, SimTime};
/// use harvest_task::task::Task;
/// use harvest_task::taskset::TaskSet;
///
/// // The paper's §2 example: EA-DVFS saves τ2 where LSA misses it.
/// let tasks = TaskSet::new(vec![
///     Task::once(SimTime::ZERO, SimDuration::from_whole_units(16), 4.0),
///     Task::once(SimTime::from_whole_units(5), SimDuration::from_whole_units(16), 1.5),
/// ]);
/// let profile = PiecewiseConstant::constant(0.5);
/// let config = SystemConfig::new(
///     presets::two_speed_example(),
///     StorageSpec::ideal(1_000.0),
///     SimDuration::from_whole_units(30),
/// )
/// .with_initial_level(24.0);
/// let result = simulate(
///     config,
///     &tasks,
///     profile.clone(),
///     Box::new(EaDvfsScheduler::new()),
///     Box::new(OraclePredictor::new(profile)),
/// );
/// assert_eq!(result.missed(), 0);
/// ```
pub fn simulate(
    config: SystemConfig,
    tasks: &TaskSet,
    profile: PiecewiseConstant,
    policy: Box<dyn Scheduler>,
    predictor: Box<dyn EnergyPredictor>,
) -> SimResult {
    simulate_shared(
        config,
        Arc::new(tasks.clone()),
        Arc::new(profile),
        policy,
        predictor,
    )
}

/// [`simulate`] without the per-run deep copies: the task set and the
/// realized profile are taken behind [`Arc`], so sweep drivers can build
/// each prefab (profile + prefix sums + task set) once per seed and
/// share it across every capacity and policy trial.
pub fn simulate_shared(
    config: SystemConfig,
    tasks: Arc<TaskSet>,
    profile: Arc<PiecewiseConstant>,
    policy: Box<dyn Scheduler>,
    predictor: Box<dyn EnergyPredictor>,
) -> SimResult {
    try_simulate_shared(config, tasks, profile, policy, predictor)
        .unwrap_or_else(|e| panic!("simulation aborted: {e} (use try_simulate_shared)"))
}

/// [`simulate_shared`] with typed aborts: a run whose
/// [`Watchdog`](harvest_sim::engine::Watchdog) fires returns the
/// corresponding [`SimError`] instead of panicking. Without a watchdog
/// this never returns `Err`.
pub fn try_simulate_shared(
    config: SystemConfig,
    tasks: Arc<TaskSet>,
    profile: Arc<PiecewiseConstant>,
    policy: Box<dyn Scheduler>,
    predictor: Box<dyn EnergyPredictor>,
) -> Result<SimResult, SimError> {
    let mut reg = MetricsRegistry::new();
    let (result, _events, _ready) = run_closed_loop(
        config,
        tasks,
        profile,
        policy,
        predictor,
        EventQueue::new(),
        EdfQueue::new(),
        &mut reg,
        None,
        None,
    );
    result
}

/// Retention statistics of one [`RunContext`], for sweep drivers that
/// report pool reuse (e.g. per-worker rows in `exp inspect`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Trials executed through this context.
    pub runs: u64,
    /// High-water event-slab capacity retained across runs (the
    /// [`QueueStats::slab_capacity`] of the pooled event queue).
    pub event_slab_high_water: u64,
    /// High-water EDF-heap capacity retained across runs.
    pub ready_high_water: u64,
    /// Trials executed through the lean lanes of
    /// [`simulate_batch_in`](crate::batch::simulate_batch_in) (also
    /// counted in [`runs`](Self::runs)).
    pub batched_runs: u64,
    /// High-water lean-lane occupancy of a single sibling-seed batch.
    pub batch_lane_high_water: u64,
    /// Trials executed through policy-lockstep lean batches (also
    /// counted in [`batched_runs`](Self::batched_runs)).
    #[serde(default)]
    pub policy_batched_runs: u64,
    /// High-water lean-lane occupancy of a single policy-lockstep
    /// batch, kept apart from the sibling-seed mark: the two batch
    /// shapes have different synchrony, so one folded maximum would
    /// hide which shape a sweep ran.
    #[serde(default)]
    pub batch_policy_lane_high_water: u64,
    /// Distinct instants processed by the lean batched loop.
    #[serde(default)]
    pub batch_ticks: u64,
    /// Lean instants on which more than one lane had an event — the
    /// ticks where the batch's cross-lane stages amortized work. The
    /// ratio to [`batch_ticks`](Self::batch_ticks) is the observable
    /// synchrony of a sweep's batch shape.
    #[serde(default)]
    pub multi_lane_ticks: u64,
}

impl PoolStats {
    /// `multi_lane_ticks / batch_ticks` (0 when no batches ran): the
    /// fraction of batched instants where more than one lane had work.
    pub fn multi_lane_fraction(&self) -> f64 {
        if self.batch_ticks > 0 {
            self.multi_lane_ticks as f64 / self.batch_ticks as f64
        } else {
            0.0
        }
    }
}

/// A reusable simulation context: the allocations that dominate per-run
/// setup — the radix event queue's bucket array and slab, the EDF ready
/// heap, and the metrics registry — survive from one trial to the next.
///
/// One context per worker thread; runs through [`simulate_in`] are
/// bit-identical to [`simulate_shared`] on fresh state (pinned by the
/// pooled-parity tests), so pooling is purely an allocation optimization.
#[derive(Debug, Default)]
pub struct RunContext {
    /// `None` only while a run through [`simulate_in`] is on the stack.
    events: Option<EventQueue<SysEvent>>,
    ready: Option<EdfQueue>,
    metrics: MetricsRegistry,
    stats: PoolStats,
    /// Crash flight recorder shared with every simulation this context
    /// runs; `None` (the default) costs one branch per trace event.
    flight: Option<SharedFlightRecorder>,
}

impl RunContext {
    /// Creates an empty context; the first run populates its pools.
    pub fn new() -> Self {
        RunContext::default()
    }

    /// Installs a crash flight recorder: a ring of the last `capacity`
    /// trace events, shared (behind `Arc<Mutex<..>>`, so it survives a
    /// worker panic) with every subsequent run through this context.
    /// A watchdog abort freezes the ring into a pending
    /// [`FlightDump`]; the driver drains dumps with
    /// [`Self::take_flight_dumps`].
    pub fn enable_flight(&mut self, capacity: usize) {
        self.flight = Some(FlightRecorder::shared(capacity));
    }

    /// The installed flight recorder, if any — for driver-side markers
    /// ([`FlightRecorder::mark`]) and panic-path captures.
    pub fn flight(&self) -> Option<&SharedFlightRecorder> {
        self.flight.as_ref()
    }

    /// Drains the flight dumps captured since the last call (watchdog
    /// aborts, plus any the driver captured itself). Empty when flight
    /// recording is off.
    pub fn take_flight_dumps(&mut self) -> Vec<FlightDump> {
        match &self.flight {
            Some(flight) => flight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take_dumps(),
            None => Vec::new(),
        }
    }

    /// Retention statistics accumulated over this context's lifetime.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut PoolStats {
        &mut self.stats
    }

    /// Cumulative event-queue statistics of the pooled queue, or `None`
    /// while a run is on the stack or after a run panicked out of
    /// [`simulate_in`] (the next run self-heals with a fresh queue).
    pub fn queue_stats(&self) -> Option<QueueStats> {
        self.events.as_ref().map(|q| q.stats())
    }

    /// Bounds the pooled queues' retained storage (see
    /// [`EventQueue::shrink_to`] / [`EdfQueue::shrink_to`]). High-water
    /// marks in [`Self::stats`] are unaffected: they record the peak.
    pub fn shrink_to(&mut self, limit: usize) {
        if let Some(q) = &mut self.events {
            q.shrink_to(limit);
        }
        if let Some(q) = &mut self.ready {
            q.shrink_to(limit);
        }
    }
}

/// [`simulate_shared`] executing inside a pooled [`RunContext`]: the
/// event queue, ready queue, and metrics registry are borrowed from the
/// context and returned to it reset, and the policy is reset and lent
/// rather than consumed, so a sweep worker can run its whole shard of
/// trials with zero steady-state queue allocations.
pub fn simulate_in(
    ctx: &mut RunContext,
    config: SystemConfig,
    tasks: Arc<TaskSet>,
    profile: Arc<PiecewiseConstant>,
    policy: &mut dyn Scheduler,
    predictor: Box<dyn EnergyPredictor>,
) -> SimResult {
    try_simulate_in(ctx, config, tasks, profile, policy, predictor)
        .unwrap_or_else(|e| panic!("simulation aborted: {e} (use try_simulate_in)"))
}

/// [`simulate_in`] with typed aborts: a watchdog-fired run returns its
/// [`SimError`] — with the pooled queues already reclaimed and reset,
/// so the context stays healthy for the worker's next trial.
pub fn try_simulate_in(
    ctx: &mut RunContext,
    config: SystemConfig,
    tasks: Arc<TaskSet>,
    profile: Arc<PiecewiseConstant>,
    policy: &mut dyn Scheduler,
    predictor: Box<dyn EnergyPredictor>,
) -> Result<SimResult, SimError> {
    try_simulate_in_taped(ctx, config, tasks, profile, policy, predictor, None)
}

/// [`try_simulate_in`] with an optional precomputed [`ReleaseTape`]:
/// when `tape` is `Some`, task releases are served by a monotone cursor
/// over the shared timeline instead of per-release event-queue traffic.
/// The taped run is bit-identical to the heap-driven run (pinned by the
/// tape-parity suites); the tape must have been built by
/// [`TaskSet::release_tape`] for this exact task set and horizon.
///
/// Runs with `collect_metrics` set ignore the tape and take the
/// reference path (queue statistics would otherwise skew).
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_in_taped(
    ctx: &mut RunContext,
    config: SystemConfig,
    tasks: Arc<TaskSet>,
    profile: Arc<PiecewiseConstant>,
    policy: &mut dyn Scheduler,
    predictor: Box<dyn EnergyPredictor>,
    tape: Option<Arc<ReleaseTape>>,
) -> Result<SimResult, SimError> {
    policy.reset();
    let events = ctx.events.take().unwrap_or_default();
    let ready = ctx.ready.take().unwrap_or_default();
    let flight = ctx.flight.clone();
    let (result, mut events, mut ready) = run_closed_loop(
        config,
        tasks,
        profile,
        policy,
        predictor,
        events,
        ready,
        &mut ctx.metrics,
        flight,
        tape,
    );
    events.reset();
    ready.clear();
    ctx.stats.runs += 1;
    ctx.stats.event_slab_high_water = ctx
        .stats
        .event_slab_high_water
        .max(events.capacity() as u64);
    ctx.stats.ready_high_water = ctx.stats.ready_high_water.max(ready.capacity() as u64);
    ctx.events = Some(events);
    ctx.ready = Some(ready);
    result
}

/// The shared closed-loop core: generic over the policy handle (owned
/// box for the fresh path, `&mut dyn` for the pooled path) and explicit
/// about the queue storage it runs on, which it hands back so a pool
/// can reclaim the allocations.
#[allow(clippy::too_many_arguments)]
fn run_closed_loop<P: Scheduler>(
    mut config: SystemConfig,
    tasks: Arc<TaskSet>,
    profile: Arc<PiecewiseConstant>,
    policy: P,
    predictor: Box<dyn EnergyPredictor>,
    equeue: EventQueue<SysEvent>,
    ready: EdfQueue,
    reg: &mut MetricsRegistry,
    flight: Option<SharedFlightRecorder>,
    tape: Option<Arc<ReleaseTape>>,
) -> (Result<SimResult, SimError>, EventQueue<SysEvent>, EdfQueue) {
    debug_assert!(ready.is_empty(), "pooled ready queue must be cleared");
    assert!(
        config.cpu.switch_overhead().is_zero(),
        "the closed-loop simulator models DVFS switch *energy* only; \
         time overhead must be zero (the paper's §5.1 assumption)"
    );
    // Metric runs derive `QueueStats::popped` from the scheduled count,
    // which virtual sequence allocation would skew; those runs (figure
    // traces, `exp inspect`) are rare and cold, so fall back to the
    // heap-driven reference path rather than special-case the stats.
    let tape = tape.filter(|_| !config.collect_metrics);
    if let Some(t) = &tape {
        assert_eq!(
            t.horizon_ticks(),
            (SimTime::ZERO + config.horizon).as_ticks(),
            "release tape was built for a different horizon"
        );
        assert_eq!(
            t.task_count(),
            tasks.len(),
            "release tape was built for a different task set"
        );
    }
    // Fault injection. Each arm is a no-op on the fault-free path, so a
    // run with `fault_plan: None` is bit-identical to the pre-fault
    // simulator (pinned by the Fig. 5–9 suites).
    let fault_plan = config.fault_plan.take().filter(|p| !p.is_empty());
    let (profile, predictor) = if let Some(plan) = &fault_plan {
        if let Some(sf) = plan.storage.filter(|s| !s.is_empty()) {
            config.storage = sf.apply(config.storage);
        }
        let profile = if plan.harvest.is_empty() {
            profile
        } else {
            Arc::new(apply_harvest_faults(&profile, &plan.harvest))
        };
        let predictor: Box<dyn EnergyPredictor> = match plan.predictor.filter(|pf| !pf.is_empty()) {
            Some(pf) => Box::new(FaultyPredictor::new(predictor, pf)),
            None => predictor,
        };
        (profile, predictor)
    } else {
        (profile, predictor)
    };
    let initial = config.initial_level.unwrap_or_else(|| {
        if config.storage.is_infinite() {
            0.0
        } else {
            config.storage.capacity()
        }
    });
    // Capacity fade can undercut a configured initial level; clamp so
    // the faulted battery starts full rather than over-full.
    let initial = if fault_plan.is_some() {
        initial.min(config.storage.capacity())
    } else {
        initial
    };
    let storage = Storage::new(config.storage, initial);
    let level_count = config.cpu.level_count();
    let scheduler_name = policy.name().to_owned();
    let horizon = config.horizon;
    let trace = if config.collect_trace {
        TraceLog::Keep(Vec::new())
    } else {
        TraceLog::Count(CountingSink::new())
    };
    let model = SystemModel {
        energy: EnergyAccounting {
            initial_level: initial,
            ..EnergyAccounting::default()
        },
        config,
        tasks: Arc::clone(&tasks),
        profile,
        policy,
        predictor,
        storage,
        queue: ready,
        state: RunState::Idle,
        last_sync: SimTime::ZERO,
        epoch: 0,
        next_job_id: 0,
        // One record per release: the tape length is the exact job count.
        records: match &tape {
            Some(t) => Vec::with_capacity(t.len()),
            None => Vec::new(),
        },
        last_level: None,
        switches: 0,
        level_time: vec![0.0; level_count],
        idle_time: 0.0,
        stall_time: 0.0,
        samples: Vec::new(),
        trace,
        adv_cursor: Cursor::default(),
        point_cursor: Cursor::default(),
        cross_cursor: Cursor::default(),
        obs: ObsCounters::new(level_count),
        fault: fault_plan.map(|plan| FaultRuntime {
            plan,
            harvest_factor: 1.0,
        }),
        profiler: None,
        flight,
        tape: tape.map(|tape| {
            let task_count = tape.task_count();
            TapeCursor {
                tape,
                next: 0,
                pending_seq: vec![0; task_count],
                elide_deadlines: tasks
                    .tasks()
                    .iter()
                    .all(|t| t.period().is_none_or(|p| t.relative_deadline() <= p)),
                deadline_slots: vec![None; task_count],
                deadline_min: None,
            }
        }),
    };
    let mut engine = Engine::with_queue(model, equeue);
    if engine.model().config.profile {
        engine.enable_profiling();
        engine.model_mut().profiler = Some(Box::default());
    }
    let watchdog = engine.model().config.watchdog;
    engine.set_watchdog(watchdog);
    let horizon_end = SimTime::ZERO + horizon;
    // Seed the injected state at t = 0 and the edges where it changes.
    if engine.model().fault.is_some() {
        let edges = engine
            .model()
            .fault
            .as_ref()
            .map(|fr| fr.plan.edge_times(SimTime::ZERO, horizon_end))
            .unwrap_or_default();
        for t in edges {
            engine.schedule(t, SysEvent::FaultEdge);
        }
        engine.model_mut().apply_fault_state(SimTime::ZERO);
    }
    // Seed first arrivals and the sampling grid. On the taped path the
    // first releases are tape entries; claim their sequence numbers in
    // the same task-index order the heap path schedules them, so the
    // same-tick tie-break is preserved.
    let taped = engine.model().tape.is_some();
    for (i, task) in tasks.iter().enumerate() {
        let phase = task.phase();
        if phase >= SimTime::ZERO && phase < SimTime::ZERO + horizon {
            if taped {
                let seq = engine.alloc_seq();
                let model = engine.model_mut();
                model
                    .tape
                    .as_mut()
                    .expect("taped checked above")
                    .pending_seq[i] = seq;
            } else {
                engine.schedule(phase, SysEvent::Arrival { task: i });
            }
        }
    }
    if engine.model().config.sample_interval.is_some() {
        engine.schedule(SimTime::ZERO, SysEvent::Sample);
    }
    let outcome = engine.run_until(horizon_end);
    let events = engine.events_handled();
    let queue_stats = engine.queue_stats();
    let engine_profiler = engine.profiler().cloned();
    let (mut model, equeue) = engine.into_parts();
    if let RunOutcome::WatchdogFired { at, events, kind } = outcome {
        let (err, reason) = match kind {
            WatchdogKind::EventBudget => (
                SimError::WatchdogEventBudget { at, events },
                "watchdog-event-budget",
            ),
            WatchdogKind::NoProgress => (
                SimError::WatchdogNoProgress { at, events },
                "watchdog-no-progress",
            ),
        };
        // Freeze the post-mortem before the aborted model state is
        // discarded; the driver drains it via `take_flight_dumps`.
        if let Some(flight) = &model.flight {
            flight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .capture(reason, events);
        }
        return (Err(err), equeue, model.queue);
    }
    model.finalize(horizon_end);
    let trace_kind_counts = model.trace_kind_counts();
    let metrics = model.config.collect_metrics.then(|| {
        reg.reset();
        model.publish_metrics(reg, events, queue_stats, &trace_kind_counts);
        reg.snapshot()
    });
    let profile = model.config.profile.then(|| {
        let mut p = model.profiler.take().map(|b| *b).unwrap_or_default();
        if let Some(ep) = &engine_profiler {
            p.merge(ep);
        }
        p.summary()
    });
    let (trace, trace_events) = match model.trace {
        TraceLog::Count(sink) => (Vec::new(), sink.count()),
        TraceLog::Keep(log) => {
            let n = log.len() as u64;
            (log, n)
        }
    };
    let result = SimResult {
        scheduler: scheduler_name,
        horizon,
        jobs: model.records,
        energy: model.energy,
        switches: model.switches,
        events,
        trace_events,
        trace_kind_counts,
        level_time: model.level_time,
        idle_time: model.idle_time,
        stall_time: model.stall_time,
        samples: model.samples,
        trace,
        metrics,
        profile,
    };
    (Ok(result), equeue, model.queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LevelLockoutWindow;
    use crate::policies::{EaDvfsScheduler, EdfScheduler, GreedyStretchScheduler, LazyScheduler};
    use harvest_cpu::presets;
    use harvest_energy::predictor::OraclePredictor;
    use harvest_energy::storage::StorageSpec;

    fn u(x: i64) -> SimTime {
        SimTime::from_whole_units(x)
    }

    fn d(x: i64) -> SimDuration {
        SimDuration::from_whole_units(x)
    }

    /// The paper's §2 motivational tasks.
    fn section2_tasks() -> TaskSet {
        TaskSet::new(vec![
            Task::once(u(0), d(16), 4.0),
            Task::once(u(5), d(16), 1.5),
        ])
    }

    fn run(policy: Box<dyn Scheduler>, tasks: &TaskSet, config: SystemConfig) -> SimResult {
        let profile = PiecewiseConstant::constant(0.5);
        simulate(
            config,
            tasks,
            profile.clone(),
            policy,
            Box::new(OraclePredictor::new(profile)),
        )
    }

    fn section2_config() -> SystemConfig {
        SystemConfig::new(
            presets::two_speed_example(),
            StorageSpec::ideal(1_000.0),
            d(30),
        )
        .with_initial_level(24.0)
        .with_trace()
    }

    #[test]
    fn section2_lsa_misses_tau2() {
        let r = run(
            Box::new(LazyScheduler::new()),
            &section2_tasks(),
            section2_config(),
        );
        assert_eq!(r.released(), 2);
        // τ1 completes exactly at its deadline 16; τ2 starves.
        assert!(
            r.jobs[0].met_deadline(),
            "τ1 outcome: {:?}",
            r.jobs[0].outcome
        );
        assert!(
            r.jobs[1].missed_deadline(),
            "τ2 outcome: {:?}",
            r.jobs[1].outcome
        );
        assert!((r.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn section2_ea_dvfs_meets_both() {
        let r = run(
            Box::new(EaDvfsScheduler::new()),
            &section2_tasks(),
            section2_config(),
        );
        assert_eq!(r.missed(), 0, "jobs: {:?}", r.jobs);
        assert_eq!(r.completed_in_time(), 2);
    }

    #[test]
    fn section2_ea_dvfs_finishes_tau1_by_12() {
        let r = run(
            Box::new(EaDvfsScheduler::new()),
            &section2_tasks(),
            section2_config(),
        );
        match r.jobs[0].outcome {
            JobOutcome::Completed { at } => {
                // Idle [0,4), slow [4,12): completes exactly at 12.
                assert_eq!(at, u(12), "trace: {:?}", r.trace);
            }
            ref other => panic!("τ1 should complete, got {other:?}"),
        }
    }

    /// Fig. 3 (§4.3): τ2 = (5, 12, 1.5). Greedy stretching misses it;
    /// EA-DVFS's s2 cap saves it.
    fn fig3_tasks() -> TaskSet {
        TaskSet::new(vec![
            Task::once(u(0), d(16), 4.0),
            Task::once(u(5), d(12), 1.5),
        ])
    }

    fn fig3_config() -> SystemConfig {
        // Predicted available energy 32 over [0,16) with zero harvest:
        // stored 32 up front.
        SystemConfig::new(
            presets::quarter_speed_example(),
            StorageSpec::ideal(1_000.0),
            d(30),
        )
        .with_initial_level(32.0)
    }

    fn run_fig3(policy: Box<dyn Scheduler>) -> SimResult {
        let profile = PiecewiseConstant::constant(0.0);
        simulate(
            fig3_config(),
            &fig3_tasks(),
            profile.clone(),
            policy,
            Box::new(OraclePredictor::new(profile)),
        )
    }

    #[test]
    fn fig3_greedy_stretch_misses_tau2() {
        let r = run_fig3(Box::new(GreedyStretchScheduler::new()));
        assert!(
            r.jobs[1].missed_deadline(),
            "τ2 outcome: {:?}",
            r.jobs[1].outcome
        );
    }

    #[test]
    fn fig3_ea_dvfs_meets_both() {
        let r = run_fig3(Box::new(EaDvfsScheduler::new()));
        assert_eq!(r.missed(), 0, "jobs: {:?}", r.jobs);
    }

    #[test]
    fn edf_with_ample_energy_is_miss_free() {
        let tasks = TaskSet::new(vec![
            Task::periodic_implicit(d(10), 2.0),
            Task::periodic_implicit(d(20), 4.0),
        ]);
        let config = SystemConfig::new(presets::xscale(), StorageSpec::infinite(), d(200));
        let profile = PiecewiseConstant::constant(10.0);
        let r = simulate(
            config,
            &tasks,
            profile.clone(),
            Box::new(EdfScheduler::new()),
            Box::new(OraclePredictor::new(profile)),
        );
        assert!(r.released() >= 20 + 10);
        assert_eq!(r.missed(), 0);
    }

    #[test]
    fn ea_dvfs_with_infinite_storage_matches_edf_outcomes() {
        let tasks = TaskSet::new(vec![
            Task::periodic_implicit(d(10), 3.0),
            Task::periodic_implicit(d(30), 6.0),
        ]);
        let profile = PiecewiseConstant::constant(1.0);
        let mk = |policy: Box<dyn Scheduler>| {
            simulate(
                SystemConfig::new(presets::xscale(), StorageSpec::infinite(), d(300)),
                &tasks,
                profile.clone(),
                policy,
                Box::new(OraclePredictor::new(profile.clone())),
            )
        };
        let edf = mk(Box::new(EdfScheduler::new()));
        let ea = mk(Box::new(EaDvfsScheduler::new()));
        assert_eq!(edf.released(), ea.released());
        assert_eq!(edf.missed(), ea.missed());
        // §4.3: identical behaviour — same completion instants.
        let done = |r: &SimResult| -> Vec<Option<SimTime>> {
            r.jobs
                .iter()
                .map(|j| match j.outcome {
                    JobOutcome::Completed { at } => Some(at),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(done(&edf), done(&ea));
    }

    #[test]
    fn depleted_system_stalls_and_recovers() {
        // No stored energy, no harvest until t=10, then plenty.
        let profile = PiecewiseConstant::new(
            vec![u(0), u(10), u(100)],
            vec![0.0, 10.0],
            harvest_sim::piecewise::Extension::Hold,
        )
        .unwrap();
        let tasks = TaskSet::new(vec![Task::once(u(0), d(50), 2.0)]);
        let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(100.0), d(100))
            .with_initial_level(0.0)
            .with_trace();
        let r = simulate(
            config,
            &tasks,
            profile.clone(),
            Box::new(EdfScheduler::new()),
            Box::new(OraclePredictor::new(profile)),
        );
        assert_eq!(r.missed(), 0, "jobs: {:?}, trace: {:?}", r.jobs, r.trace);
        assert!(r.stall_time > 9.0, "stall time {}", r.stall_time);
        match r.jobs[0].outcome {
            JobOutcome::Completed { at } => assert!(at > u(10) && at < u(13)),
            ref other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn hopeless_starvation_records_miss() {
        let profile = PiecewiseConstant::constant(0.0);
        let tasks = TaskSet::new(vec![Task::once(u(0), d(10), 2.0)]);
        let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(100.0), d(50))
            .with_initial_level(0.0);
        let r = simulate(
            config,
            &tasks,
            profile.clone(),
            Box::new(EdfScheduler::new()),
            Box::new(OraclePredictor::new(profile)),
        );
        assert_eq!(r.missed(), 1);
        assert_eq!(r.energy.consumed, 0.0);
    }

    #[test]
    fn preemption_by_earlier_deadline() {
        // Long job released at 0 (deadline 100), short urgent job at 5
        // (deadline 12). EDF must preempt and finish the short one first.
        let tasks = TaskSet::new(vec![
            Task::once(u(0), d(100), 20.0),
            Task::once(u(5), d(7), 1.0),
        ]);
        let profile = PiecewiseConstant::constant(10.0);
        let config =
            SystemConfig::new(presets::xscale(), StorageSpec::ideal(10_000.0), d(120)).with_trace();
        let r = simulate(
            config,
            &tasks,
            profile.clone(),
            Box::new(EdfScheduler::new()),
            Box::new(OraclePredictor::new(profile)),
        );
        assert_eq!(r.missed(), 0, "jobs: {:?}", r.jobs);
        let t1_done = match r.jobs[1].outcome {
            JobOutcome::Completed { at } => at,
            ref o => panic!("urgent job should complete: {o:?}"),
        };
        assert_eq!(t1_done, u(6));
        match r.jobs[0].outcome {
            JobOutcome::Completed { at } => assert_eq!(at, u(21)),
            ref o => panic!("long job should complete: {o:?}"),
        }
    }

    #[test]
    fn miss_policy_run_to_completion_records_late_finish() {
        let tasks = TaskSet::new(vec![Task::once(u(0), d(2), 4.0)]);
        let profile = PiecewiseConstant::constant(10.0);
        let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(1_000.0), d(50))
            .with_miss_policy(MissPolicy::RunToCompletion);
        let r = simulate(
            config,
            &tasks,
            profile.clone(),
            Box::new(EdfScheduler::new()),
            Box::new(OraclePredictor::new(profile)),
        );
        assert_eq!(r.missed(), 1);
        match r.jobs[0].outcome {
            JobOutcome::Missed {
                completed: Some(at),
            } => assert_eq!(at, u(4)),
            ref o => panic!("expected late completion, got {o:?}"),
        }
    }

    #[test]
    fn abort_policy_drops_job_at_deadline() {
        let tasks = TaskSet::new(vec![Task::once(u(0), d(2), 4.0)]);
        let profile = PiecewiseConstant::constant(10.0);
        let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(1_000.0), d(50));
        let r = simulate(
            config,
            &tasks,
            profile.clone(),
            Box::new(EdfScheduler::new()),
            Box::new(OraclePredictor::new(profile)),
        );
        assert_eq!(r.missed(), 1);
        assert!(matches!(
            r.jobs[0].outcome,
            JobOutcome::Missed { completed: None }
        ));
        // Only ~2 units of work were executed before the abort.
        assert!(r.busy_time() < 2.0 + 1e-6);
    }

    #[test]
    fn sampling_records_grid() {
        let tasks = TaskSet::new(vec![Task::periodic_implicit(d(10), 1.0)]);
        let profile = PiecewiseConstant::constant(2.0);
        let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(100.0), d(100))
            .with_sample_interval(d(10));
        let r = simulate(
            config,
            &tasks,
            profile.clone(),
            Box::new(EdfScheduler::new()),
            Box::new(OraclePredictor::new(profile)),
        );
        assert_eq!(r.samples.len(), 10);
        assert_eq!(r.samples[0].0, u(0));
        assert_eq!(r.samples[9].0, u(90));
        for &(_, level) in &r.samples {
            assert!((0.0..=100.0).contains(&level));
        }
    }

    #[test]
    fn energy_conservation_holds() {
        let tasks = TaskSet::new(vec![Task::periodic_implicit(d(10), 2.0)]);
        let profile = PiecewiseConstant::constant(1.0);
        let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(50.0), d(500));
        let r = simulate(
            config,
            &tasks,
            profile.clone(),
            Box::new(EaDvfsScheduler::new()),
            Box::new(OraclePredictor::new(profile)),
        );
        // initial + harvested = consumed + overflow + final (ideal store;
        // `consumed` is energy actually delivered, so deficit does not
        // appear in the identity).
        let lhs = r.energy.initial_level + r.energy.harvested;
        let rhs = r.energy.consumed + r.energy.overflow + r.energy.final_level;
        assert!(
            (lhs - rhs).abs() < 1e-6,
            "conservation violated: in={lhs} out={rhs} ({:?})",
            r.energy
        );
    }

    #[test]
    fn switch_energy_is_charged_per_frequency_change() {
        // EA-DVFS on the §2 example changes frequency when τ2 starts at
        // the slow level after τ1 — count switches and verify the energy
        // drain appears in the accounting.
        let cheap = run(
            Box::new(EaDvfsScheduler::new()),
            &section2_tasks(),
            section2_config(),
        );
        let mut config = section2_config();
        config.cpu = config.cpu.with_switch_overhead(SimDuration::ZERO, 2.0);
        let costly = run(Box::new(EaDvfsScheduler::new()), &section2_tasks(), config);
        assert_eq!(cheap.switches, costly.switches);
        let expected_extra = 2.0 * costly.switches as f64;
        assert!(
            (costly.energy.consumed - cheap.energy.consumed - expected_extra).abs() < 1e-6,
            "switch energy not charged: cheap {} vs costly {} ({} switches)",
            cheap.energy.consumed,
            costly.energy.consumed,
            costly.switches
        );
        // Conservation still closes with switch drains.
        let lhs = costly.energy.initial_level + costly.energy.harvested;
        let rhs = costly.energy.consumed + costly.energy.overflow + costly.energy.final_level;
        assert!((lhs - rhs).abs() < 1e-6, "{:?}", costly.energy);
    }

    #[test]
    #[should_panic(expected = "time overhead")]
    fn switch_time_overhead_is_rejected() {
        let mut config = section2_config();
        config.cpu = config
            .cpu
            .with_switch_overhead(SimDuration::from_units(0.01), 0.0);
        let _ = run(Box::new(EdfScheduler::new()), &section2_tasks(), config);
    }

    #[test]
    fn metrics_snapshot_collects_counters() {
        let config = section2_config().with_metrics().with_profiling();
        let r = run(Box::new(EaDvfsScheduler::new()), &section2_tasks(), config);
        let m = r.metrics.as_ref().expect("metrics collected");
        assert_eq!(m.counter("engine.events"), r.events);
        assert!(m.counter("sched.decisions") > 0);
        assert!(m.counter("cursor.locates") > 0);
        assert!(m.counter("policy.ea-dvfs.stretches") > 0);
        // Every Started trace event is one run decision.
        assert_eq!(m.counter("sched.run_decisions"), r.trace_kind_counts[1]);
        let p = r.profile.as_ref().expect("profile collected");
        assert_eq!(
            p.get(harvest_sim::engine::PHASE_DISPATCH)
                .expect("dispatch timed")
                .calls,
            r.events
        );
        assert!(p.get(PHASE_POLICY_DECIDE).expect("decide timed").calls > 0);
        assert!(p.get(PHASE_ENERGY_SYNC).expect("sync timed").calls > 0);
    }

    #[test]
    fn observability_off_leaves_result_lean_and_identical() {
        let base = run(
            Box::new(EaDvfsScheduler::new()),
            &section2_tasks(),
            section2_config(),
        );
        assert!(base.metrics.is_none());
        assert!(base.profile.is_none());
        assert_eq!(
            base.trace_kind_counts.iter().sum::<u64>(),
            base.trace_events
        );
        let observed = run(
            Box::new(EaDvfsScheduler::new()),
            &section2_tasks(),
            section2_config().with_metrics().with_profiling(),
        );
        // Observability must not perturb the simulation.
        assert_eq!(base.jobs, observed.jobs);
        assert_eq!(base.energy, observed.energy);
        assert_eq!(base.events, observed.events);
        assert_eq!(base.trace, observed.trace);
    }

    #[test]
    fn kind_counts_match_in_counting_mode() {
        // Same run with and without trace retention: per-variant totals
        // must agree (counting mode tallies without retaining).
        let mut config = section2_config();
        config.collect_trace = false;
        let counted = run(Box::new(EaDvfsScheduler::new()), &section2_tasks(), config);
        let kept = run(
            Box::new(EaDvfsScheduler::new()),
            &section2_tasks(),
            section2_config(),
        );
        assert!(counted.trace.is_empty());
        assert_eq!(counted.trace_kind_counts, kept.trace_kind_counts);
        assert_eq!(counted.trace_events, kept.trace_events);
    }

    #[test]
    fn pooled_runs_are_bit_identical_to_fresh() {
        // One context, three different trials back to back (full
        // observability on, so metrics/trace/profile parity is covered
        // too — modulo the wall-clock timings inside `profile`, which
        // are not deterministic and therefore compared structurally).
        let mut ctx = RunContext::new();
        let config = section2_config().with_metrics();
        let profile = PiecewiseConstant::constant(0.5);
        let tasks = Arc::new(section2_tasks());
        let factories: Vec<fn() -> Box<dyn Scheduler>> = vec![
            || Box::new(EaDvfsScheduler::new()),
            || Box::new(LazyScheduler::new()),
            || Box::new(GreedyStretchScheduler::new()),
        ];
        for mk in &factories {
            let fresh = run(mk(), &section2_tasks(), config.clone());
            let mut policy = mk();
            // Dirty the pooled policy's counters with an extra run;
            // `simulate_in` must reset them before the compared trial.
            let _ = simulate_in(
                &mut ctx,
                config.clone(),
                Arc::clone(&tasks),
                Arc::new(profile.clone()),
                policy.as_mut(),
                Box::new(OraclePredictor::new(profile.clone())),
            );
            let pooled = simulate_in(
                &mut ctx,
                config.clone(),
                Arc::clone(&tasks),
                Arc::new(profile.clone()),
                policy.as_mut(),
                Box::new(OraclePredictor::new(profile.clone())),
            );
            assert_eq!(fresh, pooled, "policy {}", pooled.scheduler);
        }
        let stats = ctx.stats();
        assert_eq!(stats.runs, 6);
        assert!(stats.event_slab_high_water > 0);
        assert!(stats.ready_high_water > 0);
    }

    #[test]
    fn run_context_shrink_bounds_retention() {
        let mut ctx = RunContext::new();
        let profile = PiecewiseConstant::constant(0.5);
        let _ = simulate_in(
            &mut ctx,
            section2_config(),
            Arc::new(section2_tasks()),
            Arc::new(profile.clone()),
            &mut EdfScheduler::new(),
            Box::new(OraclePredictor::new(profile)),
        );
        assert!(ctx.stats().event_slab_high_water > 0);
        ctx.shrink_to(0);
        // High-water marks record the peak, not the current capacity.
        assert!(ctx.stats().event_slab_high_water > 0);
    }

    #[test]
    fn residency_totals_match_horizon() {
        let tasks = TaskSet::new(vec![Task::periodic_implicit(d(10), 2.0)]);
        let profile = PiecewiseConstant::constant(2.0);
        let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(200.0), d(300));
        let r = simulate(
            config,
            &tasks,
            profile.clone(),
            Box::new(LazyScheduler::new()),
            Box::new(OraclePredictor::new(profile)),
        );
        let total = r.busy_time() + r.idle_time;
        assert!((total - 300.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_none() {
        let tasks = TaskSet::new(vec![Task::periodic_implicit(d(10), 2.0)]);
        let profile = PiecewiseConstant::constant(1.0);
        let base = SystemConfig::new(presets::xscale(), StorageSpec::ideal(200.0), d(300))
            .with_trace()
            .with_metrics()
            .with_sample_interval(d(25));
        let faulted = base.clone().with_fault_plan(FaultPlan::default());
        let run_with = |config: SystemConfig| {
            simulate(
                config,
                &tasks,
                profile.clone(),
                Box::new(EaDvfsScheduler::new()),
                Box::new(OraclePredictor::new(profile.clone())),
            )
        };
        assert_eq!(run_with(base), run_with(faulted));
    }

    #[test]
    fn blackout_window_degrades_the_run() {
        use harvest_energy::fault::HarvestFaultWindow;
        // A tight harvest budget with a long blackout mid-run: the
        // faulted trial must harvest strictly less and trace the edges.
        let tasks = TaskSet::new(vec![Task::periodic_implicit(d(10), 4.0)]);
        let profile = PiecewiseConstant::constant(1.2);
        let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(50.0), d(400))
            .with_initial_level(10.0)
            .with_trace();
        let plan = FaultPlan {
            harvest: vec![HarvestFaultWindow {
                start: u(100),
                end: u(300),
                factor: 0.0,
            }],
            ..FaultPlan::default()
        };
        let run_with = |config: SystemConfig| {
            simulate(
                config,
                &tasks,
                profile.clone(),
                Box::new(EaDvfsScheduler::new()),
                Box::new(OraclePredictor::new(profile.clone())),
            )
        };
        let clean = run_with(config.clone());
        let faulted = run_with(config.with_fault_plan(plan));
        assert!(
            faulted.energy.harvested < clean.energy.harvested - 1.0,
            "blackout must cut harvested energy ({} vs {})",
            faulted.energy.harvested,
            clean.energy.harvested
        );
        let fault_edges = faulted
            .trace
            .iter()
            .filter(|(_, ev)| matches!(ev, TraceEvent::HarvestFault { .. }))
            .count();
        assert_eq!(fault_edges, 2, "one edge per window boundary");
        assert_eq!(
            faulted.trace_kind_counts[TraceEvent::KIND_NAMES
                .iter()
                .position(|&n| n == "harvest-fault")
                .unwrap()],
            2
        );
    }

    #[test]
    fn level_lockout_forces_faster_selection() {
        // EA-DVFS stretches the §2 τ1 job onto the slow level; locking
        // that level for the whole run forces eq. 6 to re-select the
        // fast one.
        let plan = FaultPlan {
            lockouts: vec![LevelLockoutWindow {
                level: 0,
                start: u(0),
                end: u(30),
            }],
            ..FaultPlan::default()
        };
        let clean = run(
            Box::new(EaDvfsScheduler::new()),
            &section2_tasks(),
            section2_config(),
        );
        let locked = run(
            Box::new(EaDvfsScheduler::new()),
            &section2_tasks(),
            section2_config().with_fault_plan(plan),
        );
        let started_levels = |r: &SimResult| -> Vec<usize> {
            r.trace
                .iter()
                .filter_map(|(_, ev)| match ev {
                    TraceEvent::Started { level, .. } => Some(*level),
                    _ => None,
                })
                .collect()
        };
        assert!(
            started_levels(&clean).contains(&0),
            "baseline must use the slow level"
        );
        assert!(
            started_levels(&locked).iter().all(|&l| l != 0),
            "locked level must never start"
        );
        assert!(
            locked.trace.iter().any(|(_, ev)| matches!(
                ev,
                TraceEvent::LevelLockout {
                    level: 0,
                    locked: true
                }
            )),
            "lockout must be traced"
        );
    }

    #[test]
    fn watchdog_event_budget_yields_typed_error() {
        let tasks = TaskSet::new(vec![Task::periodic_implicit(d(10), 2.0)]);
        let profile = PiecewiseConstant::constant(2.0);
        let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(200.0), d(300))
            .with_watchdog(harvest_sim::engine::Watchdog::with_max_events(5));
        let err = try_simulate_shared(
            config,
            Arc::new(tasks),
            Arc::new(profile.clone()),
            Box::new(EdfScheduler::new()),
            Box::new(OraclePredictor::new(profile)),
        )
        .expect_err("a 5-event budget cannot cover a 300-unit run");
        assert!(matches!(
            err,
            SimError::WatchdogEventBudget { events: 6, .. }
        ));
    }

    #[test]
    fn watchdog_abort_leaves_pool_reusable() {
        let tasks = Arc::new(TaskSet::new(vec![Task::periodic_implicit(d(10), 2.0)]));
        let profile = Arc::new(PiecewiseConstant::constant(2.0));
        let base = SystemConfig::new(presets::xscale(), StorageSpec::ideal(200.0), d(300));
        let mut ctx = RunContext::new();
        let mut policy = EdfScheduler::new();
        let err = try_simulate_in(
            &mut ctx,
            base.clone()
                .with_watchdog(harvest_sim::engine::Watchdog::with_max_events(5)),
            Arc::clone(&tasks),
            Arc::clone(&profile),
            &mut policy,
            Box::new(OraclePredictor::new((*profile).clone())),
        );
        assert!(err.is_err());
        assert!(ctx.queue_stats().is_some(), "queues reclaimed after abort");
        // The same context then runs a clean trial bit-identical to a
        // fresh one.
        let pooled = simulate_in(
            &mut ctx,
            base.clone(),
            Arc::clone(&tasks),
            Arc::clone(&profile),
            &mut policy,
            Box::new(OraclePredictor::new((*profile).clone())),
        );
        let fresh = simulate_shared(
            base,
            tasks,
            Arc::clone(&profile),
            Box::new(EdfScheduler::new()),
            Box::new(OraclePredictor::new((*profile).clone())),
        );
        assert_eq!(pooled, fresh);
        assert_eq!(ctx.stats().runs, 2, "aborted runs still count");
    }

    #[test]
    fn watchdog_abort_freezes_a_flight_dump() {
        let tasks = Arc::new(TaskSet::new(vec![Task::periodic_implicit(d(10), 2.0)]));
        let profile = Arc::new(PiecewiseConstant::constant(2.0));
        let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(200.0), d(300))
            .with_watchdog(harvest_sim::engine::Watchdog::with_max_events(40));
        let mut ctx = RunContext::new();
        ctx.enable_flight(16);
        if let Some(flight) = ctx.flight() {
            flight.lock().unwrap().mark("cell key text");
        }
        let mut policy = EdfScheduler::new();
        let err = try_simulate_in(
            &mut ctx,
            config,
            Arc::clone(&tasks),
            Arc::clone(&profile),
            &mut policy,
            Box::new(OraclePredictor::new((*profile).clone())),
        );
        assert!(err.is_err());
        let dumps = ctx.take_flight_dumps();
        assert_eq!(dumps.len(), 1);
        let dump = &dumps[0];
        assert_eq!(dump.reason, "watchdog-event-budget");
        assert!(dump.events_handled > 0);
        assert!(!dump.events.is_empty(), "ring holds the event tail");
        // The driver's marker survives unless the ring wrapped past it.
        if dump.dropped == 0 {
            assert_eq!(dump.events[0].detail, "cell key text");
        }
        // Simulation events were rendered with their kind names.
        assert!(dump
            .events
            .iter()
            .any(|e| e.kind == "released" || e.kind == "started"));
        assert!(ctx.take_flight_dumps().is_empty(), "drain is one-shot");
    }

    #[test]
    fn flight_recording_does_not_change_results() {
        let tasks = Arc::new(TaskSet::new(vec![Task::periodic_implicit(d(10), 2.0)]));
        let profile = Arc::new(PiecewiseConstant::constant(2.0));
        let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(200.0), d(300));
        let mut plain_ctx = RunContext::new();
        let mut policy = EdfScheduler::new();
        let plain = simulate_in(
            &mut plain_ctx,
            config.clone(),
            Arc::clone(&tasks),
            Arc::clone(&profile),
            &mut policy,
            Box::new(OraclePredictor::new((*profile).clone())),
        );
        let mut recorded_ctx = RunContext::new();
        recorded_ctx.enable_flight(64);
        let recorded = simulate_in(
            &mut recorded_ctx,
            config,
            tasks,
            Arc::clone(&profile),
            &mut policy,
            Box::new(OraclePredictor::new((*profile).clone())),
        );
        assert_eq!(plain, recorded, "flight recording is observation-only");
        assert!(
            recorded_ctx.take_flight_dumps().is_empty(),
            "clean runs capture nothing"
        );
    }

    /// Tie-heavy periodic set: at t = 5 the heap pops τ1's seeded
    /// release before τ0's successor (lower sequence number), the case
    /// a naive sorted-by-task-index tape would invert.
    fn tape_tasks() -> Arc<TaskSet> {
        Arc::new(TaskSet::new(vec![
            Task::periodic(u(0), d(5), d(5), 1.0),
            Task::periodic(u(5), d(10), d(10), 1.5),
            Task::periodic_implicit(d(20), 4.0),
        ]))
    }

    #[test]
    fn taped_runs_are_bit_identical_to_heap_runs() {
        let tasks = tape_tasks();
        let profile = Arc::new(PiecewiseConstant::constant(0.8));
        let config = SystemConfig::new(presets::xscale(), StorageSpec::ideal(30.0), d(200))
            .with_sample_interval(d(25));
        let tape = Arc::new(tasks.release_tape(config.horizon));
        let policies: Vec<Box<dyn Scheduler>> = vec![
            Box::new(EdfScheduler::new()),
            Box::new(LazyScheduler::new()),
            Box::new(GreedyStretchScheduler::new()),
            Box::new(EaDvfsScheduler::new()),
        ];
        for mut policy in policies {
            let mut ctx = RunContext::new();
            let heap = try_simulate_in(
                &mut ctx,
                config.clone(),
                Arc::clone(&tasks),
                Arc::clone(&profile),
                policy.as_mut(),
                Box::new(OraclePredictor::new((*profile).clone())),
            )
            .unwrap();
            let taped = try_simulate_in_taped(
                &mut ctx,
                config.clone(),
                Arc::clone(&tasks),
                Arc::clone(&profile),
                policy.as_mut(),
                Box::new(OraclePredictor::new((*profile).clone())),
                Some(Arc::clone(&tape)),
            )
            .unwrap();
            assert_eq!(heap, taped, "tape diverged under {}", heap.scheduler);
            assert!(taped.released() > 0, "scenario exercises releases");
        }
    }

    #[test]
    fn taped_metric_runs_fall_back_to_the_heap_path() {
        let tasks = tape_tasks();
        let profile = Arc::new(PiecewiseConstant::constant(0.8));
        let config =
            SystemConfig::new(presets::xscale(), StorageSpec::ideal(30.0), d(100)).with_metrics();
        let tape = Arc::new(tasks.release_tape(config.horizon));
        let mut ctx = RunContext::new();
        let mut policy = EdfScheduler::new();
        let taped = try_simulate_in_taped(
            &mut ctx,
            config.clone(),
            Arc::clone(&tasks),
            Arc::clone(&profile),
            &mut policy,
            Box::new(OraclePredictor::new((*profile).clone())),
            Some(tape),
        )
        .unwrap();
        let heap = try_simulate_in(
            &mut ctx,
            config,
            tasks,
            profile.clone(),
            &mut policy,
            Box::new(OraclePredictor::new((*profile).clone())),
        )
        .unwrap();
        let m = taped.metrics.as_ref().expect("metrics collected");
        assert_eq!(
            m.counter("queue.scheduled"),
            heap.metrics.as_ref().unwrap().counter("queue.scheduled"),
            "metric runs ignore the tape, so queue stats stay reference-exact"
        );
        assert_eq!(heap, taped);
    }
}
