//! Scheduling-trace vocabulary of the closed-loop simulator.

use harvest_cpu::LevelIndex;
use harvest_sim::time::SimTime;
use harvest_task::job::JobId;
use serde::{Deserialize, Serialize};

/// One scheduling event, timestamped by its position in
/// [`SimResult::trace`](crate::result::SimResult::trace).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A job was released into the ready queue.
    Released {
        /// The new job.
        job: JobId,
        /// Releasing task index.
        task: usize,
        /// The job's absolute deadline.
        deadline: SimTime,
    },
    /// Execution (re)started at the given DVFS level.
    Started {
        /// The executing job.
        job: JobId,
        /// Chosen level.
        level: LevelIndex,
    },
    /// A job finished all its work.
    Completed {
        /// The finished job.
        job: JobId,
    },
    /// A job reached its deadline unfinished.
    Missed {
        /// The late job.
        job: JobId,
    },
    /// The policy chose to keep the processor idle.
    Idled {
        /// Scheduled wake-up, if any.
        until: Option<SimTime>,
    },
    /// The store was empty; execution stalled awaiting harvested energy.
    Stalled {
        /// Scheduled restart attempt, if the source ever recovers.
        until: Option<SimTime>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_events_round_trip_serde() {
        let events = vec![
            TraceEvent::Released {
                job: JobId(1),
                task: 0,
                deadline: SimTime::from_whole_units(5),
            },
            TraceEvent::Started {
                job: JobId(1),
                level: 2,
            },
            TraceEvent::Completed { job: JobId(1) },
        ];
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
    }
}
