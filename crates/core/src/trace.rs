//! Scheduling-trace vocabulary of the closed-loop simulator.

use harvest_cpu::LevelIndex;
use harvest_sim::time::SimTime;
use harvest_sim::trace::RecordKind;
use harvest_task::job::JobId;
use serde::{Deserialize, Serialize};

/// One scheduling event, timestamped by its position in
/// [`SimResult::trace`](crate::result::SimResult::trace).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A job was released into the ready queue.
    Released {
        /// The new job.
        job: JobId,
        /// Releasing task index.
        task: usize,
        /// The job's absolute deadline.
        deadline: SimTime,
    },
    /// Execution (re)started at the given DVFS level.
    Started {
        /// The executing job.
        job: JobId,
        /// Chosen level.
        level: LevelIndex,
    },
    /// A job finished all its work.
    Completed {
        /// The finished job.
        job: JobId,
    },
    /// A job reached its deadline unfinished.
    Missed {
        /// The late job.
        job: JobId,
    },
    /// The policy chose to keep the processor idle.
    Idled {
        /// Scheduled wake-up, if any.
        until: Option<SimTime>,
    },
    /// The store was empty; execution stalled awaiting harvested energy.
    Stalled {
        /// Scheduled restart attempt, if the source ever recovers.
        until: Option<SimTime>,
    },
    /// The injected harvest attenuation changed (a blackout/brownout
    /// window opened or closed).
    HarvestFault {
        /// Combined attenuation factor now in effect (1.0 = nominal).
        factor: f64,
        /// `true` while at least one window is active.
        active: bool,
    },
    /// An injected DVFS level lockout toggled.
    LevelLockout {
        /// The affected level.
        level: LevelIndex,
        /// `true` when the level just became unavailable.
        locked: bool,
    },
}

impl TraceEvent {
    /// Number of variants; kind indices are below this.
    pub const KIND_COUNT: usize = 8;

    /// Variant names indexed by [`kind_index`](Self::kind_index), for
    /// rendering per-variant counts.
    pub const KIND_NAMES: [&'static str; Self::KIND_COUNT] = [
        "released",
        "started",
        "completed",
        "missed",
        "idled",
        "stalled",
        "harvest-fault",
        "level-lockout",
    ];

    /// Dense variant index, in `0..KIND_COUNT`.
    pub fn kind_index(&self) -> usize {
        match self {
            TraceEvent::Released { .. } => 0,
            TraceEvent::Started { .. } => 1,
            TraceEvent::Completed { .. } => 2,
            TraceEvent::Missed { .. } => 3,
            TraceEvent::Idled { .. } => 4,
            TraceEvent::Stalled { .. } => 5,
            TraceEvent::HarvestFault { .. } => 6,
            TraceEvent::LevelLockout { .. } => 7,
        }
    }

    /// Variant name (see [`KIND_NAMES`](Self::KIND_NAMES)).
    pub fn kind_name(&self) -> &'static str {
        Self::KIND_NAMES[self.kind_index()]
    }
}

/// Lets a `CountingSink` tally scheduling events per variant without
/// retaining them.
impl RecordKind for TraceEvent {
    const KIND_COUNT: usize = TraceEvent::KIND_COUNT;

    fn kind_index(&self) -> usize {
        TraceEvent::kind_index(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_events_round_trip_serde() {
        let events = vec![
            TraceEvent::Released {
                job: JobId(1),
                task: 0,
                deadline: SimTime::from_whole_units(5),
            },
            TraceEvent::Started {
                job: JobId(1),
                level: 2,
            },
            TraceEvent::Completed { job: JobId(1) },
        ];
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn kind_indices_are_dense_and_named() {
        let samples = [
            TraceEvent::Released {
                job: JobId(1),
                task: 0,
                deadline: SimTime::ZERO,
            },
            TraceEvent::Started {
                job: JobId(1),
                level: 0,
            },
            TraceEvent::Completed { job: JobId(1) },
            TraceEvent::Missed { job: JobId(1) },
            TraceEvent::Idled { until: None },
            TraceEvent::Stalled { until: None },
            TraceEvent::HarvestFault {
                factor: 0.0,
                active: true,
            },
            TraceEvent::LevelLockout {
                level: 1,
                locked: true,
            },
        ];
        assert_eq!(samples.len(), TraceEvent::KIND_COUNT);
        for (i, ev) in samples.iter().enumerate() {
            assert_eq!(ev.kind_index(), i);
            assert_eq!(ev.kind_name(), TraceEvent::KIND_NAMES[i]);
        }
    }
}
