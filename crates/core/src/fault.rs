//! Deterministic per-trial fault plans.
//!
//! A [`FaultPlan`] is the full description of everything that goes
//! wrong in one trial: harvest blackout/brownout windows, storage
//! degradation, DVFS level lockouts, and predictor corruption. Plans
//! are plain data — attached to a [`SystemConfig`](crate::config::SystemConfig)
//! via [`with_fault_plan`](crate::config::SystemConfig::with_fault_plan) —
//! and are either hand-built or derived from a `(seed, intensity)` pair
//! by [`FaultPlan::generate`], whose SplitMix64 stream guarantees the
//! same plan (and therefore a bit-identical run) for the same inputs.
//!
//! Zero intensity generates the canonical empty plan, and the simulator
//! treats an empty plan exactly like no plan at all, so the fault-free
//! path is preserved bit-for-bit (pinned by the Fig. 5–9 suites).

use harvest_cpu::{CpuModel, LevelIndex};
use harvest_energy::fault::{HarvestFaultWindow, StorageFault};
use harvest_energy::predictor::PredictorFault;
use harvest_energy::rand_util::{splitmix64, unit_from_bits};
use harvest_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One temporary DVFS level outage: level `level` is unavailable to the
/// min-frequency search over `[start, end)`, forcing eq. 6 to re-select
/// the next faster available point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelLockoutWindow {
    /// The locked-out level. Never the fastest level.
    pub level: LevelIndex,
    /// Lockout start (inclusive).
    pub start: SimTime,
    /// Lockout end (exclusive).
    pub end: SimTime,
}

impl LevelLockoutWindow {
    /// `true` when the lockout is active at instant `t`.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Everything injected into one trial. See the module docs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Harvest attenuation windows (blackouts and brownouts).
    pub harvest: Vec<HarvestFaultWindow>,
    /// Storage capacity fade and extra leakage, if any.
    pub storage: Option<StorageFault>,
    /// Temporary DVFS level outages.
    pub lockouts: Vec<LevelLockoutWindow>,
    /// Predictor noise/staleness, if any.
    pub predictor: Option<PredictorFault>,
}

impl FaultPlan {
    /// `true` when the plan injects nothing — the simulator then takes
    /// the exact fault-free code path.
    pub fn is_empty(&self) -> bool {
        self.harvest.is_empty()
            && self.storage.is_none_or(|s| s.is_empty())
            && self.lockouts.is_empty()
            && self.predictor.is_none_or(|p| p.is_empty())
    }

    /// Bitmask of levels locked out at instant `t`.
    pub fn lockout_mask_at(&self, t: SimTime) -> u64 {
        let mut mask = 0u64;
        for w in &self.lockouts {
            if w.contains(t) && w.level < 64 {
                mask |= 1 << w.level;
            }
        }
        mask
    }

    /// Every distinct window edge (start or end) in `(after, before)`,
    /// sorted ascending — the instants at which the injected state
    /// changes and the simulator must re-decide.
    pub fn edge_times(&self, after: SimTime, before: SimTime) -> Vec<SimTime> {
        let mut edges = Vec::with_capacity(2 * (self.harvest.len() + self.lockouts.len()));
        let mut push = |t: SimTime| {
            if after < t && t < before {
                edges.push(t);
            }
        };
        for w in &self.harvest {
            push(w.start);
            push(w.end);
        }
        for w in &self.lockouts {
            push(w.start);
            push(w.end);
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Derives a plan from a trial seed and a fault intensity in
    /// `[0, 1]`.
    ///
    /// Intensity `0` returns the canonical empty plan. As intensity
    /// grows, blackout/brownout windows get more numerous and longer,
    /// the battery fades harder and leaks more (scaled by the CPU's
    /// full-speed power so the leak is meaningful for any platform),
    /// sub-maximal DVFS levels lock out more often, and the predictor
    /// gets noisier and staler. The fastest level is never locked.
    ///
    /// The generator consumes a dedicated SplitMix64 stream keyed on
    /// `seed` (decorrelated from the workload/profile streams), so the
    /// same `(seed, intensity, horizon, cpu)` always yields the same
    /// plan.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `[0, 1]` or the horizon is not
    /// positive.
    pub fn generate(seed: u64, intensity: f64, horizon: SimDuration, cpu: &CpuModel) -> FaultPlan {
        assert!(
            intensity.is_finite() && (0.0..=1.0).contains(&intensity),
            "fault intensity must lie in [0, 1]"
        );
        assert!(horizon.is_positive(), "horizon must be positive");
        if intensity == 0.0 {
            return FaultPlan::default();
        }
        let mut s = seed ^ 0x000F_A170_F00D_5EED_u64;
        let mut next_u = || unit_from_bits(splitmix64(&mut s));
        let h = horizon.as_units();
        let start_of = |u: f64, len: f64| {
            let t0 = u * (h - len).max(0.0);
            SimTime::ZERO + SimDuration::from_units(t0)
        };

        // Harvest: 1..=4 windows, each 1–6% of the horizon; even draws
        // are blackouts, odd draws brownouts.
        let n_harvest = 1 + (intensity * 3.0 * next_u()) as usize;
        let mut harvest = Vec::with_capacity(n_harvest);
        for i in 0..n_harvest {
            let len = h * (0.01 + 0.05 * intensity * next_u());
            let start = start_of(next_u(), len);
            let factor = if i % 2 == 0 {
                0.0
            } else {
                0.3 + 0.4 * next_u()
            };
            harvest.push(HarvestFaultWindow {
                start,
                end: start + SimDuration::from_units(len),
                factor,
            });
        }

        // Storage: fade up to 25% and leakage up to 10% of P_max at
        // full intensity.
        let storage = StorageFault {
            capacity_fade: 0.25 * intensity * next_u(),
            extra_leakage_power: 0.10 * intensity * next_u() * cpu.max_power(),
        };
        let storage = (!storage.is_empty()).then_some(storage);

        // Lockouts: up to 3 windows over the sub-maximal levels, each
        // 2–10% of the horizon. A single-level CPU has nothing to lock.
        let mut lockouts = Vec::new();
        if cpu.max_level() > 0 {
            let n_lock = (intensity * 3.0 * next_u()).round() as usize;
            for _ in 0..n_lock {
                let level = (next_u() * cpu.max_level() as f64) as usize;
                let len = h * (0.02 + 0.08 * intensity * next_u());
                let start = start_of(next_u(), len);
                lockouts.push(LevelLockoutWindow {
                    level: level.min(cpu.max_level() - 1),
                    start,
                    end: start + SimDuration::from_units(len),
                });
            }
        }

        // Predictor: noise grows to ±60% and staleness to 40% dropped
        // observations at full intensity.
        let predictor = PredictorFault {
            noise_amplitude: 0.6 * intensity,
            drop_rate: 0.4 * intensity,
            seed: splitmix64(&mut s),
        };
        let predictor = (!predictor.is_empty()).then_some(predictor);

        FaultPlan {
            harvest,
            storage,
            lockouts,
            predictor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_cpu::presets;

    fn horizon() -> SimDuration {
        SimDuration::from_whole_units(10_000)
    }

    #[test]
    fn zero_intensity_is_the_empty_plan() {
        let plan = FaultPlan::generate(42, 0.0, horizon(), &presets::xscale());
        assert_eq!(plan, FaultPlan::default());
        assert!(plan.is_empty());
    }

    #[test]
    fn same_inputs_same_plan() {
        let cpu = presets::xscale();
        let a = FaultPlan::generate(7, 0.6, horizon(), &cpu);
        let b = FaultPlan::generate(7, 0.6, horizon(), &cpu);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let cpu = presets::xscale();
        let a = FaultPlan::generate(1, 0.5, horizon(), &cpu);
        let b = FaultPlan::generate(2, 0.5, horizon(), &cpu);
        assert_ne!(a, b);
    }

    #[test]
    fn generated_windows_are_well_formed() {
        let cpu = presets::xscale();
        let end = SimTime::ZERO + horizon();
        for seed in 0..20 {
            for intensity in [0.1, 0.5, 1.0] {
                let plan = FaultPlan::generate(seed, intensity, horizon(), &cpu);
                for w in &plan.harvest {
                    assert!(w.is_valid(), "{w:?}");
                    assert!(w.start >= SimTime::ZERO && w.end <= end, "{w:?}");
                }
                for w in &plan.lockouts {
                    assert!(w.start < w.end, "{w:?}");
                    assert!(w.level < cpu.max_level(), "fastest level locked: {w:?}");
                }
                if let Some(s) = plan.storage {
                    assert!((0.0..1.0).contains(&s.capacity_fade));
                    assert!(s.extra_leakage_power >= 0.0);
                }
            }
        }
    }

    #[test]
    fn edge_times_are_sorted_dedup_and_interior() {
        let cpu = presets::xscale();
        let plan = FaultPlan::generate(3, 0.8, horizon(), &cpu);
        let end = SimTime::ZERO + horizon();
        let edges = plan.edge_times(SimTime::ZERO, end);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        assert!(edges.iter().all(|&t| SimTime::ZERO < t && t < end));
    }

    #[test]
    fn lockout_mask_tracks_windows() {
        let plan = FaultPlan {
            lockouts: vec![LevelLockoutWindow {
                level: 1,
                start: SimTime::from_whole_units(10),
                end: SimTime::from_whole_units(20),
            }],
            ..FaultPlan::default()
        };
        assert_eq!(plan.lockout_mask_at(SimTime::from_whole_units(5)), 0);
        assert_eq!(plan.lockout_mask_at(SimTime::from_whole_units(10)), 0b10);
        assert_eq!(plan.lockout_mask_at(SimTime::from_whole_units(20)), 0);
    }

    #[test]
    fn plans_round_trip_serde() {
        let cpu = presets::xscale();
        let plan = FaultPlan::generate(11, 0.7, horizon(), &cpu);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
