//! Static utilization-based slowdown — the classic non-harvesting DVFS
//! baseline.

use harvest_cpu::LevelIndex;

use crate::scheduler::{Decision, SchedContext, Scheduler};

/// Runs every job at the slowest level whose speed covers the task-set
/// utilization (`S_n ≥ U`), the static voltage-scaling rule of
/// Pillai & Shin (RT-DVS). Energy-oblivious: it never consults the
/// store or the predictor, so it brackets EA-DVFS from the "pure DVFS,
/// no harvesting awareness" side.
///
/// EDF with speed `S ≥ U` keeps every implicit-deadline job schedulable,
/// so the only misses this policy suffers are energy-driven.
///
/// # Examples
///
/// ```
/// use harvest_core::policies::StaticSlowdownScheduler;
/// use harvest_core::scheduler::Scheduler;
/// use harvest_cpu::presets;
///
/// let s = StaticSlowdownScheduler::new(&presets::xscale(), 0.5);
/// assert_eq!(s.name(), "static-slowdown");
/// assert_eq!(s.level(), 2); // XScale: S = 0.6 is the slowest ≥ 0.5
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticSlowdownScheduler {
    level: LevelIndex,
}

impl StaticSlowdownScheduler {
    /// Creates the policy for a processor and a task-set utilization.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `(0, 1]`.
    pub fn new(cpu: &harvest_cpu::CpuModel, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must lie in (0, 1]"
        );
        let level = (0..cpu.level_count())
            .find(|&n| cpu.speed(n) >= utilization)
            .unwrap_or_else(|| cpu.max_level());
        StaticSlowdownScheduler { level }
    }

    /// The statically selected level.
    pub fn level(&self) -> LevelIndex {
        self.level
    }
}

impl Scheduler for StaticSlowdownScheduler {
    fn decide(&mut self, _ctx: &SchedContext<'_>) -> Decision {
        Decision::run(self.level)
    }

    fn name(&self) -> &str {
        "static-slowdown"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_util::{job, CtxFixture};
    use harvest_cpu::presets;

    #[test]
    fn picks_slowest_covering_level() {
        let cpu = presets::xscale();
        assert_eq!(StaticSlowdownScheduler::new(&cpu, 0.1).level(), 0); // S=0.15
        assert_eq!(StaticSlowdownScheduler::new(&cpu, 0.4).level(), 1); // S=0.4
        assert_eq!(StaticSlowdownScheduler::new(&cpu, 0.41).level(), 2); // S=0.6
        assert_eq!(StaticSlowdownScheduler::new(&cpu, 1.0).level(), 4);
    }

    #[test]
    fn always_runs_at_its_level() {
        let f = CtxFixture::new(presets::xscale(), 0.0, 100.0, 0.0, job(16, 4.0));
        let mut s = StaticSlowdownScheduler::new(&presets::xscale(), 0.4);
        assert_eq!(s.decide(&f.ctx()), Decision::run(1));
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn rejects_overload() {
        let _ = StaticSlowdownScheduler::new(&presets::xscale(), 1.5);
    }
}
