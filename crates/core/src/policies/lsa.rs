//! The lazy scheduling algorithm (LSA).

use crate::scheduler::{Decision, SchedContext, Scheduler};

/// LSA (Moser, Brunelli, Thiele, Benini — paper refs \[7\], \[10\]), as
/// described in the paper's introduction: the processor always executes
/// at full power, and a task starts only when
///
/// 1. it is ready,
/// 2. it has the earliest deadline among ready tasks (handled by the
///    system's EDF queue), and
/// 3. the system can keep running at maximum power until the task's
///    deadline — i.e. no earlier than `s = max(t, D − sr_max)` with
///    `sr_max = (EC(t) + ÊS(t, D)) / P_max` (eq. 8/9).
///
/// Starting at `s` means the store is exactly exhausted at the deadline,
/// so no harvested energy is wasted by idling; but whatever slack the
/// job had is burned at full power — the inefficiency EA-DVFS attacks.
///
/// # Examples
///
/// ```
/// use harvest_core::policies::LazyScheduler;
/// use harvest_core::scheduler::Scheduler;
///
/// let s = LazyScheduler::new();
/// assert_eq!(s.name(), "lsa");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LazyScheduler {
    /// Decisions that deferred the start to the lazy instant `s`.
    lazy_waits: u64,
    /// Decisions that started (or kept) the job running immediately.
    immediate_runs: u64,
}

impl LazyScheduler {
    /// Creates the policy.
    pub fn new() -> Self {
        LazyScheduler::default()
    }
}

impl Scheduler for LazyScheduler {
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        let max = ctx.cpu.max_level();
        let sr_max = ctx.run_time_at_power(ctx.cpu.max_power());
        let s = ctx.latest_start(sr_max);
        if s > ctx.now {
            self.lazy_waits += 1;
            Decision::IdleUntil(s)
        } else {
            self.immediate_runs += 1;
            Decision::run(max)
        }
    }

    fn name(&self) -> &str {
        "lsa"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("lazy_waits", self.lazy_waits),
            ("immediate_runs", self.immediate_runs),
        ]
    }

    fn reset(&mut self) {
        *self = LazyScheduler::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_util::{job, CtxFixture};
    use harvest_cpu::presets;
    use harvest_sim::time::SimTime;

    #[test]
    fn delays_start_until_energy_suffices() {
        // §2: EC(0)=24, Ps=0.5, τ1=(0,16,4), Pmax=8 → avail 32, sr=4,
        // s = 12: LSA idles until 12.
        let f = CtxFixture::new(presets::two_speed_example(), 24.0, 1e6, 0.5, job(16, 4.0));
        let mut s = LazyScheduler::new();
        assert_eq!(
            s.decide(&f.ctx()),
            Decision::IdleUntil(SimTime::from_whole_units(12))
        );
    }

    #[test]
    fn runs_immediately_when_energy_plentiful() {
        let f = CtxFixture::new(presets::two_speed_example(), 1000.0, 1e6, 0.5, job(16, 4.0));
        let mut s = LazyScheduler::new();
        assert_eq!(s.decide(&f.ctx()), Decision::run(1));
    }

    #[test]
    fn metrics_split_waits_and_runs() {
        let mut s = LazyScheduler::new();
        let scarce = CtxFixture::new(presets::two_speed_example(), 24.0, 1e6, 0.5, job(16, 4.0));
        s.decide(&scarce.ctx());
        let rich = CtxFixture::new(presets::two_speed_example(), 1000.0, 1e6, 0.5, job(16, 4.0));
        s.decide(&rich.ctx());
        assert_eq!(s.metrics(), vec![("lazy_waits", 1), ("immediate_runs", 1)]);
    }

    #[test]
    fn runs_once_lazy_start_reached() {
        // At t=12 the store has charged to 24 + 12·0.5 = 30, so
        // avail = 30 + 4·0.5 = 32, sr = 4, s = max(12, 12) = 12 ⇒ run.
        let f = CtxFixture::new(presets::two_speed_example(), 30.0, 1e6, 0.5, job(16, 4.0))
            .at(SimTime::from_whole_units(12));
        let mut s = LazyScheduler::new();
        assert!(matches!(s.decide(&f.ctx()), Decision::Run { level: 1, .. }));
    }
}
