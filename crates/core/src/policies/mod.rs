//! The scheduling policies under study.
//!
//! * [`EdfScheduler`] — plain earliest-deadline-first at full speed,
//!   energy-oblivious. The §4.3 degeneration target: EA-DVFS with
//!   infinite storage behaves exactly like this.
//! * [`LazyScheduler`] — LSA (Moser et al., paper refs \[7\], \[10\]): full
//!   speed, but start as late as the energy constraint allows.
//! * [`EaDvfsScheduler`] — the paper's contribution (§4): stretch the
//!   job to the slowest deadline-feasible level while energy is scarce,
//!   switch to full speed at `s2`.
//! * [`GreedyStretchScheduler`] — the §4.3 strawman: stretches without
//!   the `s2` cap, stealing time from future jobs. Kept as the ablation
//!   baseline for the cap.
//! * [`StaticSlowdownScheduler`] — classic utilization-based static
//!   DVFS (Pillai–Shin): pure slowdown with no harvesting awareness,
//!   bracketing EA-DVFS from the other side.

mod ea_dvfs;
mod edf;
mod greedy;
mod lsa;
mod static_slowdown;

pub use ea_dvfs::EaDvfsScheduler;
pub use edf::EdfScheduler;
pub use greedy::GreedyStretchScheduler;
pub use lsa::LazyScheduler;
pub use static_slowdown::StaticSlowdownScheduler;
