//! EA-DVFS — the paper's contribution (§4).

use crate::scheduler::{Decision, SchedContext, Scheduler};

/// Energy-aware dynamic voltage and frequency selection.
///
/// For the earliest-deadline job with remaining work `w` and absolute
/// deadline `D` at time `t` the policy computes (paper §4.2–4.3):
///
/// * `avail = EC(t) + ÊS(t, D)` — the energy available by the deadline,
/// * `s2 = max(t, D − avail/P_max)` — latest full-speed start (eq. 8/9),
/// * `f_n` — the slowest level with `w/S_n ≤ D − t` (eq. 6),
/// * `s1 = max(t, D − avail/P_n)` — latest start at the slow level
///   (eq. 5/7).
///
/// Then (Fig. 4 / §4.3 policy):
///
/// * `s1 == s2` (both equal `t`) — energy is sufficient: run at full
///   speed immediately. The system behaves like LSA/EDF.
/// * otherwise — energy is nearly depleted: idle until `s1`, run at
///   `f_n` during `[s1, s2)`, and switch to full speed at `s2` so the
///   stretched job cannot steal time from future jobs (§4.3, Fig. 3).
///
/// With infinite storage `avail = ∞`, both start times collapse to `t`,
/// and the policy degenerates to plain EDF (§4.3).
///
/// # Examples
///
/// ```
/// use harvest_core::policies::EaDvfsScheduler;
/// use harvest_core::scheduler::Scheduler;
///
/// let s = EaDvfsScheduler::new();
/// assert_eq!(s.name(), "ea-dvfs");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EaDvfsScheduler {
    /// Decisions taken on the sufficient-energy shortcut (`s1 == s2 ==
    /// now`, §4.3: the system behaves like plain EDF).
    full_speed: u64,
    /// Decisions where the deadline was unreachable even at `f_max` and
    /// the job runs flat out as a best effort.
    best_effort: u64,
    /// Decisions where only `f_max` was feasible and the policy fell
    /// back to LSA's lazy start.
    lsa_fallback: u64,
    /// Idle-until-`s1` decisions (energy scarce, start deferred).
    idles: u64,
    /// Stretch decisions: run below `f_max` with the `s2` review cap.
    stretches: u64,
}

impl EaDvfsScheduler {
    /// Creates the policy.
    pub fn new() -> Self {
        EaDvfsScheduler::default()
    }
}

impl Scheduler for EaDvfsScheduler {
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        let max = ctx.cpu.max_level();
        let d = ctx.job.absolute_deadline();
        let window = (d - ctx.now).as_units();

        let sr_max = ctx.run_time_at_power(ctx.cpu.max_power());
        let s2 = ctx.latest_start(sr_max);

        // Sufficient energy (s1 = s2 = now): run at full speed.
        if s2 <= ctx.now {
            self.full_speed += 1;
            return Decision::run(max);
        }

        // Energy-scarce path: find the slowest deadline-feasible level.
        let n = match ctx.cpu.min_feasible_level(ctx.job.remaining_work(), window) {
            // Deadline unreachable even at f_max (or already past): run
            // flat out as a best effort.
            None => {
                self.best_effort += 1;
                return Decision::run(max);
            }
            Some(n) => n,
        };
        if n == max {
            // No slower level is feasible; behave like LSA for this job.
            self.lsa_fallback += 1;
            return if s2 > ctx.now {
                Decision::IdleUntil(s2)
            } else {
                Decision::run(max)
            };
        }

        let sr_n = ctx.run_time_at_power(ctx.cpu.power(n));
        let s1 = ctx.latest_start(sr_n);
        debug_assert!(s1 <= s2, "slower power must allow an earlier latest-start");

        if ctx.now < s1 {
            self.idles += 1;
            Decision::IdleUntil(s1)
        } else {
            // Within [s1, s2): run slowly, but re-evaluate at s2 to
            // switch to full speed (the anti-starvation cap of §4.3).
            self.stretches += 1;
            Decision::Run {
                level: n,
                review: Some(s2),
            }
        }
    }

    fn name(&self) -> &str {
        "ea-dvfs"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("full_speed", self.full_speed),
            ("best_effort", self.best_effort),
            ("lsa_fallback", self.lsa_fallback),
            ("idles", self.idles),
            ("stretches", self.stretches),
        ]
    }

    fn reset(&mut self) {
        *self = EaDvfsScheduler::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_util::{job, CtxFixture};
    use harvest_cpu::presets;
    use harvest_energy::storage::{Storage, StorageSpec};
    use harvest_sim::time::SimTime;

    fn u(x: i64) -> SimTime {
        SimTime::from_whole_units(x)
    }

    /// §2 example at t=0: avail 32, Pn = 8/3 → sr_n = 12, s1 = 4;
    /// sr_max = 4 → s2 = 12. Scarce energy ⇒ idle until s1 = 4.
    #[test]
    fn section2_example_idles_until_s1() {
        let f = CtxFixture::new(presets::two_speed_example(), 24.0, 1e6, 0.5, job(16, 4.0));
        let mut s = EaDvfsScheduler::new();
        assert_eq!(s.decide(&f.ctx()), Decision::IdleUntil(u(4)));
    }

    /// Same example at t=4 (level unchanged in the fixture): now inside
    /// [s1, s2) ⇒ run at the slow level with a review at s2.
    #[test]
    fn section2_example_runs_slow_between_s1_s2() {
        let f =
            CtxFixture::new(presets::two_speed_example(), 26.0, 1e6, 0.5, job(16, 4.0)).at(u(4));
        // avail = 26 + 12·0.5 = 32; sr_n = 12 ⇒ s1 = max(4, 4) = 4;
        // sr_max = 4 ⇒ s2 = 12.
        let mut s = EaDvfsScheduler::new();
        assert_eq!(
            s.decide(&f.ctx()),
            Decision::Run {
                level: 0,
                review: Some(u(12))
            }
        );
    }

    #[test]
    fn sufficient_energy_runs_full_speed() {
        let f = CtxFixture::new(presets::two_speed_example(), 150.0, 1e6, 0.5, job(16, 4.0));
        // sr_max = (150+8)/8 = 19.75 > 16 ⇒ s2 = now ⇒ full speed.
        let mut s = EaDvfsScheduler::new();
        assert_eq!(s.decide(&f.ctx()), Decision::run(1));
    }

    #[test]
    fn infinite_storage_degenerates_to_edf() {
        let mut f = CtxFixture::new(presets::xscale(), 0.0, 1.0, 0.0, job(16, 4.0));
        f.storage = Storage::full(StorageSpec::infinite());
        let mut s = EaDvfsScheduler::new();
        assert_eq!(s.decide(&f.ctx()), Decision::run(4));
    }

    #[test]
    fn tight_deadline_forces_full_speed() {
        // w = 4, window = 4: only f_max is feasible; energy scarce ⇒
        // LSA-like lazy start.
        let f = CtxFixture::new(presets::two_speed_example(), 8.0, 1e6, 0.5, job(4, 4.0));
        // avail = 8 + 2 = 10; sr_max = 1.25 ⇒ s2 = 2.75.
        let mut s = EaDvfsScheduler::new();
        assert_eq!(
            s.decide(&f.ctx()),
            Decision::IdleUntil(SimTime::from_units(2.75))
        );
    }

    #[test]
    fn unreachable_deadline_is_best_effort_full_speed() {
        let f = CtxFixture::new(presets::two_speed_example(), 0.0, 1e6, 0.0, job(2, 4.0));
        let mut s = EaDvfsScheduler::new();
        assert_eq!(s.decide(&f.ctx()), Decision::run(1));
    }

    /// §4.3 / Fig. 3: quarter-speed processor, avail 32, Pn = 1.
    /// sr_n = 32 ⇒ s1 = max(0, 16−32) = 0; sr_max = 4 ⇒ s2 = 12.
    /// EA-DVFS runs slow from 0 with a review at 12.
    #[test]
    fn fig3_example_runs_slow_with_s2_review() {
        let f = CtxFixture::new(
            presets::quarter_speed_example(),
            32.0,
            1e6,
            0.0,
            job(16, 4.0),
        );
        let mut s = EaDvfsScheduler::new();
        assert_eq!(
            s.decide(&f.ctx()),
            Decision::Run {
                level: 0,
                review: Some(u(12))
            }
        );
    }

    #[test]
    fn metrics_classify_decisions() {
        let mut s = EaDvfsScheduler::new();
        assert!(s.metrics().iter().all(|&(_, c)| c == 0));
        // Scarce §2 setup at t=0: idle until s1.
        let scarce = CtxFixture::new(presets::two_speed_example(), 24.0, 1e6, 0.5, job(16, 4.0));
        s.decide(&scarce.ctx());
        // Plentiful energy: full-speed shortcut.
        let rich = CtxFixture::new(presets::two_speed_example(), 150.0, 1e6, 0.5, job(16, 4.0));
        s.decide(&rich.ctx());
        // Inside [s1, s2): stretch with review.
        let mid =
            CtxFixture::new(presets::two_speed_example(), 26.0, 1e6, 0.5, job(16, 4.0)).at(u(4));
        s.decide(&mid.ctx());
        assert_eq!(
            s.metrics(),
            vec![
                ("full_speed", 1),
                ("best_effort", 0),
                ("lsa_fallback", 0),
                ("idles", 1),
                ("stretches", 1),
            ]
        );
    }

    #[test]
    fn xscale_prefers_intermediate_level() {
        // Window 10, remaining 4 ⇒ need S ≥ 0.4 ⇒ level 1 of XScale.
        let f = CtxFixture::new(presets::xscale(), 1.0, 1e6, 0.1, job(10, 4.0));
        let mut s = EaDvfsScheduler::new();
        match s.decide(&f.ctx()) {
            Decision::IdleUntil(t) => {
                // avail = 1 + 1 = 2; sr_n(P=0.4) = 5 ⇒ s1 = 5.
                assert_eq!(t, u(5));
            }
            other => panic!("expected idle-until-s1, got {other:?}"),
        }
    }
}
