//! Greedy stretching — the §4.3 strawman, kept as an ablation baseline.

use crate::scheduler::{Decision, SchedContext, Scheduler};

/// EA-DVFS *without* the `s2` full-speed cap: when energy is scarce the
/// job is stretched to the slowest deadline-feasible level and stays
/// there until it completes.
///
/// The paper's Fig. 3 shows why this is wrong: the stretched job steals
/// time from future jobs, which then miss their deadlines even though
/// the energy would have sufficed. The `ablation_s2_cap` benchmark
/// quantifies the gap against full EA-DVFS.
///
/// # Examples
///
/// ```
/// use harvest_core::policies::GreedyStretchScheduler;
/// use harvest_core::scheduler::Scheduler;
///
/// let s = GreedyStretchScheduler::new();
/// assert_eq!(s.name(), "greedy-stretch");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyStretchScheduler;

impl GreedyStretchScheduler {
    /// Creates the policy.
    pub fn new() -> Self {
        GreedyStretchScheduler
    }
}

impl Scheduler for GreedyStretchScheduler {
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        let max = ctx.cpu.max_level();
        let d = ctx.job.absolute_deadline();
        let window = (d - ctx.now).as_units();

        let sr_max = ctx.run_time_at_power(ctx.cpu.max_power());
        let s2 = ctx.latest_start(sr_max);
        if s2 <= ctx.now {
            return Decision::run(max);
        }
        let n = match ctx.cpu.min_feasible_level(ctx.job.remaining_work(), window) {
            None => return Decision::run(max),
            Some(n) => n,
        };
        if n == max {
            return if s2 > ctx.now {
                Decision::IdleUntil(s2)
            } else {
                Decision::run(max)
            };
        }
        let sr_n = ctx.run_time_at_power(ctx.cpu.power(n));
        let s1 = ctx.latest_start(sr_n);
        if ctx.now < s1 {
            Decision::IdleUntil(s1)
        } else {
            // The difference from EA-DVFS: no review at s2 — the job
            // crawls to completion.
            Decision::run(n)
        }
    }

    fn name(&self) -> &str {
        "greedy-stretch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_util::{job, CtxFixture};
    use harvest_cpu::presets;

    #[test]
    fn stretches_without_review() {
        // Fig. 3 setting: avail 32, quarter speed feasible, s1 = 0.
        let f = CtxFixture::new(
            presets::quarter_speed_example(),
            32.0,
            1e6,
            0.0,
            job(16, 4.0),
        );
        let mut s = GreedyStretchScheduler::new();
        assert_eq!(s.decide(&f.ctx()), Decision::run(0));
    }

    #[test]
    fn full_speed_when_energy_plentiful() {
        let f = CtxFixture::new(
            presets::quarter_speed_example(),
            1e5,
            1e6,
            0.0,
            job(16, 4.0),
        );
        let mut s = GreedyStretchScheduler::new();
        assert_eq!(s.decide(&f.ctx()), Decision::run(1));
    }
}
