//! Plain EDF at full speed.

use crate::scheduler::{Decision, SchedContext, Scheduler};

/// Energy-oblivious earliest-deadline-first: always run the head job
/// immediately at the maximum frequency.
///
/// This is the classical baseline and the behaviour EA-DVFS provably
/// degenerates to when the storage capacity is infinite (paper §4.3).
///
/// # Examples
///
/// ```
/// use harvest_core::policies::EdfScheduler;
/// use harvest_core::scheduler::Scheduler;
///
/// let s = EdfScheduler::new();
/// assert_eq!(s.name(), "edf");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdfScheduler;

impl EdfScheduler {
    /// Creates the policy.
    pub fn new() -> Self {
        EdfScheduler
    }
}

impl Scheduler for EdfScheduler {
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        Decision::run(ctx.cpu.max_level())
    }

    fn name(&self) -> &str {
        "edf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_util::{job, CtxFixture};
    use harvest_cpu::presets;

    #[test]
    fn always_runs_at_max_immediately() {
        let f = CtxFixture::new(presets::xscale(), 0.0, 100.0, 0.0, job(16, 4.0));
        let mut s = EdfScheduler::new();
        assert_eq!(s.decide(&f.ctx()), Decision::run(4));
    }
}
