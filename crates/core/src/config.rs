//! System-simulation configuration.

use harvest_cpu::CpuModel;
use harvest_energy::storage::StorageSpec;
use harvest_sim::engine::Watchdog;
use harvest_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;

/// What happens to a job that reaches its deadline unfinished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MissPolicy {
    /// The job is aborted at its deadline and counted as missed — the
    /// conventional firm-deadline semantics used for the paper's
    /// miss-rate experiments.
    #[default]
    AbortAtDeadline,
    /// The job keeps executing past the deadline (still counted as
    /// missed); useful for tardiness studies.
    RunToCompletion,
}

/// Full configuration of a closed-loop run.
///
/// # Examples
///
/// ```
/// use harvest_core::config::SystemConfig;
/// use harvest_cpu::presets;
/// use harvest_energy::storage::StorageSpec;
/// use harvest_sim::time::SimDuration;
///
/// let cfg = SystemConfig::new(
///     presets::xscale(),
///     StorageSpec::ideal(500.0),
///     SimDuration::from_whole_units(10_000),
/// )
/// .with_sample_interval(SimDuration::from_whole_units(100));
/// assert_eq!(cfg.horizon, SimDuration::from_whole_units(10_000));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The DVFS processor.
    pub cpu: CpuModel,
    /// Energy-storage parameters.
    pub storage: StorageSpec,
    /// Initial stored energy; `None` starts full (the paper's §5.1
    /// setup).
    pub initial_level: Option<f64>,
    /// Deadline-miss semantics.
    pub miss_policy: MissPolicy,
    /// When the store is depleted mid-run the processor stalls until it
    /// has scavenged enough energy to run for this many time units at
    /// the chosen level (paper §4.2: "the system will delay task
    /// execution until it has scavenged energy"). Keeps the event count
    /// finite; must be positive.
    pub restart_quantum: f64,
    /// If set, the storage level is sampled on this grid (for the
    /// remaining-energy curves of Figs. 6–7).
    pub sample_interval: Option<SimDuration>,
    /// Simulated horizon; events in `[0, horizon)` are processed.
    pub horizon: SimDuration,
    /// Retain a full trace of scheduling events in the result.
    pub collect_trace: bool,
    /// Publish a metrics snapshot (queue/cursor/policy counters) into
    /// the result. The counters are maintained regardless — this only
    /// controls whether they are frozen into
    /// [`SimResult::metrics`](crate::result::SimResult::metrics).
    pub collect_metrics: bool,
    /// Wall-clock-time the engine's phases (event dispatch, policy
    /// decision, energy update) into
    /// [`SimResult::profile`](crate::result::SimResult::profile).
    /// Perturbs nothing but costs two clock reads per phase.
    pub profile: bool,
    /// Deterministic fault injection for this run. `None` (or an empty
    /// plan) takes the exact fault-free code path.
    pub fault_plan: Option<FaultPlan>,
    /// Abort budgets for stuck or runaway runs. `None` keeps the
    /// infallible `simulate*` entry points panic-free; a set watchdog
    /// requires the `try_simulate*` paths to surface the typed
    /// [`SimError`](crate::result::SimError).
    pub watchdog: Option<Watchdog>,
}

impl SystemConfig {
    /// Creates a configuration with the paper's defaults: storage starts
    /// full, misses abort, restart quantum 0.1 time units, no sampling,
    /// no trace.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive.
    pub fn new(cpu: CpuModel, storage: StorageSpec, horizon: SimDuration) -> Self {
        assert!(horizon.is_positive(), "horizon must be positive");
        SystemConfig {
            cpu,
            storage,
            initial_level: None,
            miss_policy: MissPolicy::default(),
            restart_quantum: 0.1,
            sample_interval: None,
            horizon,
            collect_trace: false,
            collect_metrics: false,
            profile: false,
            fault_plan: None,
            watchdog: None,
        }
    }

    /// Sets the initial stored energy.
    ///
    /// # Panics
    ///
    /// Panics if `level` is negative or exceeds the capacity.
    pub fn with_initial_level(mut self, level: f64) -> Self {
        assert!(
            level >= 0.0 && level <= self.storage.capacity(),
            "initial level outside [0, capacity]"
        );
        self.initial_level = Some(level);
        self
    }

    /// Sets the deadline-miss policy.
    pub fn with_miss_policy(mut self, policy: MissPolicy) -> Self {
        self.miss_policy = policy;
        self
    }

    /// Sets the depletion restart quantum (time units).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is not finite and positive.
    pub fn with_restart_quantum(mut self, quantum: f64) -> Self {
        assert!(
            quantum.is_finite() && quantum > 0.0,
            "restart quantum must be positive"
        );
        self.restart_quantum = quantum;
        self
    }

    /// Enables storage-level sampling on the given grid.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn with_sample_interval(mut self, interval: SimDuration) -> Self {
        assert!(interval.is_positive(), "sample interval must be positive");
        self.sample_interval = Some(interval);
        self
    }

    /// Enables full event tracing.
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Enables the metrics snapshot in the result.
    pub fn with_metrics(mut self) -> Self {
        self.collect_metrics = true;
        self
    }

    /// Enables wall-clock phase profiling in the result.
    pub fn with_profiling(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Attaches a deterministic fault plan. An empty plan is normalized
    /// to `None` so fault-free runs stay on the exact fault-free path.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = (!plan.is_empty()).then_some(plan);
        self
    }

    /// Arms the engine watchdog. An empty watchdog is normalized to
    /// `None`.
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = (!watchdog.is_empty()).then_some(watchdog);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_cpu::presets;

    fn cfg() -> SystemConfig {
        SystemConfig::new(
            presets::xscale(),
            StorageSpec::ideal(100.0),
            SimDuration::from_whole_units(1_000),
        )
    }

    #[test]
    fn defaults_match_paper_setup() {
        let c = cfg();
        assert_eq!(c.initial_level, None);
        assert_eq!(c.miss_policy, MissPolicy::AbortAtDeadline);
        assert_eq!(c.restart_quantum, 0.1);
        assert!(!c.collect_trace);
        assert!(!c.collect_metrics, "observability is off by default");
        assert!(!c.profile, "profiling is off by default");
    }

    #[test]
    fn builder_methods_chain() {
        let c = cfg()
            .with_initial_level(50.0)
            .with_miss_policy(MissPolicy::RunToCompletion)
            .with_restart_quantum(0.5)
            .with_sample_interval(SimDuration::from_whole_units(10))
            .with_trace()
            .with_metrics()
            .with_profiling();
        assert_eq!(c.initial_level, Some(50.0));
        assert_eq!(c.miss_policy, MissPolicy::RunToCompletion);
        assert_eq!(c.restart_quantum, 0.5);
        assert!(c.collect_trace);
        assert!(c.collect_metrics);
        assert!(c.profile);
    }

    #[test]
    fn empty_fault_plan_and_watchdog_normalize_to_none() {
        let c = cfg()
            .with_fault_plan(FaultPlan::default())
            .with_watchdog(Watchdog::default());
        assert_eq!(c.fault_plan, None);
        assert_eq!(c.watchdog, None);

        let armed = cfg().with_watchdog(Watchdog::with_max_events(5));
        assert_eq!(armed.watchdog, Some(Watchdog::with_max_events(5)));
    }

    #[test]
    #[should_panic(expected = "initial level")]
    fn initial_level_validated() {
        let _ = cfg().with_initial_level(1e9);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        let _ = SystemConfig::new(
            presets::xscale(),
            StorageSpec::ideal(1.0),
            SimDuration::ZERO,
        );
    }
}
