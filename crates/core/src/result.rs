//! Results of a closed-loop run.

use harvest_obs::{MetricsSnapshot, PhaseProfile};
use harvest_sim::time::{SimDuration, SimTime};
use harvest_task::job::JobId;
use serde::{Deserialize, Serialize};

use crate::trace::TraceEvent;

/// Typed abort reasons for a simulation run.
///
/// Produced by the fallible entry points
/// ([`try_simulate_shared`](crate::system::try_simulate_shared),
/// [`try_simulate_in`](crate::system::try_simulate_in)) when the
/// engine's [`Watchdog`](harvest_sim::engine::Watchdog) trips. The
/// infallible `simulate*` paths never see these: a run without a
/// watchdog cannot abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimError {
    /// The trial exhausted its total event budget.
    WatchdogEventBudget {
        /// Simulation time at which the budget ran out.
        at: SimTime,
        /// Events handled when the watchdog fired.
        events: u64,
    },
    /// The trial fired too many events at one instant without the clock
    /// advancing (a livelocked model).
    WatchdogNoProgress {
        /// The stuck instant.
        at: SimTime,
        /// Events handled when the watchdog fired.
        events: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::WatchdogEventBudget { at, events } => write!(
                f,
                "watchdog: event budget exhausted after {events} events at t={at}"
            ),
            SimError::WatchdogNoProgress { at, events } => write!(
                f,
                "watchdog: no progress (clock stuck at t={at} after {events} events)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Final status of a released job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Finished at the given instant, no later than its deadline.
    Completed {
        /// Completion instant.
        at: SimTime,
    },
    /// Reached its deadline unfinished. Under
    /// [`MissPolicy::RunToCompletion`](crate::config::MissPolicy) the
    /// eventual completion instant is recorded too.
    Missed {
        /// Completion instant if the job was allowed to finish late.
        completed: Option<SimTime>,
    },
    /// Still unfinished at the horizon with its deadline beyond it —
    /// excluded from the miss-rate denominator.
    Pending,
}

/// Per-job record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job's id (its index in the result's `jobs` vector).
    pub id: JobId,
    /// Index of the releasing task in the task set.
    pub task_index: usize,
    /// Release instant.
    pub arrival: SimTime,
    /// Absolute deadline.
    pub deadline: SimTime,
    /// Worst-case execution time at full speed.
    pub wcet: f64,
    /// Final status.
    pub outcome: JobOutcome,
    /// Energy delivered to the CPU while this job executed.
    pub energy: f64,
}

impl JobRecord {
    /// `true` if the job completed by its deadline.
    pub fn met_deadline(&self) -> bool {
        matches!(self.outcome, JobOutcome::Completed { .. })
    }

    /// `true` if the job missed its deadline.
    pub fn missed_deadline(&self) -> bool {
        matches!(self.outcome, JobOutcome::Missed { .. })
    }
}

/// Energy bookkeeping over the whole run, all in the workspace's energy
/// units (power × time-unit).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyAccounting {
    /// Ambient energy offered by the source over the horizon.
    pub harvested: f64,
    /// Energy delivered to the CPU (running and idle loads).
    pub consumed: f64,
    /// Harvested energy discarded because the storage was full
    /// (paper §3.2: "the incoming harvested energy overflows the storage
    /// and is discarded").
    pub overflow: f64,
    /// Load energy the storage could not supply (bounded by event
    /// rounding; a healthy run keeps this negligible).
    pub deficit: f64,
    /// Stored energy at `t = 0`.
    pub initial_level: f64,
    /// Stored energy at the horizon.
    pub final_level: f64,
}

/// Everything measured during one closed-loop simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Name of the scheduling policy that produced this run.
    pub scheduler: String,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// One record per released job, in release order.
    pub jobs: Vec<JobRecord>,
    /// Energy bookkeeping.
    pub energy: EnergyAccounting,
    /// Number of DVFS frequency switches performed.
    pub switches: u64,
    /// Scheduler events handled by the discrete-event engine over the
    /// run — the denominator of end-to-end events/sec throughput.
    pub events: u64,
    /// Number of domain trace events emitted, counted even when full
    /// trace collection is off (the sweep fast path).
    pub trace_events: u64,
    /// Per-variant totals of the emitted trace events, indexed by
    /// [`TraceEvent::kind_index`]; maintained even when the full trace
    /// is not retained.
    pub trace_kind_counts: Vec<u64>,
    /// Busy time per DVFS level (same order as the CPU's level table).
    pub level_time: Vec<f64>,
    /// Time with no job executing (includes stalls).
    pub idle_time: f64,
    /// Portion of idle time spent stalled on an empty store.
    pub stall_time: f64,
    /// Storage-level samples `(t, EC(t))` if sampling was enabled.
    pub samples: Vec<(SimTime, f64)>,
    /// Scheduling trace if collection was enabled.
    pub trace: Vec<(SimTime, TraceEvent)>,
    /// Frozen metrics registry (queue, cursor, scheduler, storage, and
    /// policy counters) if `collect_metrics` was set.
    pub metrics: Option<MetricsSnapshot>,
    /// Wall-clock phase timings (event dispatch, policy decision, energy
    /// update) if profiling was enabled.
    pub profile: Option<PhaseProfile>,
}

impl SimResult {
    /// Number of released jobs.
    pub fn released(&self) -> usize {
        self.jobs.len()
    }

    /// Number of jobs that completed by their deadline.
    pub fn completed_in_time(&self) -> usize {
        self.jobs.iter().filter(|j| j.met_deadline()).count()
    }

    /// Number of jobs that missed their deadline.
    pub fn missed(&self) -> usize {
        self.jobs.iter().filter(|j| j.missed_deadline()).count()
    }

    /// Jobs whose fate was decided within the horizon (completed in time
    /// or missed).
    pub fn decided(&self) -> usize {
        self.completed_in_time() + self.missed()
    }

    /// Deadline miss rate: missed / decided. Zero when nothing was
    /// decided.
    pub fn miss_rate(&self) -> f64 {
        let decided = self.decided();
        if decided == 0 {
            0.0
        } else {
            self.missed() as f64 / decided as f64
        }
    }

    /// `true` if every decided job met its deadline.
    pub fn is_miss_free(&self) -> bool {
        self.missed() == 0
    }

    /// Total busy time across all levels.
    pub fn busy_time(&self) -> f64 {
        self.level_time.iter().sum()
    }

    /// Storage-level samples normalized by `capacity` (the paper
    /// normalizes remaining energy before averaging across capacities,
    /// §5.2).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    pub fn normalized_samples(&self, capacity: f64) -> Vec<(SimTime, f64)> {
        assert!(capacity > 0.0, "capacity must be positive");
        self.samples
            .iter()
            .map(|&(t, e)| (t, e / capacity))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, outcome: JobOutcome) -> JobRecord {
        JobRecord {
            id: JobId(id),
            task_index: 0,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_whole_units(10),
            wcet: 1.0,
            outcome,
            energy: 0.0,
        }
    }

    fn result(jobs: Vec<JobRecord>) -> SimResult {
        SimResult {
            scheduler: "test".into(),
            horizon: SimDuration::from_whole_units(100),
            jobs,
            energy: EnergyAccounting::default(),
            switches: 0,
            events: 0,
            trace_events: 0,
            trace_kind_counts: vec![0; TraceEvent::KIND_COUNT],
            level_time: vec![1.0, 2.0],
            idle_time: 97.0,
            stall_time: 0.0,
            samples: vec![(SimTime::ZERO, 50.0)],
            trace: vec![],
            metrics: None,
            profile: None,
        }
    }

    #[test]
    fn miss_rate_counts_decided_only() {
        let r = result(vec![
            record(
                0,
                JobOutcome::Completed {
                    at: SimTime::from_whole_units(5),
                },
            ),
            record(1, JobOutcome::Missed { completed: None }),
            record(2, JobOutcome::Pending),
        ]);
        assert_eq!(r.released(), 3);
        assert_eq!(r.decided(), 2);
        assert_eq!(r.missed(), 1);
        assert!((r.miss_rate() - 0.5).abs() < 1e-12);
        assert!(!r.is_miss_free());
    }

    #[test]
    fn empty_run_has_zero_miss_rate() {
        let r = result(vec![]);
        assert_eq!(r.miss_rate(), 0.0);
        assert!(r.is_miss_free());
    }

    #[test]
    fn busy_time_sums_levels() {
        let r = result(vec![]);
        assert_eq!(r.busy_time(), 3.0);
    }

    #[test]
    fn normalization_divides_by_capacity() {
        let r = result(vec![]);
        let n = r.normalized_samples(100.0);
        assert_eq!(n[0].1, 0.5);
    }

    #[test]
    fn outcome_predicates() {
        assert!(record(0, JobOutcome::Completed { at: SimTime::ZERO }).met_deadline());
        assert!(record(0, JobOutcome::Missed { completed: None }).missed_deadline());
        let pending = record(0, JobOutcome::Pending);
        assert!(!pending.met_deadline() && !pending.missed_deadline());
    }
}
