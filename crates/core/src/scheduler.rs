//! The scheduling-policy interface.
//!
//! The system simulator selects the earliest-deadline ready job (EDF,
//! paper §3.3) and asks the policy *how* to run it: now or later, and at
//! which DVFS level. Policies are pure functions of the presented
//! context, re-consulted at every scheduling event (arrival, completion,
//! wake-up, depletion, review point), mirroring the per-iteration
//! recalculation of the paper's Fig. 4 loop.

use std::cell::Cell;

use harvest_cpu::{CpuModel, LevelIndex};
use harvest_energy::predictor::EnergyPredictor;
use harvest_energy::storage::Storage;
use harvest_sim::time::SimTime;
use harvest_task::job::Job;

/// Everything a policy may consult when deciding.
///
/// Build one per decision instant with [`SchedContext::new`]: the context
/// memoizes the `ÊS(t, D)` profile lookup, so the several
/// [`Self::run_time_at_power`] calls a policy makes while comparing DVFS
/// levels share a single predictor query.
pub struct SchedContext<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The earliest-deadline ready job (the one EDF will run).
    pub job: &'a Job,
    /// The processor model.
    pub cpu: &'a CpuModel,
    /// The energy storage (current level and static parameters).
    pub storage: &'a Storage,
    /// The harvested-energy predictor `ÊS`.
    pub predictor: &'a dyn EnergyPredictor,
    /// Memoized `EC(t) + ÊS(t, D)` — valid for the lifetime of the
    /// context because `now`, the job, and the storage level are fixed
    /// at a decision instant.
    es_cache: Cell<Option<f64>>,
    /// `available_energy_to_deadline` calls answered by the memo.
    es_hits: Cell<u64>,
    /// `available_energy_to_deadline` calls that queried the predictor.
    es_misses: Cell<u64>,
}

impl<'a> SchedContext<'a> {
    /// Builds the context for one decision instant.
    pub fn new(
        now: SimTime,
        job: &'a Job,
        cpu: &'a CpuModel,
        storage: &'a Storage,
        predictor: &'a dyn EnergyPredictor,
    ) -> Self {
        SchedContext {
            now,
            job,
            cpu,
            storage,
            predictor,
            es_cache: Cell::new(None),
            es_hits: Cell::new(0),
            es_misses: Cell::new(0),
        }
    }

    /// `(memo hits, predictor queries)` of the `ÊS(t, D)` cache over
    /// this context's lifetime. Read by the simulator after the policy
    /// decides, to aggregate memo effectiveness across a run.
    pub fn memo_stats(&self) -> (u64, u64) {
        (self.es_hits.get(), self.es_misses.get())
    }
}

impl std::fmt::Debug for SchedContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedContext")
            .field("now", &self.now)
            .field("job", &self.job.id())
            .field("storage_level", &self.storage.level())
            .finish()
    }
}

impl SchedContext<'_> {
    /// Predicted total energy available between now and the head job's
    /// deadline: `EC(t) + ÊS(t, D)` (the numerator of paper eq. 5/9).
    pub fn available_energy_to_deadline(&self) -> f64 {
        if let Some(cached) = self.es_cache.get() {
            self.es_hits.set(self.es_hits.get() + 1);
            return cached;
        }
        let e = self.storage.level()
            + self
                .predictor
                .predict_energy(self.now, self.job.absolute_deadline());
        self.es_cache.set(Some(e));
        self.es_misses.set(self.es_misses.get() + 1);
        e
    }

    /// System running time `sr_n` at power `P_n` before the available
    /// energy is exhausted (paper eq. 5): `(EC + ÊS) / P_n`. Infinite
    /// for unbounded storage.
    pub fn run_time_at_power(&self, power: f64) -> f64 {
        assert!(power > 0.0, "power must be positive");
        if self.storage.spec().is_infinite() {
            return f64::INFINITY;
        }
        self.available_energy_to_deadline() / power
    }

    /// Latest start `max(now, D − sr)` for a given runnable time `sr`
    /// (paper eq. 7/8, with the current instant in place of the arrival
    /// time when re-evaluating mid-flight).
    pub fn latest_start(&self, run_time: f64) -> SimTime {
        if run_time.is_infinite() {
            return self.now;
        }
        let d = self.job.absolute_deadline();
        let start = SimTime::from_units(d.as_units() - run_time);
        start.max(self.now)
    }
}

/// What to do with the head job until the next scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep the processor idle at least until the given instant
    /// (strictly after `now`), then re-evaluate.
    IdleUntil(SimTime),
    /// Execute the head job at `level`.
    Run {
        /// DVFS level to run at.
        level: LevelIndex,
        /// Re-evaluate at this instant even if nothing else happens
        /// (EA-DVFS uses it for the `s2` full-speed switch point).
        review: Option<SimTime>,
    },
}

impl Decision {
    /// Convenience: run at the given level with no review point.
    pub fn run(level: LevelIndex) -> Self {
        Decision::Run {
            level,
            review: None,
        }
    }
}

/// A DVFS-aware real-time scheduling policy.
///
/// `Send` is a supertrait so boxed policies can live inside per-worker
/// simulation pools that sweep drivers move onto worker threads;
/// policies are plain data, so this costs implementors nothing.
pub trait Scheduler: Send {
    /// Decides how to treat the head job. Must be deterministic in the
    /// context.
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision;

    /// Short policy name for reports.
    fn name(&self) -> &str;

    /// Policy-internal observability counters, as `(name, count)` pairs
    /// published into the run's metrics snapshot under a
    /// `policy.<name>` prefix. The default is empty; stateless policies
    /// need not implement it. Counting must never influence decisions.
    fn metrics(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Restores the policy to its just-constructed state so a pooled
    /// run context can reuse one instance across trials. A reset policy
    /// must behave bit-identically to a freshly built one — including
    /// its [`Self::metrics`] counters, which the pinned pooled-parity
    /// tests compare. Stateless policies keep the empty default;
    /// configuration (e.g. a fixed slowdown level) is not run state and
    /// must survive.
    fn reset(&mut self) {}
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        (**self).decide(ctx)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        (**self).metrics()
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

/// Lend a policy to a run without giving up ownership: the pooled entry
/// points take `&mut dyn Scheduler` and drive it through this impl, so a
/// `SimPool` can keep one boxed instance per policy alive across trials.
impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        (**self).decide(ctx)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        (**self).metrics()
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use harvest_energy::predictor::OraclePredictor;
    use harvest_energy::storage::{Storage, StorageSpec};
    use harvest_sim::piecewise::PiecewiseConstant;
    use harvest_task::job::{Job, JobId};

    use super::*;

    /// Bundles owned state for building a [`SchedContext`] in tests.
    pub struct CtxFixture {
        pub cpu: CpuModel,
        pub storage: Storage,
        pub predictor: OraclePredictor,
        pub job: Job,
        pub now: SimTime,
    }

    impl CtxFixture {
        pub fn new(cpu: CpuModel, level: f64, capacity: f64, harvest: f64, job: Job) -> Self {
            CtxFixture {
                cpu,
                storage: Storage::new(StorageSpec::ideal(capacity), level),
                predictor: OraclePredictor::new(PiecewiseConstant::constant(harvest)),
                job,
                now: SimTime::ZERO,
            }
        }

        pub fn at(mut self, now: SimTime) -> Self {
            self.now = now;
            self
        }

        pub fn ctx(&self) -> SchedContext<'_> {
            SchedContext::new(
                self.now,
                &self.job,
                &self.cpu,
                &self.storage,
                &self.predictor,
            )
        }
    }

    pub fn job(deadline_units: i64, wcet: f64) -> Job {
        Job::new(
            JobId(0),
            0,
            SimTime::ZERO,
            SimTime::from_whole_units(deadline_units),
            wcet,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::*;
    use super::*;
    use harvest_cpu::presets;

    #[test]
    fn available_energy_combines_store_and_prediction() {
        // §2 numbers: EC=24, Ps=0.5, deadline 16 → 24 + 8 = 32.
        let f = CtxFixture::new(presets::two_speed_example(), 24.0, 1e6, 0.5, job(16, 4.0));
        assert_eq!(f.ctx().available_energy_to_deadline(), 32.0);
    }

    #[test]
    fn memo_stats_count_hits_and_misses() {
        let f = CtxFixture::new(presets::two_speed_example(), 24.0, 1e6, 0.5, job(16, 4.0));
        let ctx = f.ctx();
        assert_eq!(ctx.memo_stats(), (0, 0));
        ctx.available_energy_to_deadline();
        assert_eq!(ctx.memo_stats(), (0, 1), "first call queries the predictor");
        ctx.available_energy_to_deadline();
        ctx.run_time_at_power(8.0);
        assert_eq!(ctx.memo_stats(), (2, 1), "repeat calls hit the memo");
    }

    #[test]
    fn run_time_matches_eq5() {
        let f = CtxFixture::new(presets::two_speed_example(), 24.0, 1e6, 0.5, job(16, 4.0));
        // sr_max = 32 / 8 = 4; sr_low = 32 / (8/3) = 12.
        assert_eq!(f.ctx().run_time_at_power(8.0), 4.0);
        assert_eq!(f.ctx().run_time_at_power(8.0 / 3.0), 12.0);
    }

    #[test]
    fn latest_start_clamps_to_now() {
        let f = CtxFixture::new(presets::two_speed_example(), 24.0, 1e6, 0.5, job(16, 4.0));
        // s2 = max(0, 16 − 4) = 12; s1 = max(0, 16 − 12) = 4.
        assert_eq!(f.ctx().latest_start(4.0), SimTime::from_whole_units(12));
        assert_eq!(f.ctx().latest_start(12.0), SimTime::from_whole_units(4));
        assert_eq!(f.ctx().latest_start(100.0), SimTime::ZERO);
    }

    #[test]
    fn infinite_storage_gives_infinite_run_time() {
        let mut f = CtxFixture::new(presets::two_speed_example(), 0.0, 1.0, 0.5, job(16, 4.0));
        f.storage = Storage::full(harvest_energy::storage::StorageSpec::infinite());
        let ctx = f.ctx();
        assert_eq!(ctx.run_time_at_power(8.0), f64::INFINITY);
        assert_eq!(ctx.latest_start(f64::INFINITY), SimTime::ZERO);
    }
}
