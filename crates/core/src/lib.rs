//! # harvest-core — EA-DVFS scheduling and the closed-loop simulator
//!
//! The primary contribution of the reproduced paper ("Energy Aware
//! Dynamic Voltage and Frequency Selection for Real-Time Systems with
//! Energy Harvesting", DATE 2008) plus its baselines:
//!
//! * [`scheduler`] — the policy interface ([`Scheduler`], [`Decision`],
//!   [`SchedContext`]) exposing the paper's eq. 5–9 quantities.
//! * [`policies`] — [`EaDvfsScheduler`] (§4), [`LazyScheduler`] (LSA,
//!   refs \[7\]\[10\]), [`EdfScheduler`], and the §4.3
//!   [`GreedyStretchScheduler`] strawman.
//! * [`system`] — [`system::simulate`]: the exact event-driven
//!   closed-loop simulator binding source, storage, CPU, tasks, policy,
//!   and predictor.
//! * [`config`] / [`result`] / [`trace`] — run configuration, measured
//!   results, and the scheduling trace vocabulary.
//!
//! # Examples
//!
//! Reproduce the paper's §2 motivational example end to end:
//!
//! ```
//! use harvest_core::config::SystemConfig;
//! use harvest_core::policies::{EaDvfsScheduler, LazyScheduler};
//! use harvest_core::system::simulate;
//! use harvest_cpu::presets;
//! use harvest_energy::predictor::OraclePredictor;
//! use harvest_energy::storage::StorageSpec;
//! use harvest_sim::piecewise::PiecewiseConstant;
//! use harvest_sim::time::{SimDuration, SimTime};
//! use harvest_task::task::Task;
//! use harvest_task::taskset::TaskSet;
//!
//! let tasks = TaskSet::new(vec![
//!     Task::once(SimTime::ZERO, SimDuration::from_whole_units(16), 4.0),
//!     Task::once(SimTime::from_whole_units(5), SimDuration::from_whole_units(16), 1.5),
//! ]);
//! let profile = PiecewiseConstant::constant(0.5);
//! let config = SystemConfig::new(
//!     presets::two_speed_example(),
//!     StorageSpec::ideal(1_000.0),
//!     SimDuration::from_whole_units(30),
//! )
//! .with_initial_level(24.0);
//!
//! let lsa = simulate(
//!     config.clone(),
//!     &tasks,
//!     profile.clone(),
//!     Box::new(LazyScheduler::new()),
//!     Box::new(OraclePredictor::new(profile.clone())),
//! );
//! let ea = simulate(
//!     config,
//!     &tasks,
//!     profile.clone(),
//!     Box::new(EaDvfsScheduler::new()),
//!     Box::new(OraclePredictor::new(profile)),
//! );
//! assert_eq!(lsa.missed(), 1); // LSA starves τ2
//! assert_eq!(ea.missed(), 0);  // EA-DVFS stretches τ1 and saves τ2
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod config;
pub mod fault;
pub mod policies;
pub mod result;
pub mod scheduler;
pub mod system;
pub mod trace;

pub use batch::{
    simulate_batch_grouped_in, simulate_batch_in, BatchContext, BatchGrouping, BatchLane,
};
pub use config::{MissPolicy, SystemConfig};
pub use fault::{FaultPlan, LevelLockoutWindow};
pub use policies::{
    EaDvfsScheduler, EdfScheduler, GreedyStretchScheduler, LazyScheduler, StaticSlowdownScheduler,
};
pub use result::{EnergyAccounting, JobOutcome, JobRecord, SimError, SimResult};
pub use scheduler::{Decision, SchedContext, Scheduler};
pub use system::{
    simulate, simulate_in, simulate_shared, try_simulate_in, try_simulate_in_taped,
    try_simulate_shared, PoolStats, RunContext,
};
pub use trace::TraceEvent;
