//! Ablation benchmarks for the design choices called out in DESIGN.md.
//!
//! Each ablation prints its quality metric (miss counts / rates) once at
//! setup — the interesting result — and then times the configuration so
//! regressions in either dimension are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harvest_core::config::SystemConfig;
use harvest_core::system::simulate;
use harvest_cpu::PowerLaw;
use harvest_energy::predictor::OraclePredictor;
use harvest_energy::storage::StorageSpec;
use harvest_exp::scenario::{PaperScenario, PolicyKind, PredictorKind};
use harvest_sim::time::SimDuration;
use std::hint::black_box;

/// §4.3 cap: full EA-DVFS vs. greedy stretching.
fn ablation_s2_cap(c: &mut Criterion) {
    let scenario = PaperScenario::new(0.6, 300.0);
    for policy in [PolicyKind::EaDvfs, PolicyKind::GreedyStretch] {
        let missed: usize = (0..10).map(|s| scenario.run(policy, s).missed()).sum();
        eprintln!(
            "[ablation_s2_cap] {}: {missed} misses over 10 seeds",
            policy.name()
        );
    }
    let mut g = c.benchmark_group("ablation_s2_cap");
    g.sample_size(10);
    for policy in [PolicyKind::EaDvfs, PolicyKind::GreedyStretch] {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &p| b.iter(|| black_box(scenario.run(p, black_box(3)))),
        );
    }
    g.finish();
}

/// Oracle vs. online predictors driving EA-DVFS.
fn ablation_predictor(c: &mut Criterion) {
    let kinds = [
        PredictorKind::Oracle,
        PredictorKind::Ewma,
        PredictorKind::MovingAverage { window: 200 },
        PredictorKind::Persistence,
    ];
    for kind in kinds {
        let scenario = PaperScenario::new(0.4, 80.0).with_predictor(kind);
        let rate: f64 = (0..10)
            .map(|s| scenario.run(PolicyKind::EaDvfs, s).miss_rate())
            .sum::<f64>()
            / 10.0;
        eprintln!(
            "[ablation_predictor] {}: mean miss rate {rate:.4}",
            kind.name()
        );
    }
    let mut g = c.benchmark_group("ablation_predictor");
    g.sample_size(10);
    for kind in kinds {
        let scenario = PaperScenario::new(0.4, 80.0).with_predictor(kind);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| black_box(scenario.run(PolicyKind::EaDvfs, black_box(3))))
        });
    }
    g.finish();
}

/// Ideal vs. lossy storage (charge efficiency / leakage).
fn ablation_storage_efficiency(c: &mut Criterion) {
    let variants: [(&str, StorageSpec); 3] = [
        ("ideal", StorageSpec::ideal(80.0)),
        (
            "eta90",
            StorageSpec::ideal(80.0).with_charge_efficiency(0.9),
        ),
        ("leaky", StorageSpec::ideal(80.0).with_leakage_power(0.05)),
    ];
    let base = PaperScenario::new(0.4, 80.0);
    let run_with = |spec: StorageSpec, seed: u64| {
        let profile = base.profile(seed);
        let tasks = base.taskset(seed, &profile);
        let config = SystemConfig::new(base.cpu(), spec, SimDuration::from_whole_units(10_000));
        simulate(
            config,
            &tasks,
            profile.clone(),
            PolicyKind::EaDvfs.build(),
            Box::new(OraclePredictor::new(profile)),
        )
    };
    for (name, spec) in variants {
        let rate: f64 = (0..10).map(|s| run_with(spec, s).miss_rate()).sum::<f64>() / 10.0;
        eprintln!("[ablation_storage] {name}: mean miss rate {rate:.4}");
    }
    let mut g = c.benchmark_group("ablation_storage_efficiency");
    g.sample_size(10);
    for (name, spec) in variants {
        g.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, &spec| {
            b.iter(|| black_box(run_with(spec, black_box(3))))
        });
    }
    g.finish();
}

/// Number of DVFS levels: 2 / 5 / 16 cubic-law levels vs. the XScale
/// table.
fn ablation_speed_levels(c: &mut Criterion) {
    let base = PaperScenario::new(0.4, 80.0);
    let run_with = |levels: usize, seed: u64| {
        let profile = base.profile(seed);
        let tasks = base.taskset(seed, &profile);
        let cpu = PowerLaw::cubic(3.2)
            .build_model(1000.0, levels)
            .expect("valid law");
        let config = SystemConfig::new(
            cpu,
            StorageSpec::ideal(80.0),
            SimDuration::from_whole_units(10_000),
        );
        simulate(
            config,
            &tasks,
            profile.clone(),
            PolicyKind::EaDvfs.build(),
            Box::new(OraclePredictor::new(profile)),
        )
    };
    for levels in [2usize, 5, 16] {
        let rate: f64 = (0..10)
            .map(|s| run_with(levels, s).miss_rate())
            .sum::<f64>()
            / 10.0;
        eprintln!("[ablation_levels] {levels} levels: mean miss rate {rate:.4}");
    }
    let mut g = c.benchmark_group("ablation_speed_levels");
    g.sample_size(10);
    for levels in [2usize, 5, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, &n| {
            b.iter(|| black_box(run_with(n, black_box(3))))
        });
    }
    g.finish();
}

/// Systematic prediction bias: how fast does EA-DVFS degrade when the
/// energy forecast is optimistic or pessimistic?
fn ablation_prediction_bias(c: &mut Criterion) {
    let factors = [0.5, 0.8, 1.0, 1.25, 2.0];
    for &factor in &factors {
        let scenario =
            PaperScenario::new(0.4, 80.0).with_predictor(PredictorKind::Biased { factor });
        let rate: f64 = (0..10)
            .map(|s| scenario.run(PolicyKind::EaDvfs, s).miss_rate())
            .sum::<f64>()
            / 10.0;
        eprintln!("[ablation_bias] x{factor}: mean miss rate {rate:.4}");
    }
    let mut g = c.benchmark_group("ablation_prediction_bias");
    g.sample_size(10);
    for &factor in &factors {
        let scenario =
            PaperScenario::new(0.4, 80.0).with_predictor(PredictorKind::Biased { factor });
        g.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, _| {
            b.iter(|| black_box(scenario.run(PolicyKind::EaDvfs, black_box(3))))
        });
    }
    g.finish();
}

/// Early completions (actual < WCET): how much slack each policy turns
/// into fewer misses.
fn ablation_execution_time(c: &mut Criterion) {
    use harvest_task::generator::WorkloadSpec;
    let base = PaperScenario::new(0.6, 150.0);
    let run_with = |bcet: f64, policy: PolicyKind, seed: u64| {
        let profile = base.profile(seed);
        let spec = WorkloadSpec::paper(5, 0.6, profile.domain_mean(), 3.2).with_bcet_ratio(bcet);
        let tasks = spec.generate(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
        let config = SystemConfig::new(
            base.cpu(),
            StorageSpec::ideal(150.0),
            SimDuration::from_whole_units(10_000),
        );
        simulate(
            config,
            &tasks,
            profile.clone(),
            policy.build(),
            Box::new(OraclePredictor::new(profile)),
        )
    };
    for bcet in [1.0, 0.75, 0.5, 0.25] {
        for policy in [PolicyKind::Lsa, PolicyKind::EaDvfs] {
            let rate: f64 = (0..10)
                .map(|s| run_with(bcet, policy, s).miss_rate())
                .sum::<f64>()
                / 10.0;
            eprintln!(
                "[ablation_bcet] bcet {bcet} {}: mean miss rate {rate:.4}",
                policy.name()
            );
        }
    }
    let mut g = c.benchmark_group("ablation_execution_time");
    g.sample_size(10);
    for bcet in [1.0, 0.5] {
        g.bench_with_input(BenchmarkId::from_parameter(bcet), &bcet, |b, &bcet| {
            b.iter(|| black_box(run_with(bcet, PolicyKind::EaDvfs, black_box(3))))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_s2_cap,
    ablation_predictor,
    ablation_storage_efficiency,
    ablation_speed_levels,
    ablation_prediction_bias,
    ablation_execution_time
);
criterion_main!(ablations);
