//! End-to-end simulator throughput: whole-run scheduler events/sec.
//!
//! The canonical workload is a 10-task, U = 0.8, C = 200 scarce-energy
//! scenario — small store and high utilization keep the scheduler busy
//! with misses, stalls, and DVFS re-evaluations, so the run exercises
//! every hot path (event queue, EDF queue, storage evolution, policy
//! decisions) rather than idling through an energy-rich schedule.
//!
//! Running this bench writes `BENCH_PR3.json` at the workspace root:
//! raw medians, scheduler events/sec per policy (observability off and
//! on), the prefab-sharing gain, and — when `BENCH_PR2.json` is
//! present — the metrics-off overhead of the instrumented simulator
//! against the pre-observability medians for the shared `sim_*` ids
//! (the tentpole's "<2% events/sec regression with null sinks" check).
//!
//! Pass `--smoke` for a 1-sample sanity run (CI): every benchmark
//! executes once and no report is written.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use criterion::{BenchmarkId, Criterion};
use harvest_core::system::simulate_shared;
use harvest_exp::scenario::{PaperScenario, PolicyKind, TrialPrefab};
use harvest_sim::event::EventQueue;
use harvest_sim::time::SimTime;
use harvest_task::job::{Job, JobId};
use harvest_task::queue::EdfQueue;
use serde::Value;

/// Policies whose events/sec the report tracks.
const POLICIES: [PolicyKind; 3] = [PolicyKind::Edf, PolicyKind::Lsa, PolicyKind::EaDvfs];

const SEED: u64 = 0;

/// The canonical scarce-energy scenario: 10 tasks at U = 0.8 against a
/// 200-unit store.
fn scenario() -> PaperScenario {
    let mut s = PaperScenario::new(0.8, 200.0);
    s.num_tasks = 10;
    s
}

/// Same ids as the kernel bench, so BENCH_PR2 can be compared against
/// BENCH_PR1 directly: the indexed 4-ary heap vs the old
/// `BinaryHeap` + `HashSet` queue.
fn event_queue_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    // Scatter times deterministically.
                    let t = SimTime::from_ticks(((i * 2_654_435_761) % (n * 7)) as i64);
                    q.schedule(t, i);
                }
                let mut sum = 0usize;
                while let Some((_, v)) = q.pop() {
                    sum += v;
                }
                black_box(sum)
            })
        });
    }
    // Cancellation-heavy pattern the old queue served with tombstones:
    // schedule two, cancel one, in waves.
    g.bench_function("schedule_cancel_pop/10000", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut survivors = 0usize;
            for wave in 0..100u64 {
                // Each wave's window sits above everything popped so
                // far, so scheduling never goes behind current time.
                let ids: Vec<_> = (0..100u64)
                    .map(|i| {
                        let t =
                            SimTime::from_ticks((wave * 1000 + (i * 2_654_435_761) % 613) as i64);
                        q.schedule(t, i as usize)
                    })
                    .collect();
                for id in ids.iter().step_by(2) {
                    q.cancel(*id);
                }
                for _ in 0..25 {
                    if q.pop().is_some() {
                        survivors += 1;
                    }
                }
            }
            while q.pop().is_some() {
                survivors += 1;
            }
            black_box(survivors)
        })
    });
    g.finish();
}

/// Same id as the kernel bench: the slab-backed indexed heap vs the
/// old `BTreeMap` ready queue.
fn edf_queue_ops(c: &mut Criterion) {
    c.bench_function("edf_queue_churn_100", |b| {
        b.iter(|| {
            let mut q = EdfQueue::new();
            for i in 0..100u64 {
                let d = SimTime::from_whole_units(((i * 37) % 100 + 1) as i64);
                q.push(Job::new(JobId(i), 0, SimTime::ZERO, d, 1.0));
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

/// Whole-simulation runs on the canonical scenario, one per policy,
/// with the trial prefab built outside the timed region (the sweep
/// fast path).
fn whole_sim(c: &mut Criterion) {
    let s = scenario();
    let prefab = s.prefab(SEED);
    let mut g = c.benchmark_group("sim_10task_scarce");
    for policy in POLICIES {
        g.bench_function(BenchmarkId::from_parameter(policy.name()), |b| {
            b.iter(|| black_box(s.run_prefab(policy, &prefab)))
        });
    }
    g.finish();
}

/// One run with metrics collection and phase profiling enabled (the
/// always-on counters are frozen into a snapshot; the trace stays off,
/// as in sweeps). The gap between this and `sim_10task_scarce`
/// bounds what turning observability *on* costs.
fn run_observed(s: &PaperScenario, policy: PolicyKind, prefab: &TrialPrefab) -> u64 {
    let config = s.config().with_metrics().with_profiling();
    let predictor = s.predictor.build_shared(&prefab.profile);
    simulate_shared(
        config,
        Arc::clone(&prefab.tasks),
        Arc::clone(&prefab.profile),
        policy.build(),
        predictor,
    )
    .events
}

/// Whole-simulation runs with the metrics snapshot + phase profiler
/// enabled, one per policy.
fn whole_sim_observed(c: &mut Criterion) {
    let s = scenario();
    let prefab = s.prefab(SEED);
    let mut g = c.benchmark_group("sim_observed");
    for policy in POLICIES {
        g.bench_function(BenchmarkId::from_parameter(policy.name()), |b| {
            b.iter(|| black_box(run_observed(&s, policy, &prefab)))
        });
    }
    g.finish();
}

/// What prefab sharing saves: a full trial with per-run profile and
/// task-set reconstruction vs the shared-prefab path.
fn prefab_sharing(c: &mut Criterion) {
    let s = scenario();
    let prefab = s.prefab(SEED);
    let mut g = c.benchmark_group("trial");
    g.bench_function("rebuild_inputs_per_run", |b| {
        b.iter(|| black_box(s.run(PolicyKind::EaDvfs, SEED)))
    });
    g.bench_function("shared_prefab", |b| {
        b.iter(|| black_box(s.run_prefab(PolicyKind::EaDvfs, &prefab)))
    });
    g.finish();
}

fn write_report(path: &std::path::Path, pr2: Option<&Value>) {
    let results = criterion::all_results();
    let entries: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Map(vec![
                ("id".to_string(), Value::Str(r.id.clone())),
                ("ns_per_iter".to_string(), Value::F64(r.ns_per_iter)),
                (
                    "iters_per_sample".to_string(),
                    Value::U64(r.iters_per_sample),
                ),
                ("samples".to_string(), Value::U64(r.samples as u64)),
            ])
        })
        .collect();
    let find = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.ns_per_iter);

    // Scheduler events/sec: the run is deterministic, so the event
    // count comes from one untimed replay per policy.
    let s = scenario();
    let prefab = s.prefab(SEED);
    let events_per_sec: Vec<Value> = POLICIES
        .iter()
        .filter_map(|&policy| {
            let ns = find(&format!("sim_10task_scarce/{}", policy.name()))?;
            let events = s.run_prefab(policy, &prefab).events;
            Some(Value::Map(vec![
                ("policy".to_string(), Value::Str(policy.name().to_string())),
                ("events_per_run".to_string(), Value::U64(events)),
                ("ns_per_run".to_string(), Value::F64(ns)),
                (
                    "events_per_sec".to_string(),
                    Value::F64(events as f64 / (ns * 1e-9)),
                ),
            ]))
        })
        .collect();

    // Null-sink overhead: the same `sim_10task_scarce/*` ids measured
    // before the observability layer landed (BENCH_PR2.json) vs now,
    // with metrics off. Ratios near 1.0 mean the always-on counters are
    // free; the acceptance bar is < 1.02 (2% events/sec regression).
    let pr2_find = |id: &str| -> Option<f64> {
        let Value::Seq(rows) = pr2?.get("results")? else {
            return None;
        };
        rows.iter()
            .find(|r| r.get("id").and_then(Value::as_str) == Some(id))
            .and_then(|r| r.get("ns_per_iter"))
            .and_then(Value::as_f64)
    };
    let overhead_off: Vec<Value> = POLICIES
        .iter()
        .filter_map(|&policy| {
            let id = format!("sim_10task_scarce/{}", policy.name());
            let (before, after) = (pr2_find(&id)?, find(&id)?);
            Some(Value::Map(vec![
                ("id".to_string(), Value::Str(id)),
                ("pr2_ns_per_iter".to_string(), Value::F64(before)),
                ("pr3_ns_per_iter".to_string(), Value::F64(after)),
                ("overhead_ratio".to_string(), Value::F64(after / before)),
            ]))
        })
        .collect();

    // Cost of turning observability *on* (metrics snapshot + phase
    // profiler), measured within this build: sim_observed vs
    // sim_10task_scarce per policy.
    let overhead_on: Vec<Value> = POLICIES
        .iter()
        .filter_map(|&policy| {
            let off = find(&format!("sim_10task_scarce/{}", policy.name()))?;
            let on = find(&format!("sim_observed/{}", policy.name()))?;
            Some(Value::Map(vec![
                ("policy".to_string(), Value::Str(policy.name().to_string())),
                ("off_ns".to_string(), Value::F64(off)),
                ("on_ns".to_string(), Value::F64(on)),
                ("overhead_ratio".to_string(), Value::F64(on / off)),
            ]))
        })
        .collect();
    let prefab_gain: Vec<Value> = match (
        find("trial/rebuild_inputs_per_run"),
        find("trial/shared_prefab"),
    ) {
        (Some(rebuild), Some(shared)) => vec![Value::Map(vec![
            ("rebuild_ns".to_string(), Value::F64(rebuild)),
            ("shared_ns".to_string(), Value::F64(shared)),
            ("speedup".to_string(), Value::F64(rebuild / shared)),
        ])],
        _ => Vec::new(),
    };

    let doc = Value::Map(vec![
        ("bench".to_string(), Value::Str("throughput".to_string())),
        (
            "command".to_string(),
            Value::Str("cargo bench -p harvest-bench --bench throughput".to_string()),
        ),
        (
            "scenario".to_string(),
            Value::Map(vec![
                ("num_tasks".to_string(), Value::U64(10)),
                ("utilization".to_string(), Value::F64(0.8)),
                ("capacity".to_string(), Value::F64(200.0)),
                ("horizon_units".to_string(), Value::U64(10_000)),
                ("seed".to_string(), Value::U64(SEED)),
            ]),
        ),
        ("results".to_string(), Value::Seq(entries)),
        ("events_per_sec".to_string(), Value::Seq(events_per_sec)),
        (
            "metrics_off_overhead_vs_pr2".to_string(),
            Value::Seq(overhead_off),
        ),
        (
            "observability_on_overhead".to_string(),
            Value::Seq(overhead_on),
        ),
        ("prefab_sharing".to_string(), Value::Seq(prefab_gain)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serializes");
    std::fs::write(path, json + "\n").expect("report written");
    println!("wrote {}", path.display());
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut c = Criterion::default();
    if smoke {
        // One sample, minimal budget: proves every bench still runs
        // without spending CI minutes on statistics.
        c.sample_size(1);
        c.measurement_time(Duration::from_millis(1));
    }
    event_queue_throughput(&mut c);
    edf_queue_ops(&mut c);
    whole_sim(&mut c);
    whole_sim_observed(&mut c);
    prefab_sharing(&mut c);

    if smoke {
        println!("smoke mode: all benches executed; no report written");
        return;
    }
    // `cargo bench` runs with the package as cwd; anchor the report at
    // the workspace root so it lands in the same place from anywhere.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let pr2 = std::fs::read_to_string(root.join("BENCH_PR2.json"))
        .ok()
        .and_then(|raw| serde_json::from_str::<Value>(&raw).ok());
    write_report(&root.join("BENCH_PR3.json"), pr2.as_ref());
}
