//! Simulation-kernel micro-benchmarks: the primitives every run leans
//! on (event queue, piecewise integration, storage evolution, EDF
//! queue, workload generation, source sampling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harvest_energy::source::sample_profile;
use harvest_energy::sources::SolarModel;
use harvest_energy::storage::StorageSpec;
use harvest_sim::event::EventQueue;
use harvest_sim::piecewise::{Extension, PiecewiseConstant};
use harvest_sim::time::{SimDuration, SimTime};
use harvest_task::generator::WorkloadSpec;
use harvest_task::job::{Job, JobId};
use harvest_task::queue::EdfQueue;
use std::hint::black_box;

fn event_queue_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    // Scatter times deterministically.
                    let t = SimTime::from_ticks(((i * 2_654_435_761) % (n * 7)) as i64);
                    q.schedule(t, i);
                }
                let mut sum = 0usize;
                while let Some((_, v)) = q.pop() {
                    sum += v;
                }
                black_box(sum)
            })
        });
    }
    g.finish();
}

fn piecewise_ops(c: &mut Criterion) {
    let profile = sample_profile(
        &mut SolarModel::paper(),
        SimTime::ZERO,
        SimDuration::from_whole_units(10_000),
        SimDuration::from_whole_units(1),
        7,
    )
    .expect("valid grid");
    let mut g = c.benchmark_group("piecewise");
    g.bench_function("integrate_full_10k", |b| {
        b.iter(|| {
            black_box(profile.integrate(
                black_box(SimTime::ZERO),
                black_box(SimTime::from_whole_units(10_000)),
            ))
        })
    });
    g.bench_function("value_at", |b| {
        b.iter(|| black_box(profile.value_at(black_box(SimTime::from_whole_units(4_321)))))
    });
    g.bench_function("integrate_window_100", |b| {
        b.iter(|| {
            black_box(profile.integrate(
                black_box(SimTime::from_whole_units(5_000)),
                black_box(SimTime::from_whole_units(5_100)),
            ))
        })
    });
    g.finish();
}

fn storage_advance(c: &mut Criterion) {
    let profile = PiecewiseConstant::from_samples(
        SimTime::ZERO,
        SimDuration::from_whole_units(1),
        (0..1_000).map(|i| (i % 5) as f64).collect(),
        Extension::Hold,
    )
    .expect("valid grid");
    let spec = StorageSpec::ideal(100.0);
    c.bench_function("storage_advance_1k_segments", |b| {
        b.iter(|| {
            black_box(spec.advance(
                black_box(50.0),
                &profile,
                SimTime::ZERO,
                SimTime::from_whole_units(1_000),
                black_box(1.5),
            ))
        })
    });
    c.bench_function("storage_first_crossing", |b| {
        b.iter(|| {
            black_box(spec.first_crossing(
                black_box(50.0),
                0.0,
                &profile,
                SimTime::ZERO,
                SimTime::from_whole_units(1_000),
                black_box(3.2),
            ))
        })
    });
}

fn edf_queue_ops(c: &mut Criterion) {
    c.bench_function("edf_queue_churn_100", |b| {
        b.iter(|| {
            let mut q = EdfQueue::new();
            for i in 0..100u64 {
                let d = SimTime::from_whole_units(((i * 37) % 100 + 1) as i64);
                q.push(Job::new(JobId(i), 0, SimTime::ZERO, d, 1.0));
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn workload_generation(c: &mut Criterion) {
    let spec = WorkloadSpec::paper(5, 0.4, 2.0, 3.2);
    c.bench_function("workload_generate_5tasks", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(spec.generate(black_box(seed)))
        })
    });
}

fn source_sampling(c: &mut Criterion) {
    c.bench_function("solar_sample_10k_units", |b| {
        b.iter(|| {
            black_box(
                sample_profile(
                    &mut SolarModel::paper(),
                    SimTime::ZERO,
                    SimDuration::from_whole_units(10_000),
                    SimDuration::from_whole_units(1),
                    black_box(9),
                )
                .expect("valid grid"),
            )
        })
    });
}

criterion_group!(
    kernel,
    event_queue_throughput,
    piecewise_ops,
    storage_advance,
    edf_queue_ops,
    workload_generation,
    source_sampling
);
criterion_main!(kernel);
