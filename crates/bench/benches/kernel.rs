//! Simulation-kernel micro-benchmarks: the primitives every run leans
//! on (event queue, piecewise integration, storage evolution, EDF
//! queue, workload generation, source sampling), plus before/after
//! pairs for the prefix-sum energy algebra (`*_naive` baselines vs the
//! `O(log n)` / cursor paths) and a Fig. 5-style end-to-end sweep.
//!
//! Running this bench writes `BENCH_PR1.json` at the workspace root:
//! every measured id with its median ns/iter, plus derived speedups of
//! the fast paths over their baselines.

use criterion::{criterion_group, BenchmarkId, Criterion};
use harvest_energy::source::sample_profile;
use harvest_energy::sources::SolarModel;
use harvest_energy::storage::StorageSpec;
use harvest_exp::figures::miss_rate_figure;
use harvest_exp::scenario::PolicyKind;
use harvest_sim::event::EventQueue;
use harvest_sim::piecewise::{Extension, PiecewiseConstant};
use harvest_sim::time::{SimDuration, SimTime};
use harvest_task::generator::WorkloadSpec;
use harvest_task::job::{Job, JobId};
use harvest_task::queue::EdfQueue;
use serde::Value;
use std::hint::black_box;

fn event_queue_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    // Scatter times deterministically.
                    let t = SimTime::from_ticks(((i * 2_654_435_761) % (n * 7)) as i64);
                    q.schedule(t, i);
                }
                let mut sum = 0usize;
                while let Some((_, v)) = q.pop() {
                    sum += v;
                }
                black_box(sum)
            })
        });
    }
    g.finish();
}

fn piecewise_ops(c: &mut Criterion) {
    let profile = sample_profile(
        &mut SolarModel::paper(),
        SimTime::ZERO,
        SimDuration::from_whole_units(10_000),
        SimDuration::from_whole_units(1),
        7,
    )
    .expect("valid grid");
    let mut g = c.benchmark_group("piecewise");
    g.bench_function("integrate_full_10k", |b| {
        b.iter(|| {
            black_box(profile.integrate(
                black_box(SimTime::ZERO),
                black_box(SimTime::from_whole_units(10_000)),
            ))
        })
    });
    g.bench_function("value_at", |b| {
        b.iter(|| black_box(profile.value_at(black_box(SimTime::from_whole_units(4_321)))))
    });
    g.bench_function("integrate_window_100", |b| {
        b.iter(|| {
            black_box(profile.integrate(
                black_box(SimTime::from_whole_units(5_000)),
                black_box(SimTime::from_whole_units(5_100)),
            ))
        })
    });
    g.finish();
}

fn storage_advance(c: &mut Criterion) {
    let profile = PiecewiseConstant::from_samples(
        SimTime::ZERO,
        SimDuration::from_whole_units(1),
        (0..1_000).map(|i| (i % 5) as f64).collect(),
        Extension::Hold,
    )
    .expect("valid grid");
    let spec = StorageSpec::ideal(100.0);
    c.bench_function("storage_advance_1k_segments", |b| {
        b.iter(|| {
            black_box(spec.advance(
                black_box(50.0),
                &profile,
                SimTime::ZERO,
                SimTime::from_whole_units(1_000),
                black_box(1.5),
            ))
        })
    });
    c.bench_function("storage_first_crossing", |b| {
        b.iter(|| {
            black_box(spec.first_crossing(
                black_box(50.0),
                0.0,
                &profile,
                SimTime::ZERO,
                SimTime::from_whole_units(1_000),
                black_box(3.2),
            ))
        })
    });
}

fn edf_queue_ops(c: &mut Criterion) {
    c.bench_function("edf_queue_churn_100", |b| {
        b.iter(|| {
            let mut q = EdfQueue::new();
            for i in 0..100u64 {
                let d = SimTime::from_whole_units(((i * 37) % 100 + 1) as i64);
                q.push(Job::new(JobId(i), 0, SimTime::ZERO, d, 1.0));
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn workload_generation(c: &mut Criterion) {
    let spec = WorkloadSpec::paper(5, 0.4, 2.0, 3.2);
    c.bench_function("workload_generate_5tasks", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(spec.generate(black_box(seed)))
        })
    });
}

fn source_sampling(c: &mut Criterion) {
    c.bench_function("solar_sample_10k_units", |b| {
        b.iter(|| {
            black_box(
                sample_profile(
                    &mut SolarModel::paper(),
                    SimTime::ZERO,
                    SimDuration::from_whole_units(10_000),
                    SimDuration::from_whole_units(1),
                    black_box(9),
                )
                .expect("valid grid"),
            )
        })
    });
}

/// A realistic 10 000-breakpoint profile (one solar sample per unit).
fn solar_10k() -> PiecewiseConstant {
    sample_profile(
        &mut SolarModel::paper(),
        SimTime::ZERO,
        SimDuration::from_whole_units(10_000),
        SimDuration::from_whole_units(1),
        7,
    )
    .expect("valid grid")
}

/// Before/after pairs on a 10k-breakpoint profile: cold `integrate`
/// (prefix difference vs segment walk), a monotone sweep of windowed
/// queries (cursor vs per-query naive walk), and the accumulation
/// crossing solve (tiered solver vs whole-window clamped scan).
fn energy_algebra_10k(c: &mut Criterion) {
    let profile = solar_10k();
    let u = SimTime::from_whole_units;
    let mut g = c.benchmark_group("energy_algebra_10k");

    g.bench_function("integrate_window_4k/prefix", |b| {
        b.iter(|| black_box(profile.integrate(black_box(u(3_000)), black_box(u(7_000)))))
    });
    g.bench_function("integrate_window_4k/naive", |b| {
        b.iter(|| black_box(profile.integrate_naive(black_box(u(3_000)), black_box(u(7_000)))))
    });

    // 1 000 forward-marching 10-unit windows, the access pattern of a
    // closed-loop run (time only moves forward).
    g.bench_function("monotone_sweep_1000q/cursor", |b| {
        b.iter(|| {
            let mut cur = profile.cursor();
            let mut acc = 0.0;
            for i in 0..1_000i64 {
                acc += profile.integrate_with(&mut cur, u(10 * i), u(10 * i + 10));
            }
            black_box(acc)
        })
    });
    g.bench_function("monotone_sweep_1000q/cold_prefix", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1_000i64 {
                acc += profile.integrate(u(10 * i), u(10 * i + 10));
            }
            black_box(acc)
        })
    });
    g.bench_function("monotone_sweep_1000q/naive", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1_000i64 {
                acc += profile.integrate_naive(u(10 * i), u(10 * i + 10));
            }
            black_box(acc)
        })
    });

    // Depletion solve spanning ~8k segments: the net rate is strictly
    // negative (offset below the profile minimum), so the tiered solver
    // takes the monotone bisection path.
    let offset = -(profile.domain_max() + 0.5);
    let cap = 150_000.0;
    g.bench_function("crossing_monotone/fast", |b| {
        b.iter(|| {
            black_box(profile.first_accumulation_crossing(
                SimTime::ZERO,
                u(10_000),
                black_box(cap),
                black_box(offset),
                cap,
                0.0,
            ))
        })
    });
    g.bench_function("crossing_monotone/naive", |b| {
        b.iter(|| {
            black_box(profile.first_accumulation_crossing_naive(
                SimTime::ZERO,
                u(10_000),
                black_box(cap),
                black_box(offset),
                cap,
                0.0,
            ))
        })
    });
    g.finish();
}

/// A Fig. 5-style end-to-end sweep: miss-rate curves over the full
/// capacity grid, fanned out through the work-stealing parallel map.
fn figure_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_sweep");
    g.sample_size(3);
    g.bench_function("miss_rate_2policies_1trial", |b| {
        b.iter(|| {
            black_box(miss_rate_figure(
                0.4,
                &[PolicyKind::EaDvfs, PolicyKind::Edf],
                1,
                2,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    kernel,
    event_queue_throughput,
    piecewise_ops,
    storage_advance,
    edf_queue_ops,
    workload_generation,
    source_sampling,
    energy_algebra_10k,
    figure_sweep
);

/// Fast-vs-baseline pairs surfaced as `speedups` in the JSON report.
const SPEEDUP_PAIRS: [(&str, &str, &str); 3] = [
    (
        "integrate_window_4k",
        "energy_algebra_10k/integrate_window_4k/naive",
        "energy_algebra_10k/integrate_window_4k/prefix",
    ),
    (
        "monotone_sweep_1000q",
        "energy_algebra_10k/monotone_sweep_1000q/naive",
        "energy_algebra_10k/monotone_sweep_1000q/cursor",
    ),
    (
        "crossing_monotone",
        "energy_algebra_10k/crossing_monotone/naive",
        "energy_algebra_10k/crossing_monotone/fast",
    ),
];

fn write_report(path: &std::path::Path) {
    let results = criterion::all_results();
    let entries: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Map(vec![
                ("id".to_string(), Value::Str(r.id.clone())),
                ("ns_per_iter".to_string(), Value::F64(r.ns_per_iter)),
                (
                    "iters_per_sample".to_string(),
                    Value::U64(r.iters_per_sample),
                ),
                ("samples".to_string(), Value::U64(r.samples as u64)),
            ])
        })
        .collect();
    let find = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.ns_per_iter);
    let speedups: Vec<Value> = SPEEDUP_PAIRS
        .iter()
        .filter_map(|&(name, baseline, fast)| {
            let (b, f) = (find(baseline)?, find(fast)?);
            Some(Value::Map(vec![
                ("name".to_string(), Value::Str(name.to_string())),
                ("baseline_id".to_string(), Value::Str(baseline.to_string())),
                ("fast_id".to_string(), Value::Str(fast.to_string())),
                ("speedup".to_string(), Value::F64(b / f)),
            ]))
        })
        .collect();
    let doc = Value::Map(vec![
        ("bench".to_string(), Value::Str("kernel".to_string())),
        (
            "command".to_string(),
            Value::Str("cargo bench -p harvest-bench --bench kernel".to_string()),
        ),
        ("results".to_string(), Value::Seq(entries)),
        ("speedups".to_string(), Value::Seq(speedups)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serializes");
    std::fs::write(path, json + "\n").expect("report written");
    println!("wrote {}", path.display());
}

fn main() {
    kernel();
    // `cargo bench` runs with the package as cwd; anchor the report at
    // the workspace root so it lands in the same place from anywhere.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    write_report(&root.join("BENCH_PR1.json"));
}
