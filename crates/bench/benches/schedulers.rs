//! Scheduler micro-benchmarks: per-decision latency of each policy and
//! full 10 000-unit closed-loop runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harvest_core::policies::{
    EaDvfsScheduler, EdfScheduler, GreedyStretchScheduler, LazyScheduler,
};
use harvest_core::scheduler::{SchedContext, Scheduler};
use harvest_cpu::presets;
use harvest_energy::predictor::OraclePredictor;
use harvest_energy::storage::{Storage, StorageSpec};
use harvest_exp::scenario::{PaperScenario, PolicyKind};
use harvest_sim::piecewise::PiecewiseConstant;
use harvest_sim::time::SimTime;
use harvest_task::job::{Job, JobId};
use std::hint::black_box;

fn decision_latency(c: &mut Criterion) {
    let cpu = presets::xscale();
    let storage = Storage::new(StorageSpec::ideal(500.0), 120.0);
    let predictor = OraclePredictor::new(PiecewiseConstant::constant(2.0));
    let job = Job::new(
        JobId(0),
        0,
        SimTime::ZERO,
        SimTime::from_whole_units(40),
        6.0,
    );
    let ctx = SchedContext::new(
        SimTime::from_whole_units(3),
        &job,
        &cpu,
        &storage,
        &predictor,
    );
    let mut g = c.benchmark_group("decision_latency");
    let mut bench = |name: &str, mut s: Box<dyn Scheduler>| {
        g.bench_function(name, |b| b.iter(|| black_box(s.decide(black_box(&ctx)))));
    };
    bench("edf", Box::new(EdfScheduler::new()));
    bench("lsa", Box::new(LazyScheduler::new()));
    bench("ea_dvfs", Box::new(EaDvfsScheduler::new()));
    bench("greedy_stretch", Box::new(GreedyStretchScheduler::new()));
    g.finish();
}

fn full_run_10k(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_run_10k_units");
    g.sample_size(10);
    for policy in [
        PolicyKind::Edf,
        PolicyKind::Lsa,
        PolicyKind::EaDvfs,
        PolicyKind::GreedyStretch,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &p| {
                let scenario = PaperScenario::new(0.4, 500.0);
                b.iter(|| black_box(scenario.run(p, black_box(1))))
            },
        );
    }
    g.finish();
}

fn run_scaling_with_tasks(c: &mut Criterion) {
    let mut g = c.benchmark_group("ea_dvfs_run_vs_taskcount");
    g.sample_size(10);
    for n in [5usize, 10, 20, 40] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut scenario = PaperScenario::new(0.5, 500.0);
            scenario.num_tasks = n;
            b.iter(|| black_box(scenario.run(PolicyKind::EaDvfs, 1)))
        });
    }
    g.finish();
}

criterion_group!(
    schedulers,
    decision_latency,
    full_run_10k,
    run_scaling_with_tasks
);
criterion_main!(schedulers);
