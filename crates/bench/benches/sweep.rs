//! Sweep-scale execution: what pooled run contexts and the result cache
//! buy per trial.
//!
//! The profile is a **sweep-grain microcell**: the §5.1 scarce-energy
//! setting (10 tasks, U = 0.8, C = 200) cut to a 50-unit horizon. That
//! is the grain at which sweep overheads matter — a capacity-search or
//! figure grid runs thousands of such cells, and at this size the
//! per-run fixed cost (event-queue and ready-queue allocation, metrics
//! registry, policy boxing) is a large fraction of the trial. Pooling
//! removes exactly that fixed cost, so the pooled speedup shrinks as
//! cells grow; the microcell isolates what is being measured instead of
//! burying it under simulation work.
//!
//! Seven modes are timed as `sweep/trials_*`:
//!
//! * `cold` — the pre-PR4 fast path: shared prefab, but fresh queues,
//!   registry, and boxed policy every run.
//! * `pooled` — `run_prefab_in` through one reused [`SimPool`], with
//!   the release tape stripped: this is the PR 4 reference path the
//!   tape and batch speedups are measured against.
//! * `tape` — the same pooled run with the prefab's release tape:
//!   every `Arrival` is a cursor bump instead of a heap pop, nothing
//!   else changes.
//! * `cached` — a warm [`SweepCache`] hit: open, read, and parse one
//!   JSON file per probe.
//! * `store_warm` — a warm [`PackStore`] hit: one fingerprint map
//!   lookup plus an in-memory record decode, zero syscalls.
//! * `batched_b{4,8,16}` — B sibling trials (seeds 0..B) per iteration
//!   through the structure-of-arrays engine
//!   (`run_prefabs_batched_in`), tapes on; per-trial time is the
//!   iteration time divided by B.
//! * `policy_lockstep` — all four policy arms of one seed per
//!   iteration through the lockstep batch (`run_arms_batched_in`);
//!   per-trial time is the iteration time divided by the arm count.
//!
//! Three write-path modes time the store's durability levels as
//! `sweep/store_append_{none,batch,record}`: one decided-record append
//! per iteration with no barriers, with a barrier every 64 appends (the
//! default `--durability batch` checkpoint grain), and with a sync
//! inside every append (`--durability record`). The report carries the
//! batch-vs-none and record-vs-none overhead ratios, so the cost of the
//! default durability is a number, not a feeling. The warm store itself
//! is opened at `Durability::None` — the exact `--durability none` warm
//! path the PR 7 `store_warm` regression gate pins.
//!
//! Running this bench writes `BENCH_PR10.json` at the workspace root:
//! raw medians, trials/sec per mode with the pooled-vs-cold,
//! cached-vs-cold, store-warm-vs-cached, and batched-vs-pooled (at
//! B = 8) speedups, heap-allocation counts per trial (cold vs pooled vs
//! batched, via a counting global allocator), and the per-worker
//! allocation/item counts of one sharded pooled mini-sweep — workers
//! after the first few trials should allocate only what the results
//! themselves need, and (with the start-line barrier in
//! `parallel_map_with`) **every** worker must execute a non-zero share;
//! the report asserts both that spread and the warm-store ≥ 5× rate
//! over the per-file cache.
//!
//! Two further modes time the campaign-telemetry layer as
//! `sweep/figure_warm_{off,traced}`: one fully warm miss-rate figure
//! through the instrumented driver, first with the disabled
//! [`CampaignTelemetry`] bundle (the exact code path the pinned figure
//! tests run), then with a live span collector and a progress stream
//! writing to a sink. The report carries both rates and their ratio, so
//! the cost of switching telemetry on — and any creep in the off
//! path — is a number, not a feeling.
//!
//! Pass `--smoke` for a 1-sample sanity run (CI): every benchmark
//! executes once and no report is written. Pass
//! `--check-regression PATH` to compare the fresh `trials_per_sec`
//! medians against a committed baseline report (e.g. `BENCH_PR7.json`)
//! instead of writing one: any mode that drops more than 20% prints a
//! `REGRESSION` line and the process exits 1 (a failing CI step; modes
//! the baseline predates are skipped).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use criterion::Criterion;
use harvest_exp::cache::{SweepCache, TrialSummary};
use harvest_exp::figures::miss_rate_figure_instrumented;
use harvest_exp::parallel::parallel_map_with;
use harvest_exp::scenario::{PaperScenario, PolicyKind, SimPool, TrialPrefab};
use harvest_exp::store::{PackStore, TrialStore};
use harvest_exp::telemetry::CampaignTelemetry;
use harvest_obs::io::{Durability, RealIo, RetryPolicy};
use harvest_obs::span::SpanCollector;
use harvest_obs::ProgressReporter;
use serde::Value;

/// Counts every heap allocation, globally and per thread, then defers
/// to the system allocator. The per-thread counter is `const`-initialized
/// so reading it can never itself allocate.
struct CountingAlloc;

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// This thread's allocation count so far.
fn thread_allocs() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const SEED: u64 = 0;
const POLICY: PolicyKind = PolicyKind::EaDvfs;

/// The sweep-grain microcell (see module docs).
fn scenario() -> PaperScenario {
    let mut s = PaperScenario::new(0.8, 200.0);
    s.num_tasks = 10;
    s.horizon_units = 50;
    s
}

/// A throwaway cache directory, pre-warmed with the microcell's result.
fn warm_cache(s: &PaperScenario, prefab: &TrialPrefab) -> (SweepCache, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("harvest-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = SweepCache::new(&dir).expect("temp cache dir");
    let summary = TrialSummary::of(&s.run_prefab(POLICY, prefab));
    cache.put(&s.trial_key(POLICY, SEED), &summary);
    (cache, dir)
}

/// A throwaway pack store, pre-warmed with the microcell's result. The
/// store is opened at [`Durability::None`] — warm probes never touch a
/// barrier, so this is the exact `--durability none` read path the
/// `store_warm` regression gate pins.
fn warm_store(s: &PaperScenario, prefab: &TrialPrefab) -> (PackStore, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("harvest-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = PackStore::open_with(
        &dir,
        RealIo::shared(),
        RetryPolicy::default(),
        Durability::None,
    )
    .expect("temp store dir");
    let summary = TrialSummary::of(&s.run_prefab(POLICY, prefab));
    harvest_exp::store::TrialStore::store(&store, &s.trial_key(POLICY, SEED), &summary);
    (store, dir)
}

/// `sweep/trials_{cold,pooled,tape,cached,store_warm}`: one microcell
/// trial per iteration under each execution mode. `heap_prefab` is the
/// tape-stripped twin of `prefab` — cold and pooled run it so they stay
/// the PR 4 reference paths.
fn trial_modes(
    c: &mut Criterion,
    s: &PaperScenario,
    prefab: &TrialPrefab,
    heap_prefab: &TrialPrefab,
    cache: &SweepCache,
    store: &PackStore,
) {
    let mut g = c.benchmark_group("sweep");
    g.bench_function("trials_cold", |b| {
        b.iter(|| black_box(s.run_prefab(POLICY, heap_prefab)))
    });
    let mut pool = SimPool::new();
    g.bench_function("trials_pooled", |b| {
        b.iter(|| black_box(s.run_prefab_in(&mut pool, POLICY, heap_prefab)))
    });
    let mut pool = SimPool::new();
    g.bench_function("trials_tape", |b| {
        b.iter(|| black_box(s.run_prefab_in(&mut pool, POLICY, prefab)))
    });
    let mut pool = SimPool::new();
    g.bench_function("trials_cached", |b| {
        b.iter(|| black_box(s.run_summary(&mut pool, Some(cache), POLICY, prefab)))
    });
    let mut pool = SimPool::new();
    g.bench_function("trials_store_warm", |b| {
        b.iter(|| black_box(s.run_summary(&mut pool, Some(store), POLICY, prefab)))
    });
    g.finish();
}

/// The miss-rate-figure utilization the telemetry benches sweep.
const FIGURE_UTIL: f64 = 0.8;
/// The policies the telemetry benches sweep (same pair as `exp sweep`).
const FIGURE_POLICIES: [PolicyKind; 2] = [PolicyKind::Lsa, PolicyKind::EaDvfs];

/// A throwaway pack store pre-warmed with every cell of the telemetry
/// benches' miss-rate figure (one cold instrumented run fills it).
fn warm_figure_store() -> (PackStore, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("harvest-bench-figure-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = PackStore::open(&dir).expect("temp figure store dir");
    miss_rate_figure_instrumented(
        Some(&store),
        FIGURE_UTIL,
        &FIGURE_POLICIES,
        1,
        1,
        1,
        &CampaignTelemetry::off(),
    );
    (store, dir)
}

/// `sweep/figure_warm_{off,traced}`: one fully warm miss-rate figure
/// per iteration through the instrumented driver — first with the
/// disabled telemetry bundle, then with a live span collector plus a
/// progress stream into an IO sink (fresh observers per iteration, so
/// the collector cannot grow without bound across samples).
fn figure_telemetry_modes(c: &mut Criterion, store: &PackStore) {
    let mut g = c.benchmark_group("sweep");
    g.bench_function("figure_warm_off", |b| {
        b.iter(|| {
            black_box(miss_rate_figure_instrumented(
                Some(store as &dyn TrialStore),
                FIGURE_UTIL,
                &FIGURE_POLICIES,
                1,
                1,
                1,
                &CampaignTelemetry::off(),
            ))
        })
    });
    g.bench_function("figure_warm_traced", |b| {
        b.iter(|| {
            let telemetry = CampaignTelemetry {
                spans: Some(SpanCollector::shared()),
                progress: Some(std::sync::Arc::new(ProgressReporter::new(
                    Some(Box::new(std::io::sink())),
                    false,
                ))),
                flight: None,
            };
            black_box(miss_rate_figure_instrumented(
                Some(store as &dyn TrialStore),
                FIGURE_UTIL,
                &FIGURE_POLICIES,
                1,
                1,
                1,
                &telemetry,
            ))
        })
    });
    g.finish();
}

/// `sweep/store_append_{none,batch,record}`: one decided-record append
/// per iteration at each durability level, each into its own throwaway
/// store. `batch` adds a barrier every 64 appends — the campaign
/// driver's checkpoint grain — and `record` syncs inside every append,
/// so the three medians bracket what `--durability` costs on the write
/// path. Returns the store directories for cleanup.
fn durability_append_modes(
    c: &mut Criterion,
    s: &PaperScenario,
    prefab: &TrialPrefab,
) -> Vec<std::path::PathBuf> {
    let key = s.trial_key(POLICY, SEED);
    let summary = TrialSummary::of(&s.run_prefab(POLICY, prefab));
    let mut dirs = Vec::new();
    let mut g = c.benchmark_group("sweep");
    for (mode, durability) in [
        ("none", Durability::None),
        ("batch", Durability::Batch),
        ("record", Durability::Record),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "harvest-bench-durability-{mode}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store =
            PackStore::open_with(&dir, RealIo::shared(), RetryPolicy::default(), durability)
                .expect("temp durability store dir");
        let mut appended = 0u64;
        g.bench_function(format!("store_append_{mode}"), |b| {
            b.iter(|| {
                TrialStore::store(&store, &key, &summary);
                appended += 1;
                if durability == Durability::Batch && appended.is_multiple_of(64) {
                    TrialStore::barrier(&store);
                }
            })
        });
        assert!(
            store.io_health().is_clean(),
            "durability bench degraded the {mode} store"
        );
        dirs.push(dir);
    }
    g.finish();
    dirs
}

/// The batch widths timed and reported.
const BATCH_WIDTHS: [usize; 3] = [4, 8, 16];

/// `sweep/trials_batched_b{4,8,16}`: one SoA pass over B sibling
/// microcell trials per iteration, all through one reused pool (the
/// batch context's slabs persist across iterations).
fn batched_modes(c: &mut Criterion, s: &PaperScenario, refs: &[&TrialPrefab]) {
    let mut g = c.benchmark_group("sweep");
    for width in BATCH_WIDTHS {
        let mut pool = SimPool::new();
        g.bench_function(format!("trials_batched_b{width}"), |b| {
            b.iter(|| black_box(s.run_prefabs_batched_in(&mut pool, POLICY, &refs[..width])))
        });
    }
    g.finish();
}

/// `sweep/trials_policy_lockstep`: every policy arm of one seed per
/// iteration through the lockstep batch — the arms replay one release
/// tape, so cross-lane instants stay synchronous far longer than
/// sibling seeds manage.
fn policy_lockstep_mode(c: &mut Criterion, s: &PaperScenario, prefab: &TrialPrefab) {
    let mut g = c.benchmark_group("sweep");
    let arms: Vec<(PolicyKind, &TrialPrefab)> =
        PolicyKind::ALL.iter().map(|&p| (p, prefab)).collect();
    let mut pool = SimPool::new();
    g.bench_function("trials_policy_lockstep", |b| {
        b.iter(|| black_box(s.run_arms_batched_in(&mut pool, &arms)))
    });
    g.finish();
}

/// Median heap allocations per trial for a run closure, measured on
/// this thread outside any timed region.
fn allocs_per_trial(mut run: impl FnMut()) -> u64 {
    // Warm up so lazy pool state does not pollute the count.
    for _ in 0..8 {
        run();
    }
    let trials = 64u64;
    let before = thread_allocs();
    for _ in 0..trials {
        run();
    }
    (thread_allocs() - before) / trials
}

/// One sharded pooled mini-sweep with per-worker accounting: each
/// worker reports how many trials it executed and how many heap
/// allocations its whole share cost (pool construction included).
fn sharded_worker_allocs(s: &PaperScenario, prefab: &TrialPrefab) -> Vec<Value> {
    struct WorkerState {
        worker: usize,
        pool: SimPool,
        start_allocs: u64,
        allocs: u64,
        items: u64,
    }
    let threads = 4;
    let (_, states) = parallel_map_with(
        0..256u32,
        threads,
        |worker| WorkerState {
            worker,
            pool: SimPool::new(),
            start_allocs: thread_allocs(),
            allocs: 0,
            items: 0,
        },
        |state, _| {
            black_box(s.run_prefab_in(&mut state.pool, POLICY, prefab));
            state.items += 1;
            state.allocs = thread_allocs() - state.start_allocs;
        },
    );
    // The start-line barrier in `run_sharded` is what guarantees this:
    // without it worker 0 historically drained all 256 items while the
    // later workers spun up into exhausted cursors. The guarantee only
    // holds when every worker can actually run concurrently — on a
    // machine with fewer cores than workers, a CPU-bound shard can
    // legitimately drain inside another worker's first scheduling
    // quantum — so the assertion is gated on core count (the
    // `parallel` unit tests pin the barrier semantics independently,
    // with blocking items that spread on any core count).
    let can_run_all_workers = std::thread::available_parallelism()
        .map(|p| p.get() >= threads)
        .unwrap_or(false);
    for w in &states {
        assert!(
            !can_run_all_workers || w.items > 0,
            "worker {} executed no items — sharded spread regressed",
            w.worker
        );
    }
    states
        .iter()
        .map(|w| {
            Value::Map(vec![
                ("worker".to_string(), Value::U64(w.worker as u64)),
                ("items".to_string(), Value::U64(w.items)),
                ("allocs".to_string(), Value::U64(w.allocs)),
                (
                    "allocs_per_item".to_string(),
                    Value::F64(w.allocs as f64 / w.items.max(1) as f64),
                ),
                ("pool_runs".to_string(), Value::U64(w.pool.stats().runs)),
            ])
        })
        .collect()
}

fn write_report(
    path: &std::path::Path,
    s: &PaperScenario,
    prefab: &TrialPrefab,
    refs: &[&TrialPrefab],
) {
    let results = criterion::all_results();
    let entries: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Map(vec![
                ("id".to_string(), Value::Str(r.id.clone())),
                ("ns_per_iter".to_string(), Value::F64(r.ns_per_iter)),
                (
                    "iters_per_sample".to_string(),
                    Value::U64(r.iters_per_sample),
                ),
                ("samples".to_string(), Value::U64(r.samples as u64)),
            ])
        })
        .collect();
    let find = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.ns_per_iter);

    let trials_per_sec = match (
        find("sweep/trials_cold"),
        find("sweep/trials_pooled"),
        find("sweep/trials_cached"),
        find("sweep/trials_store_warm"),
    ) {
        (Some(cold), Some(pooled), Some(cached), Some(store_warm)) => {
            let mut modes = vec![
                ("cold".to_string(), Value::F64(1e9 / cold)),
                ("pooled".to_string(), Value::F64(1e9 / pooled)),
                ("cached".to_string(), Value::F64(1e9 / cached)),
                ("store_warm".to_string(), Value::F64(1e9 / store_warm)),
            ];
            if let Some(tape) = find("sweep/trials_tape") {
                modes.push(("tape".to_string(), Value::F64(1e9 / tape)));
            }
            // One batched iteration simulates `width` trials, so the
            // per-trial rate is width / iteration time.
            for width in BATCH_WIDTHS {
                if let Some(ns) = find(&format!("sweep/trials_batched_b{width}")) {
                    modes.push((
                        format!("batched_b{width}"),
                        Value::F64(width as f64 * 1e9 / ns),
                    ));
                }
            }
            let arm_count = PolicyKind::ALL.len() as f64;
            if let Some(ns) = find("sweep/trials_policy_lockstep") {
                modes.push((
                    "policy_lockstep".to_string(),
                    Value::F64(arm_count * 1e9 / ns),
                ));
            }
            modes.push(("pooled_vs_cold".to_string(), Value::F64(cold / pooled)));
            modes.push(("cached_vs_cold".to_string(), Value::F64(cold / cached)));
            modes.push((
                "store_warm_vs_cached".to_string(),
                Value::F64(cached / store_warm),
            ));
            if let Some(tape) = find("sweep/trials_tape") {
                modes.push(("tape_vs_pooled".to_string(), Value::F64(pooled / tape)));
            }
            if let Some(b8) = find("sweep/trials_batched_b8") {
                modes.push((
                    "batched_vs_pooled".to_string(),
                    Value::F64(pooled / (b8 / 8.0)),
                ));
            }
            if let Some(ns) = find("sweep/trials_policy_lockstep") {
                modes.push((
                    "policy_lockstep_vs_pooled".to_string(),
                    Value::F64(pooled / (ns / arm_count)),
                ));
            }
            // The pack store's whole point: a warm probe is a map lookup
            // and an in-memory decode, not a file open/read/parse. Fail
            // the report if that edge ever collapses.
            assert!(
                cached / store_warm >= 5.0,
                "warm store must be at least 5x the per-file cache \
                 (store {store_warm:.0} ns vs cached {cached:.0} ns per trial)"
            );
            vec![Value::Map(modes)]
        }
        _ => Vec::new(),
    };

    // Campaign-telemetry accounting: the warm figure with the bundle
    // off is the exact path the pinned-figure tests take, the traced
    // mode bounds what switching spans + progress on costs per figure.
    let telemetry = match (
        find("sweep/figure_warm_off"),
        find("sweep/figure_warm_traced"),
    ) {
        (Some(off), Some(traced)) => Value::Map(vec![
            ("figure_warm_off_ns".to_string(), Value::F64(off)),
            ("figure_warm_traced_ns".to_string(), Value::F64(traced)),
            (
                "traced_overhead_ratio".to_string(),
                Value::F64(traced / off),
            ),
        ]),
        _ => Value::Null,
    };

    // Write-path durability accounting: what the default batch barriers
    // and per-record syncs cost over a barrier-free append.
    let durability = match (
        find("sweep/store_append_none"),
        find("sweep/store_append_batch"),
        find("sweep/store_append_record"),
    ) {
        (Some(none), Some(batch), Some(record)) => Value::Map(vec![
            ("append_none_ns".to_string(), Value::F64(none)),
            ("append_batch_ns".to_string(), Value::F64(batch)),
            ("append_record_ns".to_string(), Value::F64(record)),
            ("batch_overhead_ratio".to_string(), Value::F64(batch / none)),
            (
                "record_overhead_ratio".to_string(),
                Value::F64(record / none),
            ),
        ]),
        _ => Value::Null,
    };

    // Allocation accounting runs untimed, after the measurements.
    let cold_allocs = allocs_per_trial(|| {
        black_box(s.run_prefab(POLICY, prefab));
    });
    let mut pool = SimPool::new();
    let pooled_allocs = allocs_per_trial(|| {
        black_box(s.run_prefab_in(&mut pool, POLICY, prefab));
    });
    // Per-trial allocations of one B = 8 batch: the batch context keeps
    // its SoA slabs across passes, so after warmup this should be O(1)
    // slab work per pass plus only what the eight results themselves
    // need — not eight times the pooled count.
    let mut pool = SimPool::new();
    let batched_allocs = allocs_per_trial(|| {
        black_box(s.run_prefabs_batched_in(&mut pool, POLICY, &refs[..8]));
    }) / 8;
    let per_worker = sharded_worker_allocs(s, prefab);

    let doc = Value::Map(vec![
        ("bench".to_string(), Value::Str("sweep".to_string())),
        (
            "command".to_string(),
            Value::Str("cargo bench -p harvest-bench --bench sweep".to_string()),
        ),
        (
            "scenario".to_string(),
            Value::Map(vec![
                ("num_tasks".to_string(), Value::U64(10)),
                ("utilization".to_string(), Value::F64(0.8)),
                ("capacity".to_string(), Value::F64(200.0)),
                (
                    "horizon_units".to_string(),
                    Value::U64(s.horizon_units as u64),
                ),
                ("policy".to_string(), Value::Str(POLICY.name().to_string())),
                ("seed".to_string(), Value::U64(SEED)),
            ]),
        ),
        ("results".to_string(), Value::Seq(entries)),
        ("trials_per_sec".to_string(), Value::Seq(trials_per_sec)),
        ("telemetry".to_string(), telemetry),
        ("durability".to_string(), durability),
        (
            "allocations".to_string(),
            Value::Map(vec![
                ("cold_per_trial".to_string(), Value::U64(cold_allocs)),
                ("pooled_per_trial".to_string(), Value::U64(pooled_allocs)),
                (
                    "batched_b8_per_trial".to_string(),
                    Value::U64(batched_allocs),
                ),
                ("sharded_per_worker".to_string(), Value::Seq(per_worker)),
            ]),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serializes");
    std::fs::write(path, json + "\n").expect("report written");
    println!("wrote {}", path.display());
}

/// Compares the fresh medians against a committed baseline report's
/// `trials_per_sec` modes. Ratio entries (`*_vs_*`) are derived, not
/// measured, so only the raw per-mode rates are compared. Returns
/// `true` when any mode dropped more than 20%.
fn check_regression(baseline: &std::path::Path) -> bool {
    // Cargo runs benches with the package dir as cwd; a relative
    // baseline path is meant against the workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline_path = &root.join(baseline);
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", baseline_path.display()));
    let doc: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("baseline {} does not parse: {e}", baseline_path.display()));
    let baseline_modes = doc
        .get("trials_per_sec")
        .and_then(Value::as_array)
        .and_then(|seq| seq.first())
        .and_then(Value::as_object)
        .cloned()
        .unwrap_or_default();
    let results = criterion::all_results();
    let fresh_rate = |mode: &str| -> Option<f64> {
        let ns = results
            .iter()
            .find(|r| r.id == format!("sweep/trials_{mode}"))
            .map(|r| r.ns_per_iter)?;
        // One batched iteration simulates `width` trials; one lockstep
        // iteration simulates every policy arm.
        let per_iter = match mode {
            "policy_lockstep" => PolicyKind::ALL.len() as f64,
            _ => mode
                .strip_prefix("batched_b")
                .and_then(|w| w.parse::<f64>().ok())
                .unwrap_or(1.0),
        };
        Some(per_iter * 1e9 / ns)
    };
    let mut regressed = false;
    for (mode, value) in &baseline_modes {
        if mode.contains("_vs_") {
            continue;
        }
        let (Some(base), Some(now)) = (value.as_f64(), fresh_rate(mode)) else {
            continue;
        };
        let ratio = now / base;
        let flag = ratio < 0.8;
        println!(
            "regression-check {mode}: baseline {base:.0}/s now {now:.0}/s ({:+.1}%){}",
            (ratio - 1.0) * 100.0,
            if flag { "  << REGRESSION" } else { "" }
        );
        if flag {
            regressed = true;
        }
    }
    regressed
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args
        .iter()
        .position(|a| a == "--check-regression")
        .map(|i| {
            std::path::PathBuf::from(
                args.get(i + 1)
                    .expect("--check-regression expects a baseline report path"),
            )
        });
    let mut c = Criterion::default();
    if smoke {
        c.sample_size(1);
        c.measurement_time(Duration::from_millis(1));
    }
    let s = scenario();
    let prefab = s.prefab(SEED);
    let heap_prefab = prefab.clone().without_tape();
    let siblings: Vec<TrialPrefab> = (0..16).map(|seed| s.prefab(seed)).collect();
    let refs: Vec<&TrialPrefab> = siblings.iter().collect();
    let (cache, cache_dir) = warm_cache(&s, &prefab);
    let (store, store_dir) = warm_store(&s, &prefab);
    let (figure_store, figure_dir) = warm_figure_store();
    trial_modes(&mut c, &s, &prefab, &heap_prefab, &cache, &store);
    batched_modes(&mut c, &s, &refs);
    policy_lockstep_mode(&mut c, &s, &prefab);
    figure_telemetry_modes(&mut c, &figure_store);
    let durability_dirs = durability_append_modes(&mut c, &s, &prefab);
    let cleanup = || {
        let _ = std::fs::remove_dir_all(&cache_dir);
        let _ = std::fs::remove_dir_all(&store_dir);
        let _ = std::fs::remove_dir_all(&figure_dir);
        for dir in &durability_dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    };

    if smoke {
        cleanup();
        println!("smoke mode: all benches executed; no report written");
        return;
    }
    if let Some(baseline) = check {
        let regressed = check_regression(&baseline);
        cleanup();
        if regressed {
            std::process::exit(1);
        }
        return;
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    write_report(&root.join("BENCH_PR10.json"), &s, &prefab, &refs);
    cleanup();
}
