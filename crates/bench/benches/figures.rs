//! One benchmark per paper figure/table: times the regeneration of each
//! evaluation artifact at reduced trial counts (the full-scale versions
//! are the `fig5`…`table1` binaries in `harvest-exp`).

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_exp::figures::{
    min_zero_miss_capacity, miss_rate_figure, remaining_energy_figure, source_figure,
};
use harvest_exp::scenario::PolicyKind;
use std::hint::black_box;

const POLICIES: [PolicyKind; 2] = [PolicyKind::Lsa, PolicyKind::EaDvfs];

fn fig5_source(c: &mut Criterion) {
    c.bench_function("fig5_source_profile_10k", |b| {
        b.iter(|| black_box(source_figure(black_box(1), 10_000)))
    });
}

fn fig6_remaining_energy_u04(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_remaining_energy_u04");
    g.sample_size(10);
    g.bench_function("trials1", |b| {
        b.iter(|| black_box(remaining_energy_figure(0.4, &POLICIES, 1, 4, 500)))
    });
    g.finish();
}

fn fig7_remaining_energy_u08(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_remaining_energy_u08");
    g.sample_size(10);
    g.bench_function("trials1", |b| {
        b.iter(|| black_box(remaining_energy_figure(0.8, &POLICIES, 1, 4, 500)))
    });
    g.finish();
}

fn fig8_miss_rate_u04(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_miss_rate_u04");
    g.sample_size(10);
    g.bench_function("trials2", |b| {
        b.iter(|| black_box(miss_rate_figure(0.4, &POLICIES, 2, 4)))
    });
    g.finish();
}

fn fig9_miss_rate_u08(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_miss_rate_u08");
    g.sample_size(10);
    g.bench_function("trials2", |b| {
        b.iter(|| black_box(miss_rate_figure(0.8, &POLICIES, 2, 4)))
    });
    g.finish();
}

fn table1_min_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_min_capacity");
    g.sample_size(10);
    g.bench_function("u04_trials1", |b| {
        b.iter(|| {
            black_box(min_zero_miss_capacity(
                PolicyKind::EaDvfs,
                black_box(0.4),
                1,
                4,
                1e7,
                0.02,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    fig5_source,
    fig6_remaining_energy_u04,
    fig7_remaining_energy_u08,
    fig8_miss_rate_u04,
    fig9_miss_rate_u08,
    table1_min_capacity
);
criterion_main!(figures);
