//! # harvest-energy — energy-harvesting models
//!
//! Everything on the energy side of the paper's system model (§3):
//!
//! * [`source`] / [`sources`] — ambient source models ([`HarvestSource`])
//!   including the paper's stochastic solar generator (eq. 13), and
//!   [`source::sample_profile`] to freeze one seeded realization into an
//!   exact piecewise-constant profile.
//! * [`predictor`] — `ÊS(t1, t2)` estimators: clairvoyant
//!   [`OraclePredictor`] plus online slot-EWMA, moving-average, and
//!   persistence predictors.
//! * [`storage`] — the ideal storage of §3.2 (eq. 1, 3, 4) with optional
//!   efficiency/leakage extensions, evolved exactly against a profile.
//!
//! # Examples
//!
//! Sample the paper's solar source and charge a store from it:
//!
//! ```
//! use harvest_energy::source::sample_profile;
//! use harvest_energy::sources::SolarModel;
//! use harvest_energy::storage::{Storage, StorageSpec};
//! use harvest_sim::time::{SimDuration, SimTime};
//!
//! let profile = sample_profile(
//!     &mut SolarModel::paper(),
//!     SimTime::ZERO,
//!     SimDuration::from_whole_units(1_000),
//!     SimDuration::from_whole_units(1),
//!     42,
//! )?;
//! let mut store = Storage::new(StorageSpec::ideal(500.0), 0.0);
//! let report = store.advance(&profile, SimTime::ZERO, SimTime::from_whole_units(100), 0.0);
//! assert!(report.level > 0.0);
//! # Ok::<(), harvest_sim::piecewise::PiecewiseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod predictor;
pub mod rand_util;
pub mod source;
pub mod sources;
pub mod storage;

pub use fault::{apply_harvest_faults, FaultySource, HarvestFaultWindow, StorageFault};
pub use predictor::{
    BiasedPredictor, EnergyPredictor, EwmaSlotPredictor, FaultyPredictor, MovingAveragePredictor,
    OraclePredictor, PersistencePredictor, PredictorFault,
};
pub use source::{sample_profile, HarvestSource, Scaled, Sum};
pub use sources::{ConstantSource, DayNightSource, MarkovWeatherSource, SolarModel, TraceSource};
pub use storage::{AdvanceReport, Storage, StorageSpec};
