//! Harvest- and storage-side fault primitives.
//!
//! These are the energy-layer building blocks of the deterministic
//! fault-injection subsystem: timed **blackout/brownout windows** that
//! attenuate a harvest profile or a live [`HarvestSource`], and a
//! **storage fault** that derates capacity and adds leakage. The plan
//! that decides *which* faults fire for a given trial seed lives in
//! `harvest-core`; everything here is mechanism, not policy.
//!
//! All transforms are pure and deterministic: applying the same faults
//! to the same profile always yields the same result, and applying an
//! empty fault list is an exact identity (callers can keep the original
//! allocation untouched).

use crate::source::HarvestSource;
use crate::storage::StorageSpec;
use harvest_sim::piecewise::PiecewiseConstant;
use harvest_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// One timed attenuation of the harvest: the source output is
/// multiplied by `factor` over `[start, end)`.
///
/// `factor == 0.0` is a blackout; `0 < factor < 1` is a brownout.
/// Overlapping windows compound multiplicatively.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarvestFaultWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Multiplicative attenuation in `[0, 1]`.
    pub factor: f64,
}

impl HarvestFaultWindow {
    /// `true` when the window attenuates the harvest at instant `t`.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// `true` for a well-formed window: positive length and a factor in
    /// `[0, 1]`.
    pub fn is_valid(&self) -> bool {
        self.start < self.end && self.factor.is_finite() && (0.0..=1.0).contains(&self.factor)
    }
}

/// Product of all window factors active at `t` (1.0 when none are).
pub fn harvest_factor_at(faults: &[HarvestFaultWindow], t: SimTime) -> f64 {
    faults
        .iter()
        .filter(|w| w.contains(t))
        .map(|w| w.factor)
        .product()
}

/// Rebuilds `profile` with every fault window applied.
///
/// The result is defined over the union of the profile's explicit
/// domain and the fault windows (the profile's extension rule supplies
/// the base value wherever a window reaches outside the domain), with
/// breakpoints at the union of the base-value changes and the fault
/// edges; each sub-segment's value is the base value times the product
/// of the factors of the windows covering it. The extension mode is
/// preserved. Note that for [`Extension::Cycle`](harvest_sim::piecewise::Extension)
/// profiles with windows beyond the cyclic domain, the rebuilt (longer)
/// domain becomes the new cycle — query such results only up to their
/// domain end.
///
/// Callers should skip the call entirely for an empty fault list so the
/// fault-free path keeps the original allocation (and bit-identity).
///
/// # Panics
///
/// Panics if any window is malformed (see
/// [`HarvestFaultWindow::is_valid`]).
pub fn apply_harvest_faults(
    profile: &PiecewiseConstant,
    faults: &[HarvestFaultWindow],
) -> PiecewiseConstant {
    for w in faults {
        assert!(
            w.is_valid(),
            "harvest fault window must have start < end and factor in [0, 1]"
        );
    }
    // Build over the union span, padded one tick past any window that
    // touches a domain boundary so the boundary segments carry the
    // *unfaulted* base value — Hold then extends the nominal harvest,
    // not the last faulted value.
    let mut lo = profile.domain_start();
    if let Some(min_start) = faults.iter().map(|w| w.start).min() {
        if min_start <= lo {
            lo = min_start - SimDuration::TICK;
        }
    }
    let mut hi = profile.domain_end();
    if let Some(max_end) = faults.iter().map(|w| w.end).max() {
        if max_end >= hi {
            hi = max_end + SimDuration::TICK;
        }
    }
    let mut edges: Vec<SimTime> =
        Vec::with_capacity(profile.segment_count() + 2 * faults.len() + 1);
    for seg in profile.segments_between(lo, hi) {
        edges.push(seg.start);
    }
    edges.push(hi);
    for w in faults {
        for t in [w.start, w.end] {
            if lo < t && t < hi {
                edges.push(t);
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();

    let mut values = Vec::with_capacity(edges.len() - 1);
    for pair in edges.windows(2) {
        // Factors are constant over each sub-segment, so sampling the
        // (inclusive) start instant is exact.
        let t = pair[0];
        values.push(profile.value_at(t) * harvest_factor_at(faults, t));
    }
    PiecewiseConstant::new(edges, values, profile.extension())
        .expect("faulted profile reuses validated breakpoints")
}

/// A [`HarvestSource`] combinator that attenuates its inner source over
/// the configured fault windows.
///
/// The inner source is always drawn — even inside a blackout — so the
/// RNG stream stays aligned with the fault-free run and the two runs
/// are comparable draw-for-draw.
#[derive(Debug, Clone)]
pub struct FaultySource<S> {
    inner: S,
    faults: Vec<HarvestFaultWindow>,
    name: String,
}

impl<S: HarvestSource> FaultySource<S> {
    /// Wraps `inner` with the given fault windows.
    ///
    /// # Panics
    ///
    /// Panics if any window is malformed.
    pub fn new(inner: S, faults: Vec<HarvestFaultWindow>) -> Self {
        for w in &faults {
            assert!(
                w.is_valid(),
                "harvest fault window must have start < end and factor in [0, 1]"
            );
        }
        let name = format!("faulty({}, {} windows)", inner.name(), faults.len());
        FaultySource {
            inner,
            faults,
            name,
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the combinator, returning the wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: HarvestSource> HarvestSource for FaultySource<S> {
    fn draw(&mut self, t: SimTime, rng: &mut StdRng) -> f64 {
        // Draw unconditionally to keep the RNG stream aligned with the
        // fault-free realization.
        let raw = self.inner.draw(t, rng);
        raw * harvest_factor_at(&self.faults, t)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Storage degradation: a capacity derating plus extra leakage drain.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StorageFault {
    /// Fraction of nameplate capacity lost, in `[0, 1)`.
    pub capacity_fade: f64,
    /// Additional constant leakage power, `>= 0`.
    pub extra_leakage_power: f64,
}

impl StorageFault {
    /// `true` when the fault changes nothing.
    pub fn is_empty(&self) -> bool {
        self.capacity_fade == 0.0 && self.extra_leakage_power == 0.0
    }

    /// Applies the degradation to a spec. Identity when empty.
    ///
    /// # Panics
    ///
    /// Panics if the fade is outside `[0, 1)` or the extra leakage is
    /// negative or non-finite.
    pub fn apply(&self, spec: StorageSpec) -> StorageSpec {
        if self.is_empty() {
            return spec;
        }
        spec.with_capacity_fade(self.capacity_fade)
            .with_leakage_power(spec.leakage_power() + self.extra_leakage_power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::ConstantSource;
    use harvest_sim::time::SimDuration;
    use rand::SeedableRng;

    fn t(units: i64) -> SimTime {
        SimTime::from_whole_units(units)
    }

    fn flat(value: f64, len: i64) -> PiecewiseConstant {
        PiecewiseConstant::from_samples(
            SimTime::ZERO,
            SimDuration::from_whole_units(len),
            vec![value],
            harvest_sim::piecewise::Extension::Hold,
        )
        .unwrap()
    }

    #[test]
    fn blackout_zeroes_the_window_and_nothing_else() {
        let p = flat(10.0, 100);
        let f = apply_harvest_faults(
            &p,
            &[HarvestFaultWindow {
                start: t(20),
                end: t(30),
                factor: 0.0,
            }],
        );
        assert_eq!(f.value_at(t(19)), 10.0);
        assert_eq!(f.value_at(t(20)), 0.0);
        assert_eq!(f.value_at(t(29)), 0.0);
        assert_eq!(f.value_at(t(30)), 10.0);
        assert_eq!(f.integrate(SimTime::ZERO, t(100)), 900.0);
    }

    #[test]
    fn overlapping_brownouts_compound() {
        let p = flat(8.0, 40);
        let f = apply_harvest_faults(
            &p,
            &[
                HarvestFaultWindow {
                    start: t(0),
                    end: t(20),
                    factor: 0.5,
                },
                HarvestFaultWindow {
                    start: t(10),
                    end: t(30),
                    factor: 0.25,
                },
            ],
        );
        assert_eq!(f.value_at(t(5)), 4.0);
        assert_eq!(f.value_at(t(15)), 1.0);
        assert_eq!(f.value_at(t(25)), 2.0);
        assert_eq!(f.value_at(t(35)), 8.0);
    }

    #[test]
    fn empty_fault_list_is_identity() {
        let p = flat(3.0, 10);
        let f = apply_harvest_faults(&p, &[]);
        assert_eq!(f, p);
    }

    #[test]
    fn windows_outside_domain_extend_it_over_the_extension() {
        // The profile holds 2.0 past its explicit 10-unit domain; a
        // window over [-5, 50) must attenuate that held value too.
        let p = flat(2.0, 10);
        let f = apply_harvest_faults(
            &p,
            &[HarvestFaultWindow {
                start: t(-5),
                end: t(50),
                factor: 0.0,
            }],
        );
        assert_eq!(f.value_at(t(0)), 0.0);
        assert_eq!(f.value_at(t(9)), 0.0);
        assert_eq!(f.value_at(t(49)), 0.0);
        assert_eq!(
            f.value_at(t(50)),
            2.0,
            "held value resumes after the window"
        );
        assert_eq!(f.value_at(t(1_000)), 2.0, "hold extends the nominal value");
        assert_eq!(f.value_at(t(-100)), 2.0, "backward hold is nominal too");
    }

    #[test]
    fn faults_on_a_constant_profile_apply_everywhere() {
        let p = PiecewiseConstant::constant(1.2);
        let f = apply_harvest_faults(
            &p,
            &[HarvestFaultWindow {
                start: t(100),
                end: t(300),
                factor: 0.0,
            }],
        );
        assert_eq!(f.value_at(t(99)), 1.2);
        assert_eq!(f.value_at(t(100)), 0.0);
        assert_eq!(f.value_at(t(299)), 0.0);
        assert_eq!(f.value_at(t(300)), 1.2);
        assert_eq!(f.integrate(SimTime::ZERO, t(400)), 240.0);
    }

    #[test]
    fn faulty_source_attenuates_but_keeps_rng_stream() {
        let faults = vec![HarvestFaultWindow {
            start: t(10),
            end: t(20),
            factor: 0.0,
        }];
        let mut plain = ConstantSource::new(5.0);
        let mut faulty = FaultySource::new(ConstantSource::new(5.0), faults);
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        for u in 0..30 {
            let a = plain.draw(t(u), &mut rng_a);
            let b = faulty.draw(t(u), &mut rng_b);
            if (10..20).contains(&u) {
                assert_eq!(b, 0.0);
            } else {
                assert_eq!(a, b);
            }
        }
        assert!(faulty.name().starts_with("faulty("));
    }

    #[test]
    fn storage_fault_derates_and_leaks() {
        let spec = StorageSpec::ideal(100.0);
        let faulted = StorageFault {
            capacity_fade: 0.25,
            extra_leakage_power: 0.5,
        }
        .apply(spec);
        assert_eq!(faulted.capacity(), 75.0);
        assert_eq!(faulted.leakage_power(), 0.5);
        assert_eq!(StorageFault::default().apply(spec), spec);
    }

    #[test]
    fn infinite_storage_ignores_fade() {
        let spec = StorageSpec::infinite();
        let faulted = StorageFault {
            capacity_fade: 0.5,
            extra_leakage_power: 0.0,
        }
        .apply(spec);
        assert!(faulted.is_infinite());
    }
}
