//! Markov weather-modulated source.

use harvest_sim::time::SimTime;
use rand::rngs::StdRng;
use rand::Rng;

use crate::source::HarvestSource;

/// Sky condition in the weather chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeatherState {
    /// Full output from the underlying model.
    Clear,
    /// Attenuated output.
    Cloudy,
    /// Heavily attenuated output.
    Overcast,
}

impl WeatherState {
    const ALL: [WeatherState; 3] = [
        WeatherState::Clear,
        WeatherState::Cloudy,
        WeatherState::Overcast,
    ];

    fn index(self) -> usize {
        match self {
            WeatherState::Clear => 0,
            WeatherState::Cloudy => 1,
            WeatherState::Overcast => 2,
        }
    }
}

/// Wraps a clear-sky model with a three-state Markov weather chain.
///
/// At every draw the chain takes one step of its transition matrix and
/// the inner model's output is scaled by the state's attenuation factor.
/// This extends the paper's eq. 13 generator with correlated weather —
/// useful for stress-testing predictors (the paper's model has i.i.d.
/// noise only).
///
/// # Examples
///
/// ```
/// use harvest_energy::source::HarvestSource;
/// use harvest_energy::sources::{ConstantSource, MarkovWeatherSource};
/// use harvest_sim::time::SimTime;
/// use rand::SeedableRng;
///
/// let mut src = MarkovWeatherSource::with_default_attenuation(
///     ConstantSource::new(10.0),
///     0.9, // probability of keeping the current state per step
/// );
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let p = src.draw(SimTime::ZERO, &mut rng);
/// assert!(p == 10.0 || p == 4.0 || p == 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct MarkovWeatherSource<S> {
    inner: S,
    /// Row-stochastic transition matrix over `[Clear, Cloudy, Overcast]`.
    transition: [[f64; 3]; 3],
    /// Output scale per state.
    attenuation: [f64; 3],
    state: WeatherState,
    name: String,
}

impl<S: HarvestSource> MarkovWeatherSource<S> {
    /// Creates a weather-modulated source.
    ///
    /// # Panics
    ///
    /// Panics if a transition row does not sum to 1 (±1e-9), any entry is
    /// negative, or an attenuation factor is outside `[0, 1]`.
    pub fn new(inner: S, transition: [[f64; 3]; 3], attenuation: [f64; 3]) -> Self {
        for row in &transition {
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "transition rows must sum to 1, got {sum}"
            );
            assert!(
                row.iter().all(|&p| p >= 0.0),
                "transition probabilities must be >= 0"
            );
        }
        assert!(
            attenuation.iter().all(|&a| (0.0..=1.0).contains(&a)),
            "attenuation factors must lie in [0, 1]"
        );
        let name = format!("markov-weather({})", inner.name());
        MarkovWeatherSource {
            inner,
            transition,
            attenuation,
            state: WeatherState::Clear,
            name,
        }
    }

    /// Symmetric chain: stay with probability `persistence`, otherwise
    /// move to each other state with equal probability. Attenuations are
    /// 1.0 / 0.4 / 0.1.
    ///
    /// # Panics
    ///
    /// Panics if `persistence` is outside `[0, 1]`.
    pub fn with_default_attenuation(inner: S, persistence: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&persistence),
            "persistence must lie in [0, 1]"
        );
        let q = (1.0 - persistence) / 2.0;
        let p = persistence;
        MarkovWeatherSource::new(inner, [[p, q, q], [q, p, q], [q, q, p]], [1.0, 0.4, 0.1])
    }

    /// The current weather state.
    pub fn state(&self) -> WeatherState {
        self.state
    }

    fn step(&mut self, rng: &mut StdRng) {
        let row = self.transition[self.state.index()];
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (s, &p) in WeatherState::ALL.iter().zip(&row) {
            acc += p;
            if u < acc {
                self.state = *s;
                return;
            }
        }
        // Floating-point shortfall: stay in the last state.
        self.state = WeatherState::Overcast;
    }
}

impl<S: HarvestSource> HarvestSource for MarkovWeatherSource<S> {
    fn draw(&mut self, t: SimTime, rng: &mut StdRng) -> f64 {
        self.step(rng);
        let scale = self.attenuation[self.state.index()];
        self.inner.draw(t, rng) * scale
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::ConstantSource;
    use rand::SeedableRng;

    #[test]
    fn outputs_are_attenuated_inner_values() {
        let mut s = MarkovWeatherSource::with_default_attenuation(ConstantSource::new(10.0), 0.5);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let p = s.draw(SimTime::ZERO, &mut rng);
            assert!(p == 10.0 || p == 4.0 || p == 1.0, "unexpected output {p}");
        }
    }

    #[test]
    fn high_persistence_changes_state_rarely() {
        let mut s = MarkovWeatherSource::with_default_attenuation(ConstantSource::new(1.0), 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut changes = 0;
        let mut prev = s.state();
        for _ in 0..1_000 {
            s.draw(SimTime::ZERO, &mut rng);
            if s.state() != prev {
                changes += 1;
                prev = s.state();
            }
        }
        assert!(
            changes < 40,
            "too many changes for persistence 0.99: {changes}"
        );
    }

    #[test]
    fn visits_all_states_eventually() {
        let mut s = MarkovWeatherSource::with_default_attenuation(ConstantSource::new(1.0), 0.3);
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            s.draw(SimTime::ZERO, &mut rng);
            seen.insert(s.state());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_transition_matrix() {
        let _ = MarkovWeatherSource::new(
            ConstantSource::new(1.0),
            [[0.5, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
            [1.0, 0.5, 0.1],
        );
    }

    #[test]
    #[should_panic(expected = "attenuation")]
    fn rejects_bad_attenuation() {
        let _ = MarkovWeatherSource::new(
            ConstantSource::new(1.0),
            [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
            [1.5, 0.5, 0.1],
        );
    }
}
