//! The paper's stochastic solar model (eq. 13).

use harvest_sim::time::SimTime;
use rand::rngs::StdRng;

use crate::rand_util::standard_normal;
use crate::source::HarvestSource;

/// Stochastic solar source following the paper's generator (§5.1,
/// eq. 13):
///
/// ```text
/// PS(t) = A · N(t) · cos(t/τ) · cos(t/τ),   N(t) ~ N(0, 1)
/// ```
///
/// with `A = 10` and `τ = 70π` in the paper. `N(t)` is redrawn per
/// sample, capturing the fast stochastic component (clouds); the squared
/// cosine is the slow deterministic envelope (diurnal sweep, period
/// `π·τ ≈ 691` time units between nulls).
///
/// Figure 5 of the paper shows a strictly non-negative profile, so the
/// normal factor is clamped at zero (`max(N, 0)`); the substitution is
/// recorded in DESIGN.md. The resulting long-run mean power is
/// `A/√(2π) · 1/2 ≈ 0.1995·A` (≈ 2.0 for the paper's `A = 10`).
///
/// # Examples
///
/// ```
/// use harvest_energy::source::sample_profile;
/// use harvest_energy::sources::SolarModel;
/// use harvest_sim::time::{SimDuration, SimTime};
///
/// let mut solar = SolarModel::paper();
/// let profile = sample_profile(
///     &mut solar,
///     SimTime::ZERO,
///     SimDuration::from_whole_units(10_000),
///     SimDuration::from_whole_units(1),
///     1,
/// )?;
/// let mean = profile.domain_mean();
/// assert!(mean > 1.5 && mean < 2.5, "mean {mean}");
/// # Ok::<(), harvest_sim::piecewise::PiecewiseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolarModel {
    amplitude: f64,
    time_scale: f64,
}

impl SolarModel {
    /// Creates a solar model with envelope `amplitude · cos²(t /
    /// time_scale)`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive or not finite.
    pub fn new(amplitude: f64, time_scale: f64) -> Self {
        assert!(
            amplitude.is_finite() && amplitude > 0.0,
            "amplitude must be positive"
        );
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time scale must be positive"
        );
        SolarModel {
            amplitude,
            time_scale,
        }
    }

    /// The paper's parameters: `A = 10`, `τ = 70π` (eq. 13).
    pub fn paper() -> Self {
        SolarModel::new(10.0, 70.0 * std::f64::consts::PI)
    }

    /// The stochastic amplitude `A`.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// The envelope time scale `τ`.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Expected long-run mean power,
    /// `A · E[max(N,0)] · E[cos²] = A · (1/√(2π)) · (1/2)`.
    pub fn expected_mean_power(&self) -> f64 {
        self.amplitude * 0.5 / std::f64::consts::TAU.sqrt()
    }

    /// Deterministic envelope value at `t` (the cos² factor).
    pub fn envelope(&self, t: SimTime) -> f64 {
        let c = (t.as_units() / self.time_scale).cos();
        c * c
    }
}

impl HarvestSource for SolarModel {
    fn draw(&mut self, t: SimTime, rng: &mut StdRng) -> f64 {
        let n = standard_normal(rng).max(0.0);
        self.amplitude * n * self.envelope(t)
    }

    fn name(&self) -> &str {
        "solar-eq13"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::sample_profile;
    use harvest_sim::time::SimDuration;
    use rand::SeedableRng;

    #[test]
    fn output_is_non_negative_and_bounded_by_amplitude_tail() {
        let mut s = SolarModel::paper();
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..2_000 {
            let p = s.draw(SimTime::from_whole_units(t), &mut rng);
            assert!(p >= 0.0);
            assert!(p < 10.0 * 6.0, "6-sigma bound breached: {p}");
        }
    }

    #[test]
    fn envelope_nulls_at_quarter_period() {
        let s = SolarModel::new(10.0, 100.0);
        // cos(t/100) = 0 at t = 50π.
        let t = SimTime::from_units(50.0 * std::f64::consts::PI);
        assert!(s.envelope(t) < 1e-12);
        assert!((s.envelope(SimTime::ZERO) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_run_mean_near_two_for_paper_params() {
        let p = sample_profile(
            &mut SolarModel::paper(),
            SimTime::ZERO,
            SimDuration::from_whole_units(50_000),
            SimDuration::from_whole_units(1),
            17,
        )
        .unwrap();
        let mean = p.domain_mean();
        // E = 10 · E[max(N,0)] · E[cos²] = 10 · 0.3989 · 0.5 ≈ 1.99
        assert!((mean - 1.99).abs() < 0.15, "mean {mean}");
        assert!((SolarModel::paper().expected_mean_power() - 1.994).abs() < 1e-2);
    }

    #[test]
    fn paper_parameters() {
        let s = SolarModel::paper();
        assert_eq!(s.amplitude(), 10.0);
        assert!((s.time_scale() - 219.911).abs() < 1e-2);
        assert_eq!(s.name(), "solar-eq13");
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn rejects_zero_amplitude() {
        let _ = SolarModel::new(0.0, 1.0);
    }
}
