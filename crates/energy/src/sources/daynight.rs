//! Two-mode day/night source (paper ref \[5\], Rusu et al.).

use harvest_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;

use crate::source::HarvestSource;

/// A source alternating between a "day" power and a "night" power.
///
/// Models the coarse-grained solar abstraction of Rusu, Melhem & Mossé
/// (paper ref \[5\]): full output during the day fraction of each cycle,
/// a (possibly zero) trickle at night. The cycle starts in day mode at
/// time zero; negative times fold into the cycle consistently.
///
/// # Examples
///
/// ```
/// use harvest_energy::source::HarvestSource;
/// use harvest_energy::sources::DayNightSource;
/// use harvest_sim::time::{SimDuration, SimTime};
/// use rand::SeedableRng;
///
/// // 100-unit cycle, first 60 units are day.
/// let mut src = DayNightSource::new(
///     5.0,
///     0.5,
///     SimDuration::from_whole_units(100),
///     SimDuration::from_whole_units(60),
/// );
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(src.draw(SimTime::from_whole_units(10), &mut rng), 5.0);
/// assert_eq!(src.draw(SimTime::from_whole_units(70), &mut rng), 0.5);
/// assert_eq!(src.draw(SimTime::from_whole_units(110), &mut rng), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayNightSource {
    day_power: f64,
    night_power: f64,
    cycle: SimDuration,
    day_length: SimDuration,
}

impl DayNightSource {
    /// Creates a day/night source.
    ///
    /// # Panics
    ///
    /// Panics if powers are negative/non-finite, `cycle` is not positive,
    /// or `day_length` does not fit in the cycle.
    pub fn new(
        day_power: f64,
        night_power: f64,
        cycle: SimDuration,
        day_length: SimDuration,
    ) -> Self {
        assert!(
            day_power.is_finite() && day_power >= 0.0,
            "day power must be finite and >= 0"
        );
        assert!(
            night_power.is_finite() && night_power >= 0.0,
            "night power must be finite and >= 0"
        );
        assert!(cycle.is_positive(), "cycle must be positive");
        assert!(
            day_length.is_positive() && day_length <= cycle,
            "day length must lie within the cycle"
        );
        DayNightSource {
            day_power,
            night_power,
            cycle,
            day_length,
        }
    }

    /// `true` if `t` falls in the day phase.
    pub fn is_day(&self, t: SimTime) -> bool {
        let phase = t.as_ticks().rem_euclid(self.cycle.as_ticks());
        phase < self.day_length.as_ticks()
    }

    /// Mean power over one full cycle.
    pub fn cycle_mean_power(&self) -> f64 {
        let day = self.day_length.as_units();
        let night = (self.cycle - self.day_length).as_units();
        (self.day_power * day + self.night_power * night) / self.cycle.as_units()
    }
}

impl HarvestSource for DayNightSource {
    fn draw(&mut self, t: SimTime, _rng: &mut StdRng) -> f64 {
        if self.is_day(t) {
            self.day_power
        } else {
            self.night_power
        }
    }

    fn name(&self) -> &str {
        "day-night"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn src() -> DayNightSource {
        DayNightSource::new(
            4.0,
            1.0,
            SimDuration::from_whole_units(10),
            SimDuration::from_whole_units(4),
        )
    }

    #[test]
    fn phases_alternate() {
        let mut s = src();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.draw(SimTime::ZERO, &mut rng), 4.0);
        assert_eq!(s.draw(SimTime::from_units(3.999), &mut rng), 4.0);
        assert_eq!(s.draw(SimTime::from_whole_units(4), &mut rng), 1.0);
        assert_eq!(s.draw(SimTime::from_whole_units(9), &mut rng), 1.0);
        assert_eq!(s.draw(SimTime::from_whole_units(10), &mut rng), 4.0);
    }

    #[test]
    fn negative_time_folds_consistently() {
        let s = src();
        // t = -1 folds to phase 9 → night.
        assert!(!s.is_day(SimTime::from_whole_units(-1)));
        // t = -7 folds to phase 3 → day.
        assert!(s.is_day(SimTime::from_whole_units(-7)));
    }

    #[test]
    fn cycle_mean() {
        let s = src();
        // (4·4 + 1·6) / 10 = 2.2
        assert!((s.cycle_mean_power() - 2.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "day length")]
    fn day_longer_than_cycle_rejected() {
        let _ = DayNightSource::new(
            1.0,
            0.0,
            SimDuration::from_whole_units(5),
            SimDuration::from_whole_units(6),
        );
    }
}
