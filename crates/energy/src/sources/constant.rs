//! Constant-output source.

use harvest_sim::time::SimTime;
use rand::rngs::StdRng;

use crate::source::HarvestSource;

/// A source with fixed output power.
///
/// The paper's §2 motivational example uses a constant 0.5-power source;
/// this model also reproduces the constant-harvest assumption of
/// Allavena & Mossé (paper ref \[4\]).
///
/// # Examples
///
/// ```
/// use harvest_energy::source::HarvestSource;
/// use harvest_energy::sources::ConstantSource;
/// use harvest_sim::time::SimTime;
/// use rand::SeedableRng;
///
/// let mut src = ConstantSource::new(0.5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(src.draw(SimTime::from_whole_units(100), &mut rng), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantSource {
    power: f64,
}

impl ConstantSource {
    /// Creates a source emitting `power` forever.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative or not finite.
    pub fn new(power: f64) -> Self {
        assert!(
            power.is_finite() && power >= 0.0,
            "power must be finite and >= 0"
        );
        ConstantSource { power }
    }

    /// The configured power.
    pub fn power(&self) -> f64 {
        self.power
    }
}

impl HarvestSource for ConstantSource {
    fn draw(&mut self, _t: SimTime, _rng: &mut StdRng) -> f64 {
        self.power
    }

    fn name(&self) -> &str {
        "constant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn emits_configured_power() {
        let mut s = ConstantSource::new(2.25);
        let mut rng = StdRng::seed_from_u64(0);
        for t in 0..5 {
            assert_eq!(s.draw(SimTime::from_whole_units(t), &mut rng), 2.25);
        }
        assert_eq!(s.power(), 2.25);
        assert_eq!(s.name(), "constant");
    }

    #[test]
    fn zero_power_is_allowed() {
        let mut s = ConstantSource::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.draw(SimTime::ZERO, &mut rng), 0.0);
    }

    #[test]
    #[should_panic(expected = "power must be finite")]
    fn negative_power_rejected() {
        let _ = ConstantSource::new(-0.1);
    }
}
