//! Concrete ambient-source models.
//!
//! * [`ConstantSource`] — fixed output (the assumption of Allavena &
//!   Mossé that the paper's introduction criticizes; kept as a baseline
//!   and for unit tests with hand-computable energies).
//! * [`SolarModel`] — the paper's stochastic solar generator (eq. 13).
//! * [`DayNightSource`] — the two-mode day/night model of Rusu et al.
//!   (paper ref \[5\]).
//! * [`TraceSource`] — replay of a measured power trace (Kansal-style
//!   profile tracing, paper ref \[6\]).
//! * [`MarkovWeatherSource`] — a weather-modulated wrapper: a Markov
//!   chain over sky states scales an underlying clear-sky model.

mod constant;
mod daynight;
mod markov;
mod solar;
mod trace;

pub use constant::ConstantSource;
pub use daynight::DayNightSource;
pub use markov::{MarkovWeatherSource, WeatherState};
pub use solar::SolarModel;
pub use trace::TraceSource;
