//! Trace-replay source.

use harvest_sim::piecewise::{Extension, PiecewiseConstant, PiecewiseError};
use harvest_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;

use crate::source::HarvestSource;

/// Replays a measured power trace.
///
/// This is the substitution for real solar measurements à la Heliomote /
/// Prometheus (paper refs \[2\], \[3\], \[6\]): a recorded profile is replayed,
/// optionally cyclically, as the harvest source.
///
/// # Examples
///
/// ```
/// use harvest_energy::source::HarvestSource;
/// use harvest_energy::sources::TraceSource;
/// use harvest_sim::time::{SimDuration, SimTime};
/// use rand::SeedableRng;
///
/// let mut src = TraceSource::from_samples(
///     SimDuration::from_whole_units(1),
///     vec![1.0, 3.0, 2.0],
///     true, // repeat forever
/// )?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(src.draw(SimTime::from_whole_units(4), &mut rng), 3.0);
/// # Ok::<(), harvest_sim::piecewise::PiecewiseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSource {
    profile: PiecewiseConstant,
}

impl TraceSource {
    /// Builds a trace source from uniformly spaced samples starting at
    /// time zero. With `cyclic` the trace repeats forever; otherwise the
    /// last value holds beyond the trace end.
    ///
    /// # Errors
    ///
    /// Returns [`PiecewiseError`] if the samples are empty, non-finite,
    /// or `dt` is not positive. Negative samples are rejected.
    pub fn from_samples(
        dt: SimDuration,
        samples: Vec<f64>,
        cyclic: bool,
    ) -> Result<Self, PiecewiseError> {
        if let Some(index) = samples.iter().position(|&v| v < 0.0) {
            return Err(PiecewiseError::NonFiniteValue { index });
        }
        let ext = if cyclic {
            Extension::Cycle
        } else {
            Extension::Hold
        };
        let profile = PiecewiseConstant::from_samples(SimTime::ZERO, dt, samples, ext)?;
        Ok(TraceSource { profile })
    }

    /// Wraps an existing profile as a source.
    ///
    /// # Panics
    ///
    /// Panics if the profile takes negative values.
    pub fn from_profile(profile: PiecewiseConstant) -> Self {
        assert!(
            profile.domain_min() >= 0.0,
            "trace power must be non-negative"
        );
        TraceSource { profile }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &PiecewiseConstant {
        &self.profile
    }
}

impl HarvestSource for TraceSource {
    fn draw(&mut self, t: SimTime, _rng: &mut StdRng) -> f64 {
        self.profile.value_at(t)
    }

    fn name(&self) -> &str {
        "trace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn replays_samples() {
        let mut s =
            TraceSource::from_samples(SimDuration::from_whole_units(2), vec![1.0, 2.0], false)
                .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.draw(SimTime::from_whole_units(1), &mut rng), 1.0);
        assert_eq!(s.draw(SimTime::from_whole_units(2), &mut rng), 2.0);
        // Hold extension.
        assert_eq!(s.draw(SimTime::from_whole_units(100), &mut rng), 2.0);
    }

    #[test]
    fn cyclic_replay_wraps() {
        let mut s =
            TraceSource::from_samples(SimDuration::from_whole_units(1), vec![1.0, 2.0, 3.0], true)
                .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.draw(SimTime::from_whole_units(3), &mut rng), 1.0);
        assert_eq!(s.draw(SimTime::from_whole_units(5), &mut rng), 3.0);
    }

    #[test]
    fn rejects_negative_samples() {
        let err =
            TraceSource::from_samples(SimDuration::from_whole_units(1), vec![1.0, -2.0], false);
        assert!(matches!(
            err,
            Err(PiecewiseError::NonFiniteValue { index: 1 })
        ));
    }

    #[test]
    fn profile_accessor_exposes_trace() {
        let s =
            TraceSource::from_samples(SimDuration::from_whole_units(1), vec![4.0], false).unwrap();
        assert_eq!(s.profile().domain_mean(), 4.0);
    }
}
