//! Kansal-style slotted EWMA predictor (paper refs \[6\], \[9\]).

use harvest_sim::piecewise::Segment;
use harvest_sim::time::{SimDuration, SimTime};

use super::EnergyPredictor;

/// Slot-based exponentially weighted moving-average predictor.
///
/// The source's (quasi-)period — a day for solar — is divided into `S`
/// equal slots. For each slot an EWMA of the mean power observed in past
/// cycles is maintained:
///
/// ```text
/// estimate[s] ← (1 − α)·estimate[s] + α·observed_mean_power[s]
/// ```
///
/// Prediction integrates the per-slot estimates over the query window.
/// This follows the harvesting-aware power-management scheme of Kansal
/// et al. that the paper builds on (refs \[6\], \[9\]).
///
/// # Examples
///
/// ```
/// use harvest_energy::predictor::{EnergyPredictor, EwmaSlotPredictor};
/// use harvest_sim::piecewise::Segment;
/// use harvest_sim::time::{SimDuration, SimTime};
///
/// // 4 slots of 25 units each over a 100-unit period.
/// let mut p = EwmaSlotPredictor::new(SimDuration::from_whole_units(100), 4, 0.5);
/// // Observing past the slot boundary commits slot 0 (mean power 2.0).
/// p.observe(Segment {
///     start: SimTime::ZERO,
///     end: SimTime::from_whole_units(30),
///     value: 2.0,
/// });
/// // Slot 0 estimate moved from 0 toward 2.0 by α = 0.5 → 1.0.
/// let e = p.predict_energy(
///     SimTime::from_whole_units(100),
///     SimTime::from_whole_units(125),
/// );
/// assert_eq!(e, 25.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EwmaSlotPredictor {
    period: SimDuration,
    slot_len: SimDuration,
    alpha: f64,
    estimates: Vec<f64>,
    /// Per-slot accumulation for the cycle currently being observed:
    /// (energy, covered duration in units).
    pending: Vec<(f64, f64)>,
    /// Index of the slot currently accumulating, in absolute slot count.
    cursor: Option<i64>,
}

impl EwmaSlotPredictor {
    /// Creates a predictor with `slots` slots per `period` and smoothing
    /// factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive, `slots` is zero, `period` is
    /// not divisible into whole-tick slots, or `alpha` is outside
    /// `(0, 1]`.
    pub fn new(period: SimDuration, slots: usize, alpha: f64) -> Self {
        assert!(period.is_positive(), "period must be positive");
        assert!(slots > 0, "need at least one slot");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
        assert_eq!(
            period.as_ticks() % slots as i64,
            0,
            "period must divide evenly into slots"
        );
        let slot_len = SimDuration::from_ticks(period.as_ticks() / slots as i64);
        EwmaSlotPredictor {
            period,
            slot_len,
            alpha,
            estimates: vec![0.0; slots],
            pending: vec![(0.0, 0.0); slots],
            cursor: None,
        }
    }

    /// Number of slots per period.
    pub fn slots(&self) -> usize {
        self.estimates.len()
    }

    /// Current per-slot mean-power estimates.
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// Seeds the per-slot estimates (e.g. from a historical profile).
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the slot count.
    pub fn seed_estimates(&mut self, estimates: &[f64]) {
        assert_eq!(
            estimates.len(),
            self.estimates.len(),
            "estimate count mismatch"
        );
        self.estimates.copy_from_slice(estimates);
    }

    /// Absolute slot index containing instant `t`.
    fn abs_slot(&self, t: SimTime) -> i64 {
        t.as_ticks().div_euclid(self.slot_len.as_ticks())
    }

    /// Folds an absolute slot index into the per-period table.
    fn table_index(&self, abs: i64) -> usize {
        abs.rem_euclid(self.estimates.len() as i64) as usize
    }

    /// Commits the pending accumulation of `abs` into the EWMA table.
    fn commit(&mut self, abs: i64) {
        let idx = self.table_index(abs);
        let (energy, covered) = self.pending[idx];
        if covered > 0.0 {
            let mean = energy / covered;
            self.estimates[idx] = (1.0 - self.alpha) * self.estimates[idx] + self.alpha * mean;
        }
        self.pending[idx] = (0.0, 0.0);
    }
}

impl EnergyPredictor for EwmaSlotPredictor {
    fn observe(&mut self, segment: Segment) {
        if segment.end <= segment.start {
            return;
        }
        // Split the segment at slot boundaries and accumulate.
        let mut t = segment.start;
        while t < segment.end {
            let abs = self.abs_slot(t);
            if let Some(cur) = self.cursor {
                if abs != cur {
                    // Crossed into a new slot: fold every slot we passed.
                    for done in cur..abs {
                        self.commit(done);
                    }
                }
            }
            self.cursor = Some(abs);
            let slot_end =
                SimTime::from_ticks((abs + 1) * self.slot_len.as_ticks()).min(segment.end);
            let span = (slot_end - t).as_units();
            let idx = self.table_index(abs);
            self.pending[idx].0 += segment.value * span;
            self.pending[idx].1 += span;
            t = slot_end;
        }
    }

    fn predict_energy(&self, from: SimTime, until: SimTime) -> f64 {
        if until <= from {
            return 0.0;
        }
        let mut energy = 0.0;
        let mut t = from;
        while t < until {
            let abs = self.abs_slot(t);
            let slot_end = SimTime::from_ticks((abs + 1) * self.slot_len.as_ticks()).min(until);
            let idx = self.table_index(abs);
            // Blend the committed estimate with any partial observation of
            // the very slot being predicted (its own cycle's data is the
            // freshest information available).
            let (pe, pc) = self.pending[idx];
            let est = if pc > 0.0 && self.cursor == Some(abs) {
                pe / pc
            } else {
                self.estimates[idx]
            };
            energy += est * (slot_end - t).as_units();
            t = slot_end;
        }
        energy
    }

    fn name(&self) -> &str {
        "ewma-slots"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_util::seg;

    fn predictor() -> EwmaSlotPredictor {
        EwmaSlotPredictor::new(SimDuration::from_whole_units(100), 4, 0.5)
    }

    #[test]
    fn learns_periodic_pattern() {
        let mut p = EwmaSlotPredictor::new(SimDuration::from_whole_units(4), 2, 1.0);
        // Period 4, slots of 2: powers 3 then 1, repeated.
        for cycle in 0..3 {
            let base = cycle * 4;
            p.observe(seg(base, base + 2, 3.0));
            p.observe(seg(base + 2, base + 4, 1.0));
        }
        // Predict the next full cycle: 2·3 + 2·1 = 8.
        let e = p.predict_energy(SimTime::from_whole_units(12), SimTime::from_whole_units(16));
        assert!((e - 8.0).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn ewma_smooths_between_cycles() {
        let mut p = predictor();
        p.observe(seg(0, 25, 4.0));
        p.observe(seg(25, 50, 0.0)); // commits slot 0 with mean 4 → est 2
        assert!((p.estimates()[0] - 2.0).abs() < 1e-12);
        p.observe(seg(100, 125, 4.0));
        p.observe(seg(125, 130, 0.0)); // commits slot 0 again → 3
        assert!((p.estimates()[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn partial_current_slot_informs_prediction() {
        let mut p = predictor();
        // Observe only 10 units into slot 0 at power 6.
        p.observe(seg(0, 10, 6.0));
        // Predicting the rest of slot 0 should use the fresh mean (6).
        let e = p.predict_energy(SimTime::from_whole_units(10), SimTime::from_whole_units(25));
        assert!((e - 90.0).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn unobserved_slots_predict_zero() {
        let p = predictor();
        assert_eq!(
            p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(100)),
            0.0
        );
    }

    #[test]
    fn seeding_estimates() {
        let mut p = predictor();
        p.seed_estimates(&[1.0, 2.0, 3.0, 4.0]);
        let e = p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(100));
        assert!((e - 250.0).abs() < 1e-9);
    }

    #[test]
    fn prediction_spans_multiple_slots_and_cycles() {
        let mut p = EwmaSlotPredictor::new(SimDuration::from_whole_units(4), 2, 1.0);
        p.seed_estimates(&[2.0, 0.0]);
        // 1.5 cycles from t=1: [1,2) slot0 ⇒ 2, [2,4) slot1 ⇒ 0,
        // [4,6) slot0 ⇒ 4, [6,7) slot1 ⇒ 0. Total 6.
        let e = p.predict_energy(SimTime::from_whole_units(1), SimTime::from_whole_units(7));
        assert!((e - 6.0).abs() < 1e-9, "got {e}");
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_slots_rejected() {
        let _ = EwmaSlotPredictor::new(SimDuration::from_ticks(10), 3, 0.5);
    }
}
