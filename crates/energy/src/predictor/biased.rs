//! Systematic prediction error injection.

use harvest_sim::piecewise::Segment;
use harvest_sim::time::SimTime;

use super::EnergyPredictor;

/// Wraps a predictor and scales every prediction by a constant factor —
/// `> 1` models an *optimistic* predictor (over-promising energy),
/// `< 1` a *pessimistic* one.
///
/// Harvesting-aware policies stake deadlines on `ÊS`; the
/// `ablation_prediction_bias` benchmark uses this wrapper to measure how
/// EA-DVFS degrades as the bias grows.
///
/// # Examples
///
/// ```
/// use harvest_energy::predictor::{BiasedPredictor, EnergyPredictor, OraclePredictor};
/// use harvest_sim::piecewise::PiecewiseConstant;
/// use harvest_sim::time::SimTime;
///
/// let oracle = OraclePredictor::new(PiecewiseConstant::constant(2.0));
/// let optimistic = BiasedPredictor::new(oracle, 1.5);
/// let e = optimistic.predict_energy(SimTime::ZERO, SimTime::from_whole_units(10));
/// assert_eq!(e, 30.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BiasedPredictor<P> {
    inner: P,
    factor: f64,
    name: String,
}

impl<P: EnergyPredictor> BiasedPredictor<P> {
    /// Wraps `inner`, scaling its predictions by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn new(inner: P, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "bias factor must be finite and >= 0"
        );
        let name = format!("biased({}, x{factor})", inner.name());
        BiasedPredictor {
            inner,
            factor,
            name,
        }
    }

    /// The bias factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner predictor.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: EnergyPredictor> EnergyPredictor for BiasedPredictor<P> {
    fn observe(&mut self, segment: Segment) {
        self.inner.observe(segment);
    }

    fn predict_energy(&self, from: SimTime, until: SimTime) -> f64 {
        self.inner.predict_energy(from, until) * self.factor
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_util::seg;
    use crate::predictor::{OraclePredictor, PersistencePredictor};
    use harvest_sim::piecewise::PiecewiseConstant;

    #[test]
    fn scales_predictions() {
        let p = BiasedPredictor::new(OraclePredictor::new(PiecewiseConstant::constant(1.0)), 0.5);
        assert_eq!(
            p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(8)),
            4.0
        );
        assert_eq!(p.factor(), 0.5);
    }

    #[test]
    fn forwards_observations() {
        let mut p = BiasedPredictor::new(PersistencePredictor::new(), 2.0);
        p.observe(seg(0, 1, 3.0));
        assert_eq!(p.inner().last_power(), 3.0);
        assert_eq!(
            p.predict_energy(SimTime::from_whole_units(1), SimTime::from_whole_units(2)),
            6.0
        );
    }

    #[test]
    fn zero_factor_predicts_nothing() {
        let p = BiasedPredictor::new(OraclePredictor::new(PiecewiseConstant::constant(5.0)), 0.0);
        assert_eq!(
            p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(1)),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "bias factor")]
    fn rejects_negative_factor() {
        let _ = BiasedPredictor::new(PersistencePredictor::new(), -1.0);
    }
}
