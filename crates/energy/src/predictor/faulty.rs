//! Deterministic predictor corruption: multiplicative noise and
//! dropped (stale) observations.

use harvest_sim::piecewise::Segment;
use harvest_sim::time::SimTime;
use serde::{Deserialize, Serialize};

use super::EnergyPredictor;
use crate::rand_util::{splitmix64, unit_from_bits};

/// Corruption parameters for a [`FaultyPredictor`].
///
/// Both effects are hash-keyed on `(seed, query/observation time)`, not
/// on call order, so the corruption is deterministic, replayable, and
/// independent of how often the scheduler happens to ask.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PredictorFault {
    /// Relative noise amplitude `a`: each prediction is scaled by a
    /// value in `[1 - a, 1 + a]`, floored at zero. `0` disables noise.
    pub noise_amplitude: f64,
    /// Probability in `[0, 1]` that an observed segment is dropped
    /// before reaching the inner predictor (models a stale/flaky
    /// telemetry link). `0` disables staleness.
    pub drop_rate: f64,
    /// Hash seed for both effects.
    pub seed: u64,
}

impl PredictorFault {
    /// `true` when the fault corrupts nothing.
    pub fn is_empty(&self) -> bool {
        self.noise_amplitude == 0.0 && self.drop_rate == 0.0
    }
}

fn hash3(seed: u64, a: u64, b: u64) -> u64 {
    let mut s = seed ^ a.rotate_left(17) ^ b.rotate_left(41);
    splitmix64(&mut s)
}

/// Wraps a predictor with deterministic corruption per
/// [`PredictorFault`].
///
/// With an all-zero fault this is an exact pass-through: predictions
/// are returned untouched (no multiply) and every observation is
/// forwarded, so a zero-intensity fault plan stays bit-identical to a
/// fault-free run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyPredictor<P> {
    inner: P,
    fault: PredictorFault,
    name: String,
}

impl<P: EnergyPredictor> FaultyPredictor<P> {
    /// Wraps `inner` with the given corruption parameters.
    ///
    /// # Panics
    ///
    /// Panics if the amplitude is negative/non-finite or the drop rate
    /// is outside `[0, 1]`.
    pub fn new(inner: P, fault: PredictorFault) -> Self {
        assert!(
            fault.noise_amplitude.is_finite() && fault.noise_amplitude >= 0.0,
            "noise amplitude must be finite and >= 0"
        );
        assert!(
            fault.drop_rate.is_finite() && (0.0..=1.0).contains(&fault.drop_rate),
            "drop rate must lie in [0, 1]"
        );
        let name = format!(
            "faulty({}, noise={}, drop={})",
            inner.name(),
            fault.noise_amplitude,
            fault.drop_rate
        );
        FaultyPredictor { inner, fault, name }
    }

    /// The corruption parameters.
    pub fn fault(&self) -> PredictorFault {
        self.fault
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner predictor.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: EnergyPredictor> EnergyPredictor for FaultyPredictor<P> {
    fn observe(&mut self, segment: Segment) {
        if self.fault.drop_rate > 0.0 {
            let u = unit_from_bits(hash3(
                self.fault.seed ^ 0xD0_0D,
                segment.start.as_ticks() as u64,
                segment.end.as_ticks() as u64,
            ));
            if u < self.fault.drop_rate {
                return;
            }
        }
        self.inner.observe(segment);
    }

    fn predict_energy(&self, from: SimTime, until: SimTime) -> f64 {
        let e = self.inner.predict_energy(from, until);
        if self.fault.noise_amplitude == 0.0 {
            return e;
        }
        let u = unit_from_bits(hash3(
            self.fault.seed,
            from.as_ticks() as u64,
            until.as_ticks() as u64,
        ));
        let factor = 1.0 + self.fault.noise_amplitude * (2.0 * u - 1.0);
        (e * factor).max(0.0)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_util::seg;
    use crate::predictor::{OraclePredictor, PersistencePredictor};
    use harvest_sim::piecewise::PiecewiseConstant;

    fn t(units: i64) -> SimTime {
        SimTime::from_whole_units(units)
    }

    #[test]
    fn zero_fault_is_exact_passthrough() {
        let oracle = OraclePredictor::new(PiecewiseConstant::constant(3.0));
        let p = FaultyPredictor::new(oracle.clone(), PredictorFault::default());
        for (a, b) in [(0, 10), (5, 7), (100, 200)] {
            assert_eq!(
                p.predict_energy(t(a), t(b)).to_bits(),
                oracle.predict_energy(t(a), t(b)).to_bits()
            );
        }
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let fault = PredictorFault {
            noise_amplitude: 0.5,
            drop_rate: 0.0,
            seed: 11,
        };
        let p = FaultyPredictor::new(
            OraclePredictor::new(PiecewiseConstant::constant(2.0)),
            fault,
        );
        let q = FaultyPredictor::new(
            OraclePredictor::new(PiecewiseConstant::constant(2.0)),
            fault,
        );
        let mut distinct = false;
        for i in 0..50i64 {
            let e = p.predict_energy(t(i), t(i + 10));
            assert_eq!(e.to_bits(), q.predict_energy(t(i), t(i + 10)).to_bits());
            // truth = 20; noise keeps it within ±50%.
            assert!((10.0..=30.0).contains(&e), "{e}");
            if e != 20.0 {
                distinct = true;
            }
        }
        assert!(distinct, "noise should perturb at least one prediction");
    }

    #[test]
    fn drop_rate_one_starves_the_inner_predictor() {
        let fault = PredictorFault {
            noise_amplitude: 0.0,
            drop_rate: 1.0,
            seed: 0,
        };
        let mut p = FaultyPredictor::new(PersistencePredictor::new(), fault);
        p.observe(seg(0, 1, 9.0));
        p.observe(seg(1, 2, 9.0));
        // Persistence never saw a sample, so it still predicts nothing.
        assert_eq!(p.predict_energy(t(2), t(3)), 0.0);
    }

    #[test]
    fn partial_drop_is_time_keyed_not_order_keyed() {
        let fault = PredictorFault {
            noise_amplitude: 0.0,
            drop_rate: 0.5,
            seed: 4,
        };
        let mut a = FaultyPredictor::new(PersistencePredictor::new(), fault);
        let mut b = FaultyPredictor::new(PersistencePredictor::new(), fault);
        for i in 0..20 {
            a.observe(seg(i, i + 1, i as f64));
        }
        // Same observations, interleaved with repeats: outcome depends
        // only on segment times, so the final state matches.
        for i in 0..20 {
            b.observe(seg(i, i + 1, i as f64));
            b.observe(seg(i, i + 1, i as f64));
        }
        assert_eq!(
            a.predict_energy(t(20), t(21)).to_bits(),
            b.predict_energy(t(20), t(21)).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "drop rate")]
    fn rejects_out_of_range_drop_rate() {
        let _ = FaultyPredictor::new(
            PersistencePredictor::new(),
            PredictorFault {
                noise_amplitude: 0.0,
                drop_rate: 1.5,
                seed: 0,
            },
        );
    }
}
