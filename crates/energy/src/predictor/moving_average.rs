//! Sliding-window moving-average predictor.

use std::collections::VecDeque;

use harvest_sim::piecewise::Segment;
use harvest_sim::time::{SimDuration, SimTime};

use super::EnergyPredictor;

/// Predicts the time-weighted mean power over a trailing window.
///
/// Observed segments are retained until their total span exceeds the
/// window; prediction assumes the windowed mean persists.
///
/// # Examples
///
/// ```
/// use harvest_energy::predictor::{EnergyPredictor, MovingAveragePredictor};
/// use harvest_sim::piecewise::Segment;
/// use harvest_sim::time::{SimDuration, SimTime};
///
/// let mut p = MovingAveragePredictor::new(SimDuration::from_whole_units(10));
/// p.observe(Segment {
///     start: SimTime::ZERO,
///     end: SimTime::from_whole_units(4),
///     value: 1.0,
/// });
/// p.observe(Segment {
///     start: SimTime::from_whole_units(4),
///     end: SimTime::from_whole_units(8),
///     value: 3.0,
/// });
/// // Windowed mean = 2.0.
/// let e = p.predict_energy(SimTime::from_whole_units(8), SimTime::from_whole_units(13));
/// assert_eq!(e, 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MovingAveragePredictor {
    window: SimDuration,
    segments: VecDeque<Segment>,
    span: SimDuration,
}

impl MovingAveragePredictor {
    /// Creates a predictor averaging over the trailing `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive.
    pub fn new(window: SimDuration) -> Self {
        assert!(window.is_positive(), "window must be positive");
        MovingAveragePredictor {
            window,
            segments: VecDeque::new(),
            span: SimDuration::ZERO,
        }
    }

    /// The configured window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Current time-weighted mean power over the retained history
    /// (zero before any observation).
    pub fn mean_power(&self) -> f64 {
        if self.span.is_zero() {
            return 0.0;
        }
        let energy: f64 = self.segments.iter().map(Segment::integral).sum();
        energy / self.span.as_units()
    }
}

impl EnergyPredictor for MovingAveragePredictor {
    fn observe(&mut self, segment: Segment) {
        if segment.end <= segment.start {
            return;
        }
        self.span += segment.duration();
        self.segments.push_back(segment);
        // Evict whole segments once the retained span exceeds the window;
        // keeping a partial overshoot (≤ one segment) is fine and avoids
        // splitting records.
        while self.span > self.window {
            let front = self
                .segments
                .front()
                .copied()
                .expect("span > 0 implies segments");
            if self.span - front.duration() < self.window {
                break;
            }
            self.span -= front.duration();
            self.segments.pop_front();
        }
    }

    fn predict_energy(&self, from: SimTime, until: SimTime) -> f64 {
        if until <= from {
            return 0.0;
        }
        self.mean_power() * (until - from).as_units()
    }

    fn name(&self) -> &str {
        "moving-average"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_util::seg;

    #[test]
    fn empty_history_predicts_zero() {
        let p = MovingAveragePredictor::new(SimDuration::from_whole_units(10));
        assert_eq!(
            p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(5)),
            0.0
        );
    }

    #[test]
    fn time_weighted_mean() {
        let mut p = MovingAveragePredictor::new(SimDuration::from_whole_units(100));
        p.observe(seg(0, 1, 10.0)); // 10 energy
        p.observe(seg(1, 10, 0.0)); // 0 energy over 9 units
        assert!((p.mean_power() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn old_segments_are_evicted() {
        let mut p = MovingAveragePredictor::new(SimDuration::from_whole_units(5));
        p.observe(seg(0, 5, 100.0));
        p.observe(seg(5, 10, 2.0));
        // The first segment falls fully outside the 5-unit window.
        assert!((p.mean_power() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_length_segments_are_ignored() {
        let mut p = MovingAveragePredictor::new(SimDuration::from_whole_units(5));
        p.observe(seg(3, 3, 42.0));
        assert_eq!(p.mean_power(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = MovingAveragePredictor::new(SimDuration::ZERO);
    }
}
