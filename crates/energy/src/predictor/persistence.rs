//! Last-value ("persistence") predictor.

use harvest_sim::piecewise::Segment;
use harvest_sim::time::SimTime;

use super::EnergyPredictor;

/// Assumes the most recently observed power persists forever.
///
/// The weakest meaningful online predictor; it brackets the value of
/// smarter prediction in the ablation benchmarks.
///
/// # Examples
///
/// ```
/// use harvest_energy::predictor::{EnergyPredictor, PersistencePredictor};
/// use harvest_sim::piecewise::Segment;
/// use harvest_sim::time::SimTime;
///
/// let mut p = PersistencePredictor::new();
/// p.observe(Segment {
///     start: SimTime::ZERO,
///     end: SimTime::from_whole_units(2),
///     value: 3.0,
/// });
/// let e = p.predict_energy(SimTime::from_whole_units(2), SimTime::from_whole_units(5));
/// assert_eq!(e, 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PersistencePredictor {
    last_power: f64,
}

impl PersistencePredictor {
    /// Creates a predictor that initially predicts zero.
    pub fn new() -> Self {
        PersistencePredictor { last_power: 0.0 }
    }

    /// The power currently assumed to persist.
    pub fn last_power(&self) -> f64 {
        self.last_power
    }
}

impl EnergyPredictor for PersistencePredictor {
    fn observe(&mut self, segment: Segment) {
        self.last_power = segment.value;
    }

    fn predict_energy(&self, from: SimTime, until: SimTime) -> f64 {
        if until <= from {
            return 0.0;
        }
        self.last_power * (until - from).as_units()
    }

    fn name(&self) -> &str {
        "persistence"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_util::seg;

    #[test]
    fn initial_prediction_is_zero() {
        let p = PersistencePredictor::new();
        assert_eq!(
            p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(10)),
            0.0
        );
    }

    #[test]
    fn tracks_latest_observation() {
        let mut p = PersistencePredictor::new();
        p.observe(seg(0, 1, 1.0));
        p.observe(seg(1, 2, 4.0));
        assert_eq!(p.last_power(), 4.0);
        assert_eq!(
            p.predict_energy(SimTime::from_whole_units(2), SimTime::from_whole_units(4)),
            8.0
        );
    }

    #[test]
    fn reversed_window_is_zero() {
        let mut p = PersistencePredictor::new();
        p.observe(seg(0, 1, 5.0));
        assert_eq!(
            p.predict_energy(SimTime::from_whole_units(3), SimTime::ZERO),
            0.0
        );
    }
}
