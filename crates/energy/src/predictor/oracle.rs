//! Clairvoyant predictor over the realized profile.

use std::cell::Cell;
use std::sync::Arc;

use harvest_sim::piecewise::{Cursor, PiecewiseConstant, Segment};
use harvest_sim::time::SimTime;

use super::EnergyPredictor;

/// Predicts by integrating the *actual* realized profile.
///
/// This is what the paper's simulation converges to when "tracing the
/// PS(t) profile" (§3.1/§5.1) and is the default predictor of the
/// reproduction experiments: it isolates the scheduling comparison from
/// prediction error. Use the online predictors for sensitivity studies.
///
/// # Examples
///
/// ```
/// use harvest_energy::predictor::{EnergyPredictor, OraclePredictor};
/// use harvest_sim::piecewise::PiecewiseConstant;
/// use harvest_sim::time::SimTime;
///
/// let p = OraclePredictor::new(PiecewiseConstant::constant(0.5));
/// let e = p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(16));
/// assert_eq!(e, 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct OraclePredictor {
    /// Shared so sweep prefabs can hand the same realized profile to
    /// many concurrent trials without deep-copying breakpoint tables.
    profile: Arc<PiecewiseConstant>,
    /// Breakpoint-position hint threaded across `predict_energy` calls.
    /// Prediction windows advance monotonically with simulation time, so
    /// the hint keeps each query amortized `O(1)`; it never changes a
    /// returned value (the cursor is a pure accelerator).
    cursor: Cell<Cursor>,
}

impl PartialEq for OraclePredictor {
    fn eq(&self, other: &Self) -> bool {
        // The cursor is a lookup hint, not state: equality is decided by
        // the profile alone.
        self.profile == other.profile
    }
}

impl OraclePredictor {
    /// Creates an oracle over the given realized profile.
    pub fn new(profile: PiecewiseConstant) -> Self {
        Self::from_shared(Arc::new(profile))
    }

    /// Creates an oracle over an already-shared profile without copying
    /// its breakpoint tables.
    pub fn from_shared(profile: Arc<PiecewiseConstant>) -> Self {
        let cursor = Cell::new(profile.cursor());
        OraclePredictor { profile, cursor }
    }

    /// The wrapped profile.
    pub fn profile(&self) -> &PiecewiseConstant {
        &self.profile
    }
}

impl EnergyPredictor for OraclePredictor {
    fn observe(&mut self, _segment: Segment) {}

    fn predict_energy(&self, from: SimTime, until: SimTime) -> f64 {
        if until <= from {
            return 0.0;
        }
        let mut cur = self.cursor.get();
        let e = self.profile.integrate_with(&mut cur, from, until);
        self.cursor.set(cur);
        e
    }

    fn name(&self) -> &str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim::piecewise::Extension;
    use harvest_sim::time::SimDuration;

    #[test]
    fn integrates_profile_exactly() {
        let profile = PiecewiseConstant::from_samples(
            SimTime::ZERO,
            SimDuration::from_whole_units(5),
            vec![1.0, 3.0],
            Extension::Hold,
        )
        .unwrap();
        let p = OraclePredictor::new(profile);
        let e = p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(10));
        assert_eq!(e, 20.0);
    }

    #[test]
    fn empty_or_reversed_window_is_zero() {
        let p = OraclePredictor::new(PiecewiseConstant::constant(2.0));
        assert_eq!(
            p.predict_energy(SimTime::from_whole_units(5), SimTime::from_whole_units(5)),
            0.0
        );
        assert_eq!(
            p.predict_energy(SimTime::from_whole_units(5), SimTime::ZERO),
            0.0
        );
    }

    #[test]
    fn observe_is_inert() {
        let mut p = OraclePredictor::new(PiecewiseConstant::constant(2.0));
        p.observe(crate::predictor::test_util::seg(0, 1, 99.0));
        assert_eq!(
            p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(1)),
            2.0
        );
        assert_eq!(p.name(), "oracle");
    }
}
