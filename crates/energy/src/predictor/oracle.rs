//! Clairvoyant predictor over the realized profile.

use harvest_sim::piecewise::{PiecewiseConstant, Segment};
use harvest_sim::time::SimTime;

use super::EnergyPredictor;

/// Predicts by integrating the *actual* realized profile.
///
/// This is what the paper's simulation converges to when "tracing the
/// PS(t) profile" (§3.1/§5.1) and is the default predictor of the
/// reproduction experiments: it isolates the scheduling comparison from
/// prediction error. Use the online predictors for sensitivity studies.
///
/// # Examples
///
/// ```
/// use harvest_energy::predictor::{EnergyPredictor, OraclePredictor};
/// use harvest_sim::piecewise::PiecewiseConstant;
/// use harvest_sim::time::SimTime;
///
/// let p = OraclePredictor::new(PiecewiseConstant::constant(0.5));
/// let e = p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(16));
/// assert_eq!(e, 8.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OraclePredictor {
    profile: PiecewiseConstant,
}

impl OraclePredictor {
    /// Creates an oracle over the given realized profile.
    pub fn new(profile: PiecewiseConstant) -> Self {
        OraclePredictor { profile }
    }

    /// The wrapped profile.
    pub fn profile(&self) -> &PiecewiseConstant {
        &self.profile
    }
}

impl EnergyPredictor for OraclePredictor {
    fn observe(&mut self, _segment: Segment) {}

    fn predict_energy(&self, from: SimTime, until: SimTime) -> f64 {
        if until <= from {
            return 0.0;
        }
        self.profile.integrate(from, until)
    }

    fn name(&self) -> &str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim::piecewise::Extension;
    use harvest_sim::time::SimDuration;

    #[test]
    fn integrates_profile_exactly() {
        let profile = PiecewiseConstant::from_samples(
            SimTime::ZERO,
            SimDuration::from_whole_units(5),
            vec![1.0, 3.0],
            Extension::Hold,
        )
        .unwrap();
        let p = OraclePredictor::new(profile);
        let e = p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(10));
        assert_eq!(e, 20.0);
    }

    #[test]
    fn empty_or_reversed_window_is_zero() {
        let p = OraclePredictor::new(PiecewiseConstant::constant(2.0));
        assert_eq!(p.predict_energy(SimTime::from_whole_units(5), SimTime::from_whole_units(5)), 0.0);
        assert_eq!(p.predict_energy(SimTime::from_whole_units(5), SimTime::ZERO), 0.0);
    }

    #[test]
    fn observe_is_inert() {
        let mut p = OraclePredictor::new(PiecewiseConstant::constant(2.0));
        p.observe(crate::predictor::test_util::seg(0, 1, 99.0));
        assert_eq!(p.predict_energy(SimTime::ZERO, SimTime::from_whole_units(1)), 2.0);
        assert_eq!(p.name(), "oracle");
    }
}
