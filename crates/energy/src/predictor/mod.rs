//! Harvested-energy prediction `ÊS(t1, t2)`.
//!
//! The schedulers need the future harvested energy between "now" and a
//! job's deadline (paper eq. 5/9). Real systems estimate it by tracing
//! the source's power profile (paper §3.1, ref \[9\]); the simulator feeds
//! every completed profile segment to the predictor via
//! [`EnergyPredictor::observe`], and the scheduler queries
//! [`EnergyPredictor::predict_energy`].

mod biased;
mod ewma;
mod faulty;
mod moving_average;
mod oracle;
mod persistence;

pub use biased::BiasedPredictor;
pub use ewma::EwmaSlotPredictor;
pub use faulty::{FaultyPredictor, PredictorFault};
pub use moving_average::MovingAveragePredictor;
pub use oracle::OraclePredictor;
pub use persistence::PersistencePredictor;

use harvest_sim::piecewise::Segment;
use harvest_sim::time::SimTime;

/// Estimates the energy the source will deliver over a future window.
pub trait EnergyPredictor {
    /// Feeds one completed constant-power stretch of the realized
    /// profile. Segments arrive in increasing time order and do not
    /// overlap.
    fn observe(&mut self, segment: Segment);

    /// Predicted harvested energy `ÊS(from, until)`; must be finite and
    /// non-negative for `until ≥ from`.
    fn predict_energy(&self, from: SimTime, until: SimTime) -> f64;

    /// Short name for reports.
    fn name(&self) -> &str {
        "predictor"
    }
}

impl<P: EnergyPredictor + ?Sized> EnergyPredictor for Box<P> {
    fn observe(&mut self, segment: Segment) {
        (**self).observe(segment);
    }

    fn predict_energy(&self, from: SimTime, until: SimTime) -> f64 {
        (**self).predict_energy(from, until)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use harvest_sim::piecewise::Segment;
    use harvest_sim::time::SimTime;

    /// Builds a segment `[a, b)` with value `v` (units of whole time
    /// units).
    pub fn seg(a: i64, b: i64, v: f64) -> Segment {
        Segment {
            start: SimTime::from_whole_units(a),
            end: SimTime::from_whole_units(b),
            value: v,
        }
    }
}
