//! The [`HarvestSource`] trait and profile sampling.
//!
//! An ambient energy source is modelled as a generator of instantaneous
//! power values; [`sample_profile`] freezes one stochastic *realization*
//! into an exact piecewise-constant [`PiecewiseConstant`] profile that
//! the simulator can integrate in closed form (paper §3.1, eq. 2).

use harvest_sim::piecewise::{Extension, PiecewiseConstant, PiecewiseError};
use harvest_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A model of an ambient energy source.
///
/// `draw` produces the net output power (after conversion circuitry, per
/// paper §3.1) holding over a sampling interval starting at `t`.
/// Deterministic sources ignore the RNG; stateful stochastic sources
/// (e.g. Markov weather) may mutate internal state, so realizations must
/// be drawn in increasing time order.
pub trait HarvestSource {
    /// Power value holding over the sampling interval starting at `t`.
    /// Must be finite and non-negative.
    fn draw(&mut self, t: SimTime, rng: &mut StdRng) -> f64;

    /// Short human-readable model name for reports.
    fn name(&self) -> &str {
        "harvest-source"
    }
}

/// Samples one realization of `source` on a uniform grid.
///
/// The realization holds each drawn value constant for `dt`, covers
/// `[start, start + n·dt)` with `n = ceil(horizon / dt)` samples, and uses
/// [`Extension::Hold`] beyond the horizon.
///
/// Identical `(source, seed)` pairs produce identical profiles, which is
/// the backbone of reproducible experiments.
///
/// # Errors
///
/// Propagates [`PiecewiseError`] if `dt` is not positive or the horizon is
/// empty.
///
/// # Panics
///
/// Panics if the source draws a negative or non-finite power.
///
/// # Examples
///
/// ```
/// use harvest_energy::source::{sample_profile, HarvestSource};
/// use harvest_energy::sources::ConstantSource;
/// use harvest_sim::time::{SimDuration, SimTime};
///
/// let profile = sample_profile(
///     &mut ConstantSource::new(0.5),
///     SimTime::ZERO,
///     SimDuration::from_whole_units(25),
///     SimDuration::from_whole_units(1),
///     42,
/// )?;
/// let e = profile.integrate(SimTime::ZERO, SimTime::from_whole_units(16));
/// assert_eq!(e, 8.0); // the paper's §2 example: ES(0,16) = 8
/// # Ok::<(), harvest_sim::piecewise::PiecewiseError>(())
/// ```
pub fn sample_profile<S: HarvestSource + ?Sized>(
    source: &mut S,
    start: SimTime,
    horizon: SimDuration,
    dt: SimDuration,
    seed: u64,
) -> Result<PiecewiseConstant, PiecewiseError> {
    if !dt.is_positive() || !horizon.is_positive() {
        return Err(PiecewiseError::LengthMismatch {
            breakpoints: 0,
            values: 0,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = ((horizon.as_ticks() + dt.as_ticks() - 1) / dt.as_ticks()) as usize;
    let mut samples = Vec::with_capacity(n);
    let mut t = start;
    for _ in 0..n {
        let p = source.draw(t, &mut rng);
        assert!(
            p.is_finite() && p >= 0.0,
            "source {:?} drew invalid power {p} at {t}",
            source.name()
        );
        samples.push(p);
        t += dt;
    }
    PiecewiseConstant::from_samples(start, dt, samples, Extension::Hold)
}

/// Scales another source's output by a constant factor.
///
/// # Examples
///
/// ```
/// use harvest_energy::source::{HarvestSource, Scaled};
/// use harvest_energy::sources::ConstantSource;
/// use harvest_sim::time::SimTime;
/// use rand::SeedableRng;
///
/// let mut src = Scaled::new(ConstantSource::new(2.0), 1.5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(src.draw(SimTime::ZERO, &mut rng), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct Scaled<S> {
    inner: S,
    factor: f64,
    name: String,
}

impl<S: HarvestSource> Scaled<S> {
    /// Wraps `inner`, multiplying its output by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn new(inner: S, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and >= 0"
        );
        let name = format!("scaled({}, {factor})", inner.name());
        Scaled {
            inner,
            factor,
            name,
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the combinator, returning the wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: HarvestSource> HarvestSource for Scaled<S> {
    fn draw(&mut self, t: SimTime, rng: &mut StdRng) -> f64 {
        self.inner.draw(t, rng) * self.factor
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Sums the outputs of two sources (e.g. solar plus vibration).
#[derive(Debug, Clone)]
pub struct Sum<A, B> {
    a: A,
    b: B,
    name: String,
}

impl<A: HarvestSource, B: HarvestSource> Sum<A, B> {
    /// Combines two sources additively.
    pub fn new(a: A, b: B) -> Self {
        let name = format!("sum({}, {})", a.name(), b.name());
        Sum { a, b, name }
    }
}

impl<A: HarvestSource, B: HarvestSource> HarvestSource for Sum<A, B> {
    fn draw(&mut self, t: SimTime, rng: &mut StdRng) -> f64 {
        self.a.draw(t, rng) + self.b.draw(t, rng)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<S: HarvestSource + ?Sized> HarvestSource for &mut S {
    fn draw(&mut self, t: SimTime, rng: &mut StdRng) -> f64 {
        (**self).draw(t, rng)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<S: HarvestSource + ?Sized> HarvestSource for Box<S> {
    fn draw(&mut self, t: SimTime, rng: &mut StdRng) -> f64 {
        (**self).draw(t, rng)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::ConstantSource;

    fn u(x: i64) -> SimTime {
        SimTime::from_whole_units(x)
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mk = |seed| {
            sample_profile(
                &mut ConstantSource::new(1.0),
                SimTime::ZERO,
                SimDuration::from_whole_units(10),
                SimDuration::from_whole_units(1),
                seed,
            )
            .unwrap()
        };
        assert_eq!(mk(9), mk(9));
    }

    #[test]
    fn sampling_covers_horizon_with_ceil() {
        let p = sample_profile(
            &mut ConstantSource::new(1.0),
            SimTime::ZERO,
            SimDuration::from_units(9.5),
            SimDuration::from_whole_units(2),
            0,
        )
        .unwrap();
        assert_eq!(p.segment_count(), 5);
        assert_eq!(p.domain_end(), u(10));
    }

    #[test]
    fn sampling_rejects_bad_grid() {
        let err = sample_profile(
            &mut ConstantSource::new(1.0),
            SimTime::ZERO,
            SimDuration::ZERO,
            SimDuration::from_whole_units(1),
            0,
        );
        assert!(err.is_err());
    }

    #[test]
    fn scaled_source_scales() {
        let mut s = Scaled::new(ConstantSource::new(2.0), 0.25);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.draw(SimTime::ZERO, &mut rng), 0.5);
        assert!(s.name().starts_with("scaled("));
        assert_eq!(s.inner().power(), 2.0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_negative_factor() {
        let _ = Scaled::new(ConstantSource::new(1.0), -1.0);
    }

    #[test]
    fn sum_source_adds() {
        let mut s = Sum::new(ConstantSource::new(1.5), ConstantSource::new(2.5));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.draw(SimTime::ZERO, &mut rng), 4.0);
    }

    #[test]
    fn trait_objects_work() {
        let mut boxed: Box<dyn HarvestSource> = Box::new(ConstantSource::new(3.0));
        let p = sample_profile(
            &mut boxed,
            SimTime::ZERO,
            SimDuration::from_whole_units(4),
            SimDuration::from_whole_units(1),
            0,
        )
        .unwrap();
        assert_eq!(p.domain_mean(), 3.0);
    }
}
