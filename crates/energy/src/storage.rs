//! Energy storage (battery / supercapacitor) models.
//!
//! The paper assumes *ideal* storage (§3.2): rechargeable to capacity
//! `C`, fully dischargeable to zero, with surplus harvested energy
//! discarded once full (eq. 1, 3, 4). [`StorageSpec`] also supports
//! non-ideal extensions — charge/discharge efficiency and a constant
//! leakage drain — used by the ablation benchmarks.
//!
//! Evolution is computed *exactly*: with a piecewise-constant harvest
//! profile and a constant CPU load, the stored level is piecewise-linear,
//! so every full/empty crossing is solved in closed form by
//! [`StorageSpec::advance`] and [`StorageSpec::first_crossing`].

use harvest_sim::piecewise::{Cursor, PiecewiseConstant, Segment};
use harvest_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Levels within this absolute distance of a clamp boundary are snapped
/// onto it — energies in this workspace are O(1)..O(10⁴), so a 1e-9
/// sliver is far below any physically meaningful amount and snapping it
/// prevents float-underflow spin near the boundaries.
const BOUNDARY_SNAP: f64 = 1e-9;

#[inline]
fn snap(level: f64, capacity: f64) -> f64 {
    let level = level.clamp(0.0, capacity);
    if level < BOUNDARY_SNAP {
        0.0
    } else if capacity - level < BOUNDARY_SNAP {
        capacity
    } else {
        level
    }
}

/// Static parameters of an energy storage element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageSpec {
    capacity: f64,
    charge_efficiency: f64,
    discharge_efficiency: f64,
    leakage_power: f64,
}

/// Result of advancing the stored level across a time window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdvanceReport {
    /// Stored level at the end of the window.
    pub level: f64,
    /// Harvested energy discarded because the storage was full (measured
    /// at the storage terminals, i.e. after charge efficiency).
    pub overflow: f64,
    /// Energy the load demanded but the storage could not supply because
    /// it was empty. A correctly driven simulator pre-computes depletion
    /// crossings and never lets this become non-zero while running.
    pub deficit: f64,
    /// Energy actually delivered to the load over the window.
    pub delivered: f64,
    /// The level spent part of the window pinned at zero (depleted, or
    /// chattering there with the load still served). Observability only.
    pub clamped_empty: bool,
    /// The level spent part of the window pinned at capacity (surplus
    /// harvest discarded). Observability only.
    pub clamped_full: bool,
}

impl StorageSpec {
    /// Ideal storage of the given capacity (paper §3.2): unit
    /// efficiencies, no leakage.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is negative or NaN (`f64::INFINITY` is
    /// allowed and models the §4.3 infinite-storage thought experiment).
    pub fn ideal(capacity: f64) -> Self {
        assert!(
            !capacity.is_nan() && capacity >= 0.0,
            "capacity must be >= 0"
        );
        StorageSpec {
            capacity,
            charge_efficiency: 1.0,
            discharge_efficiency: 1.0,
            leakage_power: 0.0,
        }
    }

    /// Unbounded ideal storage — the §4.3 special case under which
    /// EA-DVFS degenerates to plain EDF.
    pub fn infinite() -> Self {
        StorageSpec::ideal(f64::INFINITY)
    }

    /// Sets the charge efficiency (fraction of harvested energy that
    /// actually enters the store).
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `(0, 1]`.
    pub fn with_charge_efficiency(mut self, eta: f64) -> Self {
        assert!(
            eta > 0.0 && eta <= 1.0,
            "charge efficiency must lie in (0, 1]"
        );
        self.charge_efficiency = eta;
        self
    }

    /// Sets the discharge efficiency (the store drains `e/eta` to supply
    /// `e` to the load).
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `(0, 1]`.
    pub fn with_discharge_efficiency(mut self, eta: f64) -> Self {
        assert!(
            eta > 0.0 && eta <= 1.0,
            "discharge efficiency must lie in (0, 1]"
        );
        self.discharge_efficiency = eta;
        self
    }

    /// Sets a constant leakage drain (power), active whenever the store
    /// is non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative or not finite.
    pub fn with_leakage_power(mut self, power: f64) -> Self {
        assert!(
            power.is_finite() && power >= 0.0,
            "leakage power must be finite and >= 0"
        );
        self.leakage_power = power;
        self
    }

    /// Derates the capacity by a fade fraction (`0.1` → 10% of the
    /// nameplate capacity is gone). A no-op for infinite storage and for
    /// `fade == 0`, so fault-free specs are preserved bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `fade` is outside `[0, 1)`.
    pub fn with_capacity_fade(mut self, fade: f64) -> Self {
        assert!(
            fade.is_finite() && (0.0..1.0).contains(&fade),
            "capacity fade must lie in [0, 1)"
        );
        if fade > 0.0 && !self.is_infinite() {
            self.capacity *= 1.0 - fade;
        }
        self
    }

    /// Storage capacity `C`.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Charge efficiency.
    pub fn charge_efficiency(&self) -> f64 {
        self.charge_efficiency
    }

    /// Discharge efficiency.
    pub fn discharge_efficiency(&self) -> f64 {
        self.discharge_efficiency
    }

    /// Leakage power.
    pub fn leakage_power(&self) -> f64 {
        self.leakage_power
    }

    /// `true` for unbounded storage.
    pub fn is_infinite(&self) -> bool {
        self.capacity.is_infinite()
    }

    /// `true` if the spec is the paper's ideal model.
    pub fn is_ideal(&self) -> bool {
        self.charge_efficiency == 1.0
            && self.discharge_efficiency == 1.0
            && self.leakage_power == 0.0
    }

    /// The storage-side draw serving `load`. Division by a unity
    /// efficiency is the IEEE identity, so the ideal-storage hot path
    /// skips the divide outright — same value, bit for bit.
    #[inline]
    fn draw(&self, load: f64) -> f64 {
        if self.discharge_efficiency == 1.0 {
            load
        } else {
            load / self.discharge_efficiency
        }
    }

    /// Net rate of change of the stored level when harvesting `harvest`
    /// and supplying `load` to the CPU, ignoring clamping.
    #[inline]
    pub fn net_rate(&self, harvest: f64, load: f64) -> f64 {
        self.charge_efficiency * harvest - self.draw(load) - self.leakage_power
    }

    /// Evolves the level from `level` across `[from, to)` under `profile`
    /// harvest and constant `load`, clamping to `[0, capacity]`, and
    /// accounting overflow / deficit / delivered energy exactly.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `[0, capacity]`, `load` is negative,
    /// or `to < from`.
    pub fn advance(
        &self,
        level: f64,
        profile: &PiecewiseConstant,
        from: SimTime,
        to: SimTime,
        load: f64,
    ) -> AdvanceReport {
        self.advance_with(&mut Cursor::default(), level, profile, from, to, load)
    }

    /// Like [`Self::advance`], threading a profile [`Cursor`] across
    /// calls. A simulator advancing storage across consecutive windows
    /// keeps each segment lookup amortized `O(1)` instead of paying a
    /// binary search per call. The report is bitwise-identical to
    /// [`Self::advance`] for any cursor state.
    #[allow(clippy::too_many_arguments)] // one scalar per physical input; the call sites read clearly
    pub fn advance_with(
        &self,
        cur: &mut Cursor,
        level: f64,
        profile: &PiecewiseConstant,
        from: SimTime,
        to: SimTime,
        load: f64,
    ) -> AdvanceReport {
        assert!(
            level >= 0.0 && level <= self.capacity,
            "level {level} outside [0, capacity]"
        );
        assert!(
            load >= 0.0 && load.is_finite(),
            "load must be finite and >= 0"
        );
        assert!(to >= from, "window must run forward");
        let mut report = AdvanceReport {
            level,
            ..AdvanceReport::default()
        };
        let mut segs = profile.segments_between_with(*cur, from, to);
        for seg in segs.by_ref() {
            self.advance_constant(&mut report, seg.value, seg.duration().as_units(), load);
        }
        *cur = segs.state();
        report
    }

    /// One constant-rate stretch; splits at internal clamp crossings.
    /// This is the per-segment kernel behind [`Self::advance_with`],
    /// public so batched engines can drive it directly from a fused
    /// segment walk (and so [`Self::advance_lanes`] can scalar-drain
    /// divergent lanes through the identical arithmetic).
    ///
    /// Level dynamics: `level' = η_c·harvest − load/η_d − leak` with
    /// clamping to `[0, capacity]`. Leakage applies only while the store
    /// is non-empty; if the net input exceeds the load but not the load
    /// plus leakage, the level chatters at zero, which in the fluid limit
    /// means it stays pinned there with the load fully served.
    pub fn advance_constant(
        &self,
        report: &mut AdvanceReport,
        harvest: f64,
        mut dt: f64,
        load: f64,
    ) {
        debug_assert!(dt >= 0.0);
        let input = self.charge_efficiency * harvest;
        let draw = self.draw(load);
        // A constant stretch settles after at most one clamp: move, then
        // pinned. Two iterations suffice.
        while dt > 0.0 {
            if report.level <= 0.0 && input - draw <= 0.0 {
                // Pinned empty with true shortfall: the load is served
                // only through the direct harvest path.
                let served = (input * self.discharge_efficiency).min(load);
                report.delivered += served * dt;
                report.deficit += (load - served) * dt;
                report.level = 0.0;
                report.clamped_empty = true;
                return;
            }
            let rate = input - draw - self.leakage_power;
            if report.level <= 0.0 && rate <= 0.0 {
                // Chatter regime: surplus over the load is eaten by
                // leakage the instant it is stored; level stays zero but
                // the load is fully served.
                report.delivered += load * dt;
                report.level = 0.0;
                report.clamped_empty = true;
                return;
            }
            if report.level >= self.capacity && rate >= 0.0 {
                // Pinned full: the net surplus is discarded.
                report.overflow += rate * dt;
                report.delivered += load * dt;
                report.clamped_full = true;
                return;
            }
            if rate == 0.0 {
                report.delivered += load * dt;
                return;
            }
            // Strictly moving; at most one clamp ahead. Guard against
            // float underflow when the level sits a few ulps off a
            // boundary: snap instead of spinning.
            let until_clamp = if rate > 0.0 {
                (self.capacity - report.level) / rate
            } else {
                report.level / -rate
            };
            if until_clamp <= BOUNDARY_SNAP / rate.abs() {
                report.level = if rate > 0.0 { self.capacity } else { 0.0 };
                continue;
            }
            let step = dt.min(until_clamp);
            report.level = snap(report.level + rate * step, self.capacity);
            report.delivered += load * step;
            dt -= step;
        }
    }

    /// Advances a batch of lanes, each across its own constant-harvest
    /// stretch, accumulating into the per-lane reports.
    ///
    /// Lanes whose level provably stays strictly inside `(0, capacity)`
    /// for the whole stretch (and clear of the boundary-snap guard) take
    /// a select-based fast path over the lane arrays — no per-lane
    /// clamp/overflow branching, so the loop stays SIMD-friendly. The
    /// rest scalar-drain through [`Self::advance_constant`]. Both paths
    /// evaluate the scalar expressions verbatim, so every report is
    /// bit-identical to a per-lane scalar advance (pinned by the
    /// `lanes_match_scalar_advance` property test).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn advance_lanes(
        &self,
        reports: &mut [AdvanceReport],
        harvest: &[f64],
        dt: &[f64],
        load: &[f64],
    ) {
        assert_eq!(reports.len(), harvest.len(), "lane slices must match");
        assert_eq!(reports.len(), dt.len(), "lane slices must match");
        assert_eq!(reports.len(), load.len(), "lane slices must match");
        for (((report, &harvest), &dt), &load) in reports.iter_mut().zip(harvest).zip(dt).zip(load)
        {
            let input = self.charge_efficiency * harvest;
            let draw = self.draw(load);
            let rate = input - draw - self.leakage_power;
            // Fast-path screen: a strictly interior level that cannot
            // reach a clamp (or trip the underflow snap) within `dt`
            // takes exactly one moving step of the scalar loop.
            let interior = report.level > 0.0 && report.level < self.capacity && dt > 0.0;
            let fast = interior
                && (rate == 0.0 || {
                    let until_clamp = if rate > 0.0 {
                        (self.capacity - report.level) / rate
                    } else {
                        report.level / -rate
                    };
                    until_clamp > dt && until_clamp > BOUNDARY_SNAP / rate.abs()
                });
            if fast {
                // Mirrors one interior iteration of `advance_constant`:
                // the load is fully served and the level moves by
                // `rate·dt`, snapped. The scalar `rate == 0` arm skips
                // the snap, so replicate that with a select.
                let stepped = snap(report.level + rate * dt, self.capacity);
                report.level = if rate == 0.0 { report.level } else { stepped };
                report.delivered += load * dt;
            } else {
                self.advance_constant(report, harvest, dt, load);
            }
        }
    }

    /// Earliest instant in `[from, horizon)` at which the level first
    /// reaches `target` under `profile` harvest and constant `load`
    /// (storage clamped along the way). `None` if it never does.
    ///
    /// For ideal storage this is a thin wrapper over the exact
    /// piecewise-linear solve; non-ideal specs account for efficiency and
    /// leakage.
    ///
    /// # Panics
    ///
    /// Panics if `level` or `target` fall outside `[0, capacity]`.
    pub fn first_crossing(
        &self,
        level: f64,
        target: f64,
        profile: &PiecewiseConstant,
        from: SimTime,
        horizon: SimTime,
        load: f64,
    ) -> Option<SimTime> {
        self.first_crossing_with(
            &mut Cursor::default(),
            level,
            target,
            profile,
            from,
            horizon,
            load,
        )
    }

    /// Like [`Self::first_crossing`], threading a profile [`Cursor`]
    /// across calls (see [`Self::advance_with`]). The answer is identical
    /// for any cursor state.
    #[allow(clippy::too_many_arguments)] // one scalar per physical input; the call sites read clearly
    pub fn first_crossing_with(
        &self,
        pcur: &mut Cursor,
        level: f64,
        target: f64,
        profile: &PiecewiseConstant,
        from: SimTime,
        horizon: SimTime,
        load: f64,
    ) -> Option<SimTime> {
        assert!(
            level >= 0.0 && level <= self.capacity,
            "level outside [0, capacity]"
        );
        assert!(
            target >= 0.0 && target <= self.capacity,
            "target outside [0, capacity]"
        );
        if level == target {
            return Some(from);
        }
        // Ideal storage: the level follows the clamped accumulation of
        // `harvest − load` exactly, so the kernel's prefix-sum crossing
        // solver applies directly (O(log) on monotone windows). Non-ideal
        // specs fall through to the mirrored segment scan.
        if self.is_ideal() && self.capacity.is_finite() {
            return profile.first_accumulation_crossing_with(
                pcur,
                from,
                horizon,
                level,
                -load,
                self.capacity,
                target,
            );
        }
        let mut cur = level;
        let mut segs = profile.segments_between_with(*pcur, from, horizon);
        let result = 'scan: {
            for seg in segs.by_ref() {
                let input = self.charge_efficiency * seg.value;
                let draw = self.draw(load);
                let mut t = seg.start.as_units();
                let end = seg.end.as_units();
                // Mirror `advance_constant`: at most one moving phase and
                // one pinned phase per segment.
                while t < end {
                    let pinned_empty = cur <= 0.0
                        && (input - draw <= 0.0 || input - draw - self.leakage_power <= 0.0);
                    let rate = input - draw - self.leakage_power;
                    let pinned_full = cur >= self.capacity && rate >= 0.0;
                    if pinned_empty || pinned_full || rate == 0.0 {
                        break; // level holds for the rest of the segment
                    }
                    let until_clamp = if rate > 0.0 {
                        (self.capacity - cur) / rate
                    } else {
                        cur / -rate
                    };
                    if until_clamp <= BOUNDARY_SNAP / rate.abs() {
                        // A few ulps from the boundary: snap; the pinned
                        // check above ends the phase next iteration.
                        cur = if rate > 0.0 { self.capacity } else { 0.0 };
                        if cur == target {
                            break 'scan Some(
                                SimTime::from_units_ceil(t).max(seg.start).min(seg.end),
                            );
                        }
                        continue;
                    }
                    let step = (end - t).min(until_clamp);
                    let crosses = if rate > 0.0 {
                        target > cur && target <= cur + rate * step + 1e-15
                    } else {
                        target < cur && target >= cur + rate * step - 1e-15
                    };
                    if crosses {
                        let dt = (target - cur) / rate;
                        let hit = SimTime::from_units_ceil(t + dt);
                        break 'scan Some(hit.max(seg.start).min(seg.end));
                    }
                    cur = snap(cur + rate * step, self.capacity);
                    t += step;
                }
            }
            None
        };
        *pcur = segs.state();
        result
    }
}

/// Live storage state: a [`StorageSpec`] plus the current level.
///
/// # Examples
///
/// ```
/// use harvest_energy::storage::{Storage, StorageSpec};
///
/// let mut s = Storage::full(StorageSpec::ideal(100.0));
/// assert_eq!(s.level(), 100.0);
/// s.set_level(40.0);
/// assert_eq!(s.headroom(), 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Storage {
    spec: StorageSpec,
    level: f64,
}

impl Storage {
    /// Creates storage at the given initial level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `[0, capacity]`.
    pub fn new(spec: StorageSpec, level: f64) -> Self {
        assert!(
            level >= 0.0 && level <= spec.capacity(),
            "initial level {level} outside [0, {}]",
            spec.capacity()
        );
        Storage { spec, level }
    }

    /// Creates storage filled to capacity (the paper starts every
    /// simulation with a full store, §5.1). Infinite-capacity specs
    /// start at level 0 — with unbounded storage the level never
    /// constrains anything, and 0 keeps the arithmetic finite.
    pub fn full(spec: StorageSpec) -> Self {
        let level = if spec.is_infinite() {
            0.0
        } else {
            spec.capacity()
        };
        Storage { spec, level }
    }

    /// The static parameters.
    pub fn spec(&self) -> &StorageSpec {
        &self.spec
    }

    /// Current stored energy `EC(t)`.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Remaining room before the store is full (infinite for unbounded
    /// storage).
    pub fn headroom(&self) -> f64 {
        self.spec.capacity() - self.level
    }

    /// Overwrites the level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `[0, capacity]`.
    pub fn set_level(&mut self, level: f64) {
        assert!(
            level >= 0.0 && level <= self.spec.capacity(),
            "level {level} outside [0, {}]",
            self.spec.capacity()
        );
        self.level = level;
    }

    /// Advances the level across `[from, to)` (see
    /// [`StorageSpec::advance`]) and returns the report.
    pub fn advance(
        &mut self,
        profile: &PiecewiseConstant,
        from: SimTime,
        to: SimTime,
        load: f64,
    ) -> AdvanceReport {
        self.advance_with(&mut Cursor::default(), profile, from, to, load)
    }

    /// Cursor-threaded variant of [`Self::advance`] (see
    /// [`StorageSpec::advance_with`]).
    pub fn advance_with(
        &mut self,
        cur: &mut Cursor,
        profile: &PiecewiseConstant,
        from: SimTime,
        to: SimTime,
        load: f64,
    ) -> AdvanceReport {
        let report = self
            .spec
            .advance_with(cur, self.level, profile, from, to, load);
        self.level = report.level;
        report
    }

    /// [`Self::advance_with`] that also hands every clipped segment of
    /// the walk to `each`, so a caller that needs the same segments for
    /// its own accounting (harvest integral, predictor observations)
    /// shares the single profile walk instead of re-clipping the window
    /// with a second cursor. Each accumulator still sees exactly the op
    /// sequence the separate walks would have produced — the advance
    /// arithmetic and the callback touch disjoint state — so results
    /// are bit-identical to `advance_with` plus a manual
    /// [`PiecewiseConstant::segments_between_with`] loop.
    pub fn advance_with_each(
        &mut self,
        cur: &mut Cursor,
        profile: &PiecewiseConstant,
        from: SimTime,
        to: SimTime,
        load: f64,
        mut each: impl FnMut(Segment),
    ) -> AdvanceReport {
        let mut report = AdvanceReport {
            level: self.level,
            ..AdvanceReport::default()
        };
        let mut segs = profile.segments_between_with(*cur, from, to);
        for seg in segs.by_ref() {
            self.spec
                .advance_constant(&mut report, seg.value, seg.duration().as_units(), load);
            each(seg);
        }
        *cur = segs.state();
        self.level = report.level;
        report
    }
}

/// Structure-of-arrays storage state for a batch of sibling trials
/// sharing one [`StorageSpec`]: per-lane levels plus reusable
/// [`AdvanceReport`] scratch, laid out as flat `f64`/report arrays so
/// [`StorageSpec::advance_lanes`] can sweep them without per-lane
/// indirection. [`Self::reset`] reuses the slabs across batches — no
/// reallocation once grown to the high-water lane count.
#[derive(Debug, Clone, Default)]
pub struct StorageLanes {
    levels: Vec<f64>,
    reports: Vec<AdvanceReport>,
}

impl StorageLanes {
    /// Empty holder; slabs grow on first [`Self::reset`].
    pub fn new() -> Self {
        StorageLanes::default()
    }

    /// Re-arms the holder for `lanes` lanes, all at `initial` level,
    /// reusing the existing slabs.
    pub fn reset(&mut self, lanes: usize, initial: f64) {
        self.levels.clear();
        self.levels.resize(lanes, initial);
        self.reports.clear();
        self.reports.resize(lanes, AdvanceReport::default());
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `true` when no lanes are armed.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Current level of one lane.
    pub fn level(&self, lane: usize) -> f64 {
        self.levels[lane]
    }

    /// Overwrites one lane's level.
    pub fn set_level(&mut self, lane: usize, level: f64) {
        self.levels[lane] = level;
    }

    /// All lane levels.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Seeds the report scratch from the lane levels (zeroed
    /// accumulators) and returns it for a [`StorageSpec::advance_lanes`]
    /// sweep. Call [`Self::commit_reports`] afterwards to fold the
    /// resulting levels back.
    pub fn begin_advance(&mut self) -> &mut [AdvanceReport] {
        for (report, &level) in self.reports.iter_mut().zip(&self.levels) {
            *report = AdvanceReport {
                level,
                ..AdvanceReport::default()
            };
        }
        &mut self.reports
    }

    /// The report scratch as last written (e.g. mid-walk, between
    /// segments of a fused sweep).
    pub fn reports(&mut self) -> &mut [AdvanceReport] {
        &mut self.reports
    }

    /// Copies the scratch reports' levels back into the lane levels.
    pub fn commit_reports(&mut self) {
        for (level, report) in self.levels.iter_mut().zip(&self.reports) {
            *level = report.level;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim::piecewise::Extension;
    use harvest_sim::time::SimDuration;

    fn u(x: i64) -> SimTime {
        SimTime::from_whole_units(x)
    }

    fn profile(vals: Vec<f64>) -> PiecewiseConstant {
        PiecewiseConstant::from_samples(
            SimTime::ZERO,
            SimDuration::from_whole_units(10),
            vals,
            Extension::Hold,
        )
        .unwrap()
    }

    #[test]
    fn idle_charging_accumulates_exactly() {
        let spec = StorageSpec::ideal(100.0);
        let r = spec.advance(10.0, &profile(vec![2.0]), u(0), u(10), 0.0);
        assert_eq!(r.level, 30.0);
        assert_eq!(r.overflow, 0.0);
        assert_eq!(r.deficit, 0.0);
        assert!(!r.clamped_empty && !r.clamped_full);
    }

    #[test]
    fn clamp_flags_mark_boundary_windows() {
        let spec = StorageSpec::ideal(10.0);
        // Charges 2.0/unit from half full: pins at capacity mid-window.
        let full = spec.advance(5.0, &profile(vec![2.0]), u(0), u(10), 0.0);
        assert_eq!(full.level, 10.0);
        assert!(full.clamped_full);
        assert!(!full.clamped_empty);
        // Drains under zero harvest: pins at empty mid-window.
        let empty = spec.advance(5.0, &profile(vec![0.0]), u(0), u(10), 1.0);
        assert_eq!(empty.level, 0.0);
        assert!(empty.clamped_empty);
        assert!(!empty.clamped_full);
    }

    #[test]
    fn overflow_is_discarded_and_accounted() {
        let spec = StorageSpec::ideal(20.0);
        // Start at 15, harvest 2.0 for 10 units: fills at t=2.5,
        // overflow 2.0 * 7.5 = 15.
        let r = spec.advance(15.0, &profile(vec![2.0]), u(0), u(10), 0.0);
        assert_eq!(r.level, 20.0);
        assert!((r.overflow - 15.0).abs() < 1e-9);
    }

    #[test]
    fn discharge_under_load() {
        let spec = StorageSpec::ideal(100.0);
        // harvest 0.5, load 8 → net −7.5 over 2 units = −15.
        let r = spec.advance(50.0, &profile(vec![0.5]), u(0), u(2), 8.0);
        assert!((r.level - 35.0).abs() < 1e-9);
        assert!((r.delivered - 16.0).abs() < 1e-9);
        assert_eq!(r.deficit, 0.0);
    }

    #[test]
    fn depletion_registers_deficit() {
        let spec = StorageSpec::ideal(100.0);
        // level 10, harvest 0, load 5 → empty at t=2; 3 more units of
        // load unserved → deficit 15.
        let r = spec.advance(10.0, &profile(vec![0.0]), u(0), u(5), 5.0);
        assert_eq!(r.level, 0.0);
        assert!((r.deficit - 15.0).abs() < 1e-9);
        assert!((r.delivered - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_store_serves_direct_harvest_path() {
        let spec = StorageSpec::ideal(100.0);
        // Empty store, harvest 2, load 5: 2 delivered directly, 3 deficit
        // per unit time.
        let r = spec.advance(0.0, &profile(vec![2.0]), u(0), u(10), 5.0);
        assert_eq!(r.level, 0.0);
        assert!((r.delivered - 20.0).abs() < 1e-9);
        assert!((r.deficit - 30.0).abs() < 1e-9);
    }

    #[test]
    fn multi_segment_advance() {
        let spec = StorageSpec::ideal(1000.0);
        // Segments: 2.0 on [0,10), 0.0 on [10,20). Load 1.
        let r = spec.advance(5.0, &profile(vec![2.0, 0.0]), u(0), u(20), 1.0);
        // [0,10): +1/unit → 15. [10,20): −1/unit → 5.
        assert!((r.level - 5.0).abs() < 1e-9);
    }

    #[test]
    fn charge_efficiency_taxes_input() {
        let spec = StorageSpec::ideal(100.0).with_charge_efficiency(0.5);
        let r = spec.advance(0.0, &profile(vec![4.0]), u(0), u(10), 0.0);
        assert!((r.level - 20.0).abs() < 1e-9);
    }

    #[test]
    fn discharge_efficiency_taxes_output() {
        let spec = StorageSpec::ideal(100.0).with_discharge_efficiency(0.5);
        // Supplying load 2 drains 4/unit.
        let r = spec.advance(40.0, &profile(vec![0.0]), u(0), u(5), 2.0);
        assert!((r.level - 20.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_drains_but_stops_at_zero() {
        let spec = StorageSpec::ideal(100.0).with_leakage_power(1.0);
        let r = spec.advance(5.0, &profile(vec![0.0]), u(0), u(10), 0.0);
        assert_eq!(r.level, 0.0);
        assert_eq!(r.deficit, 0.0, "no load, no deficit");
    }

    #[test]
    fn first_crossing_depletion() {
        let spec = StorageSpec::ideal(100.0);
        // level 16, harvest 0.5, load 8 → net −7.5; zero at 16/7.5 ≈ 2.1333.
        let t = spec
            .first_crossing(16.0, 0.0, &profile(vec![0.5]), u(0), u(100), 8.0)
            .unwrap();
        assert!((t.as_units() - 16.0 / 7.5).abs() < 1e-5);
    }

    #[test]
    fn first_crossing_fill() {
        let spec = StorageSpec::ideal(30.0);
        let t = spec
            .first_crossing(10.0, 30.0, &profile(vec![2.0]), u(0), u(100), 0.0)
            .unwrap();
        assert_eq!(t, u(10));
    }

    #[test]
    fn first_crossing_not_reached() {
        let spec = StorageSpec::ideal(100.0);
        assert_eq!(
            spec.first_crossing(10.0, 50.0, &profile(vec![0.0]), u(0), u(100), 0.0),
            None
        );
    }

    #[test]
    fn infinite_storage_never_overflows() {
        let spec = StorageSpec::infinite();
        let r = spec.advance(0.0, &profile(vec![5.0]), u(0), u(10), 0.0);
        assert_eq!(r.level, 50.0);
        assert_eq!(r.overflow, 0.0);
        assert!(spec.is_infinite());
    }

    #[test]
    fn storage_wrapper_tracks_level() {
        let mut s = Storage::full(StorageSpec::ideal(50.0));
        assert_eq!(s.level(), 50.0);
        let r = s.advance(&profile(vec![0.0]), u(0), u(2), 5.0);
        assert_eq!(r.level, 40.0);
        assert_eq!(s.level(), 40.0);
        assert_eq!(s.headroom(), 10.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn storage_rejects_over_capacity_level() {
        let _ = Storage::new(StorageSpec::ideal(10.0), 11.0);
    }

    #[test]
    fn ideal_flag() {
        assert!(StorageSpec::ideal(10.0).is_ideal());
        assert!(!StorageSpec::ideal(10.0).with_leakage_power(0.1).is_ideal());
    }

    #[test]
    fn lanes_match_scalar_advance() {
        // Property: `advance_lanes` is bit-identical to driving each
        // lane through `advance_constant`, across random specs and
        // boundary-adjacent levels (both screen outcomes exercised).
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for case in 0..200 {
            let capacity = 1.0 + rng() * 200.0;
            let mut spec = StorageSpec::ideal(capacity);
            if case % 3 == 1 {
                spec = spec
                    .with_charge_efficiency(0.5 + rng() * 0.5)
                    .with_discharge_efficiency(0.5 + rng() * 0.5);
            } else if case % 3 == 2 {
                spec = spec.with_leakage_power(rng() * 0.5);
            }
            let lanes = 16;
            let mut levels = Vec::with_capacity(lanes);
            let mut harvest = Vec::with_capacity(lanes);
            let mut dt = Vec::with_capacity(lanes);
            let mut load = Vec::with_capacity(lanes);
            for lane in 0..lanes {
                levels.push(match lane % 5 {
                    0 => 0.0,
                    1 => capacity,
                    2 => (rng() * BOUNDARY_SNAP).min(capacity),
                    3 => (capacity - rng() * BOUNDARY_SNAP).max(0.0),
                    _ => rng() * capacity,
                });
                harvest.push(rng() * 4.0);
                dt.push(if lane % 7 == 0 { 0.0 } else { rng() * 10.0 });
                load.push(if lane % 4 == 0 { 0.0 } else { rng() * 6.0 });
            }
            let mut batched: Vec<AdvanceReport> = levels
                .iter()
                .map(|&level| AdvanceReport {
                    level,
                    ..AdvanceReport::default()
                })
                .collect();
            spec.advance_lanes(&mut batched, &harvest, &dt, &load);
            for lane in 0..lanes {
                let mut scalar = AdvanceReport {
                    level: levels[lane],
                    ..AdvanceReport::default()
                };
                spec.advance_constant(&mut scalar, harvest[lane], dt[lane], load[lane]);
                let b = &batched[lane];
                assert_eq!(b.level.to_bits(), scalar.level.to_bits(), "lane {lane}");
                assert_eq!(b.overflow.to_bits(), scalar.overflow.to_bits());
                assert_eq!(b.deficit.to_bits(), scalar.deficit.to_bits());
                assert_eq!(b.delivered.to_bits(), scalar.delivered.to_bits());
                assert_eq!(b.clamped_empty, scalar.clamped_empty);
                assert_eq!(b.clamped_full, scalar.clamped_full);
            }
        }
    }

    #[test]
    fn storage_lanes_round_trip() {
        let spec = StorageSpec::ideal(50.0);
        let mut lanes = StorageLanes::new();
        lanes.reset(4, 20.0);
        assert_eq!(lanes.len(), 4);
        lanes.set_level(2, 5.0);
        let harvest = [2.0, 0.0, 0.0, 3.0];
        let dt = [1.0, 1.0, 1.0, 1.0];
        let load = [0.0, 4.0, 7.0, 1.0];
        {
            let reports = lanes.begin_advance();
            spec.advance_lanes(reports, &harvest, &dt, &load);
        }
        lanes.commit_reports();
        assert_eq!(lanes.level(0), 22.0);
        assert_eq!(lanes.level(1), 16.0);
        assert_eq!(lanes.level(2), 0.0);
        assert_eq!(lanes.level(3), 22.0);
        // Reset reuses the slabs and re-arms every lane.
        lanes.reset(4, 50.0);
        assert_eq!(lanes.levels(), &[50.0; 4]);
    }

    #[test]
    fn paper_motivational_numbers() {
        // §2: EC(0)=24, Ps=0.5 constant, Pmax=8. LSA runs τ1 over
        // [12,16): energy 24 + 12·0.5 (idle charge) … capacity large.
        let spec = StorageSpec::ideal(1_000.0);
        let prof = profile(vec![0.5, 0.5, 0.5]);
        // Idle [0,12): level 24 + 6 = 30.
        let r1 = spec.advance(24.0, &prof, u(0), u(12), 0.0);
        assert!((r1.level - 30.0).abs() < 1e-9);
        // Run [12,16) at 8: net −7.5 × 4 = −30 → exactly 0 (paper:
        // "depletes all energy exactly at time 16").
        let r2 = spec.advance(r1.level, &prof, u(12), u(16), 8.0);
        assert!(r2.level.abs() < 1e-9);
        assert_eq!(r2.deficit, 0.0);
    }
}
