//! Minimal random-sampling helpers.
//!
//! The workspace deliberately avoids a distributions crate; the only
//! non-uniform draw the models need is a standard normal, implemented
//! here with the Box–Muller transform.

use rand::Rng;

/// Draws one standard-normal sample `N(0, 1)` via Box–Muller.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = harvest_energy::rand_util::standard_normal(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so the logarithm is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Advances a SplitMix64 state and returns the next 64-bit output.
///
/// This is the generator behind the deterministic fault plans: it is
/// tiny, stateless beyond one `u64`, and produces the same stream on
/// every platform, so a `(seed, intensity)` pair always yields the
/// same faults.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit hash to a uniform value in `[0, 1)`.
///
/// Uses the top 53 bits so the result is exactly representable and the
/// mapping is identical everywhere.
pub fn unit_from_bits(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }

    #[test]
    fn splitmix_streams_replay() {
        let mut a = 7u64;
        let mut b = 7u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn unit_from_bits_stays_in_unit_interval() {
        let mut s = 99u64;
        for _ in 0..1000 {
            let u = unit_from_bits(splitmix64(&mut s));
            assert!((0.0..1.0).contains(&u), "{u}");
        }
        assert_eq!(unit_from_bits(0), 0.0);
        assert!(unit_from_bits(u64::MAX) < 1.0);
    }
}
