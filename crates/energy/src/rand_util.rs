//! Minimal random-sampling helpers.
//!
//! The workspace deliberately avoids a distributions crate; the only
//! non-uniform draw the models need is a standard normal, implemented
//! here with the Box–Muller transform.

use rand::Rng;

/// Draws one standard-normal sample `N(0, 1)` via Box–Muller.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = harvest_energy::rand_util::standard_normal(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so the logarithm is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
