//! Property-based tests of sources, predictors, and storage evolution.

use harvest_energy::predictor::{
    EnergyPredictor, EwmaSlotPredictor, MovingAveragePredictor, OraclePredictor,
    PersistencePredictor,
};
use harvest_energy::source::{sample_profile, HarvestSource};
use harvest_energy::sources::{ConstantSource, DayNightSource, SolarModel};
use harvest_energy::storage::StorageSpec;
use harvest_sim::piecewise::{Extension, PiecewiseConstant, Segment};
use harvest_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = PiecewiseConstant> {
    (proptest::collection::vec(0.0f64..8.0, 1..30), 1i64..4).prop_map(|(values, dt)| {
        PiecewiseConstant::from_samples(
            SimTime::ZERO,
            SimDuration::from_whole_units(dt),
            values,
            Extension::Hold,
        )
        .expect("valid grid")
    })
}

proptest! {
    /// Ideal storage advance conserves energy exactly:
    /// Δlevel = harvested − delivered − overflow (deficit is demand that
    /// was never served, so it does not enter).
    #[test]
    fn ideal_advance_conserves_energy(
        profile in profile_strategy(),
        level_frac in 0.0f64..1.0,
        load in 0.0f64..6.0,
        span in 1i64..200,
    ) {
        let cap = 25.0;
        let spec = StorageSpec::ideal(cap);
        let level = level_frac * cap;
        let to = SimTime::from_whole_units(span);
        let report = spec.advance(level, &profile, SimTime::ZERO, to, load);
        let harvested = profile.integrate(SimTime::ZERO, to);
        let lhs = report.level - level;
        let rhs = harvested - report.delivered - report.overflow;
        prop_assert!((lhs - rhs).abs() < 1e-6,
            "Δlevel {lhs} vs flow balance {rhs} ({report:?})");
        prop_assert!(report.level >= 0.0 && report.level <= cap);
        prop_assert!(report.delivered >= -1e-12 && report.overflow >= -1e-12);
        prop_assert!(report.deficit >= -1e-12);
        // Demand accounting: delivered + deficit = load · span.
        let demand = load * span as f64;
        prop_assert!((report.delivered + report.deficit - demand).abs() < 1e-6);
    }

    /// Splitting an advance window at any interior point gives the same
    /// final level and totals as one call.
    #[test]
    fn advance_is_window_compositional(
        profile in profile_strategy(),
        level_frac in 0.0f64..1.0,
        load in 0.0f64..6.0,
        cut in 1i64..100,
        rest in 1i64..100,
    ) {
        let cap = 25.0;
        let spec = StorageSpec::ideal(cap);
        let level = level_frac * cap;
        let mid = SimTime::from_whole_units(cut);
        let end = SimTime::from_whole_units(cut + rest);
        let whole = spec.advance(level, &profile, SimTime::ZERO, end, load);
        let first = spec.advance(level, &profile, SimTime::ZERO, mid, load);
        let second = spec.advance(first.level, &profile, mid, end, load);
        prop_assert!((whole.level - second.level).abs() < 1e-6);
        prop_assert!((whole.delivered - (first.delivered + second.delivered)).abs() < 1e-6);
        prop_assert!((whole.overflow - (first.overflow + second.overflow)).abs() < 1e-6);
        prop_assert!((whole.deficit - (first.deficit + second.deficit)).abs() < 1e-6);
    }

    /// first_crossing agrees with advance: evolving to the reported
    /// instant lands on the target level (within tick rounding).
    #[test]
    fn first_crossing_agrees_with_advance(
        profile in profile_strategy(),
        level_frac in 0.01f64..0.99,
        target_frac in 0.0f64..1.0,
        load in 0.0f64..6.0,
    ) {
        let cap = 25.0;
        let spec = StorageSpec::ideal(cap);
        let level = level_frac * cap;
        let target = target_frac * cap;
        let horizon = SimTime::from_whole_units(300);
        if let Some(t) = spec.first_crossing(level, target, &profile, SimTime::ZERO, horizon, load)
        {
            let at = spec.advance(level, &profile, SimTime::ZERO, t, load);
            let max_rate = profile.domain_max() + load + 1.0;
            prop_assert!((at.level - target).abs() <= 2.0 * max_rate / 1e6 + 1e-9,
                "level {} vs target {target} at {t}", at.level);
        }
    }

    /// Non-ideal storage never outperforms ideal storage: same window,
    /// same load → the lossy store ends no fuller and delivers no more.
    #[test]
    fn losses_never_help(
        profile in profile_strategy(),
        level_frac in 0.0f64..1.0,
        load in 0.0f64..6.0,
        span in 1i64..150,
        eta in 0.5f64..1.0,
    ) {
        let cap = 25.0;
        let ideal = StorageSpec::ideal(cap);
        let lossy = StorageSpec::ideal(cap)
            .with_charge_efficiency(eta)
            .with_discharge_efficiency(eta);
        let level = level_frac * cap;
        let to = SimTime::from_whole_units(span);
        let a = ideal.advance(level, &profile, SimTime::ZERO, to, load);
        let b = lossy.advance(level, &profile, SimTime::ZERO, to, load);
        prop_assert!(b.level <= a.level + 1e-9, "lossy {} vs ideal {}", b.level, a.level);
        prop_assert!(b.delivered <= a.delivered + 1e-9);
    }

    /// Sampled source realizations are non-negative, finite, and
    /// deterministic per seed.
    #[test]
    fn sampling_is_sane(seed in 0u64..500, amplitude in 0.5f64..20.0) {
        let mut model = SolarModel::new(amplitude, 100.0);
        let horizon = SimDuration::from_whole_units(200);
        let dt = SimDuration::from_whole_units(1);
        let a = sample_profile(&mut model, SimTime::ZERO, horizon, dt, seed).unwrap();
        let mut model2 = SolarModel::new(amplitude, 100.0);
        let b = sample_profile(&mut model2, SimTime::ZERO, horizon, dt, seed).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.domain_min() >= 0.0);
        prop_assert!(a.domain_max().is_finite());
    }

    /// Every predictor returns finite non-negative energies that grow
    /// (weakly) with the window.
    #[test]
    fn predictions_are_monotone_in_window(
        observations in proptest::collection::vec(0.0f64..5.0, 1..30),
        w1 in 0i64..100,
        w2 in 0i64..100,
    ) {
        let (short, long) = (w1.min(w2), w1.max(w2));
        let profile = PiecewiseConstant::from_samples(
            SimTime::ZERO,
            SimDuration::from_whole_units(1),
            observations.clone(),
            Extension::Hold,
        ).unwrap();
        let now = SimTime::from_whole_units(observations.len() as i64);
        let mut predictors: Vec<Box<dyn EnergyPredictor>> = vec![
            Box::new(OraclePredictor::new(profile.clone())),
            Box::new(PersistencePredictor::new()),
            Box::new(MovingAveragePredictor::new(SimDuration::from_whole_units(10))),
            Box::new(EwmaSlotPredictor::new(SimDuration::from_whole_units(20), 4, 0.5)),
        ];
        for p in &mut predictors {
            for (i, &v) in observations.iter().enumerate() {
                p.observe(Segment {
                    start: SimTime::from_whole_units(i as i64),
                    end: SimTime::from_whole_units(i as i64 + 1),
                    value: v,
                });
            }
            let e_short = p.predict_energy(now, now + SimDuration::from_whole_units(short));
            let e_long = p.predict_energy(now, now + SimDuration::from_whole_units(long));
            prop_assert!(e_short.is_finite() && e_short >= 0.0, "{}", p.name());
            prop_assert!(e_long + 1e-9 >= e_short,
                "{}: window {short} gives {e_short}, window {long} gives {e_long}",
                p.name());
        }
    }

    /// Day/night sources repeat exactly with their cycle.
    #[test]
    fn daynight_is_periodic(t in 0i64..10_000, day in 1i64..50, cycle_extra in 1i64..50) {
        let cycle = day + cycle_extra;
        let mut src = DayNightSource::new(
            5.0,
            0.5,
            SimDuration::from_whole_units(cycle),
            SimDuration::from_whole_units(day),
        );
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
        let a = src.draw(SimTime::from_whole_units(t), &mut rng);
        let b = src.draw(SimTime::from_whole_units(t + cycle), &mut rng);
        prop_assert_eq!(a, b);
    }

    /// Constant sources integrate to power × span through the whole
    /// sampling pipeline.
    #[test]
    fn constant_source_round_trip(power in 0.0f64..10.0, span in 1i64..500) {
        let profile = sample_profile(
            &mut ConstantSource::new(power),
            SimTime::ZERO,
            SimDuration::from_whole_units(span),
            SimDuration::from_whole_units(1),
            7,
        ).unwrap();
        let e = profile.integrate(SimTime::ZERO, SimTime::from_whole_units(span));
        prop_assert!((e - power * span as f64).abs() < 1e-9 * (1.0 + e.abs()));
    }
}
