//! Property-based tests of the DVFS processor model.

use harvest_cpu::{CpuModel, FrequencyLevel, PowerLaw};
use proptest::prelude::*;

/// Random valid CPU: strictly increasing frequencies and powers.
fn cpu_strategy() -> impl Strategy<Value = CpuModel> {
    proptest::collection::vec((1.0f64..100.0, 0.01f64..2.0), 1..8).prop_map(|steps| {
        let mut f = 0.0;
        let mut p = 0.0;
        let levels = steps
            .into_iter()
            .map(|(df, dp)| {
                f += df;
                p += dp;
                FrequencyLevel::new(f, p)
            })
            .collect();
        CpuModel::new(levels).expect("construction is valid by strategy")
    })
}

proptest! {
    /// Speeds are normalized: increasing in level and exactly 1 at the
    /// top.
    #[test]
    fn speeds_are_normalized(cpu in cpu_strategy()) {
        let max = cpu.max_level();
        prop_assert!((cpu.speed(max) - 1.0).abs() < 1e-12);
        for n in 0..max {
            prop_assert!(cpu.speed(n) < cpu.speed(n + 1));
            prop_assert!(cpu.speed(n) > 0.0);
        }
    }

    /// `min_feasible_level` returns the *slowest* feasible level: it is
    /// feasible, and every slower level is not.
    #[test]
    fn min_feasible_level_is_minimal(
        cpu in cpu_strategy(),
        work in 0.01f64..50.0,
        window in 0.0f64..100.0,
    ) {
        match cpu.min_feasible_level(work, window) {
            Some(n) => {
                prop_assert!(cpu.execution_time(work, n) <= window * (1.0 + 1e-9) + 1e-9);
                if n > 0 {
                    prop_assert!(cpu.execution_time(work, n - 1) > window,
                        "level {} would also fit", n - 1);
                }
            }
            None => {
                prop_assert!(cpu.execution_time(work, cpu.max_level()) > window);
            }
        }
    }

    /// Feasibility is monotone in the window: enlarging the window never
    /// forces a faster level.
    #[test]
    fn feasible_level_monotone_in_window(
        cpu in cpu_strategy(),
        work in 0.01f64..50.0,
        w1 in 0.0f64..100.0,
        extra in 0.0f64..100.0,
    ) {
        let small = cpu.min_feasible_level(work, w1);
        let large = cpu.min_feasible_level(work, w1 + extra);
        match (small, large) {
            (Some(a), Some(b)) => prop_assert!(b <= a),
            (Some(_), None) => prop_assert!(false, "larger window lost feasibility"),
            _ => {}
        }
    }

    /// Execution time × speed returns the work; energy = power × time.
    #[test]
    fn execution_identities(
        cpu in cpu_strategy(),
        work in 0.0f64..50.0,
        n_seed in 0usize..8,
    ) {
        let n = n_seed % cpu.level_count();
        let t = cpu.execution_time(work, n);
        prop_assert!((t * cpu.speed(n) - work).abs() < 1e-9 * (1.0 + work));
        let e = cpu.execution_energy(work, n);
        prop_assert!((e - cpu.power(n) * t).abs() < 1e-9 * (1.0 + e));
    }

    /// Cubic power laws make slowing down always profitable: energy per
    /// work decreases with the level.
    #[test]
    fn cubic_law_rewards_slowdown(levels in 2usize..12, peak in 0.5f64..10.0) {
        let cpu = PowerLaw::cubic(peak).build_model(1000.0, levels).unwrap();
        for n in 0..cpu.max_level() {
            let slow = cpu.execution_energy(1.0, n);
            let fast = cpu.execution_energy(1.0, n + 1);
            prop_assert!(slow < fast + 1e-12,
                "cubic law must reward slowdown ({slow} vs {fast})");
        }
    }

    /// Stretch saving is non-negative for convex (cubic) tables.
    #[test]
    fn stretch_saving_non_negative_for_cubic(
        levels in 2usize..10,
        work in 0.0f64..20.0,
        n_seed in 0usize..10,
    ) {
        let cpu = PowerLaw::cubic(3.2).build_model(1000.0, levels).unwrap();
        let n = n_seed % cpu.level_count();
        prop_assert!(cpu.stretch_saving(work, n) >= -1e-12);
    }
}
