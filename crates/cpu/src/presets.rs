//! Ready-made processor models.

use crate::level::FrequencyLevel;
use crate::model::CpuModel;

/// The paper's evaluation processor (§5.1): an Intel XScale-like part
/// with five operating points at 150/400/600/800/1000 MHz.
///
/// Powers follow the paper's 80/400/1000/2000/3200 mW table, expressed
/// in the workspace's watt-scale power units (0.08 … 3.2) so that they
/// are commensurate with the eq. 13 harvest source (mean ≈ 2 units);
/// see DESIGN.md, "Power units".
///
/// # Examples
///
/// ```
/// let cpu = harvest_cpu::presets::xscale();
/// assert_eq!(cpu.level_count(), 5);
/// assert_eq!(cpu.max_power(), 3.2);
/// assert!((cpu.speed(0) - 0.15).abs() < 1e-12);
/// ```
pub fn xscale() -> CpuModel {
    CpuModel::new(vec![
        FrequencyLevel::new(150.0, 0.08),
        FrequencyLevel::new(400.0, 0.4),
        FrequencyLevel::new(600.0, 1.0),
        FrequencyLevel::new(800.0, 2.0),
        FrequencyLevel::new(1000.0, 3.2),
    ])
    .expect("preset table is valid")
}

/// The two-speed processor of the paper's §2 motivational example:
/// "the high speed twice as fast as the low one, the power at high speed
/// 3 times as much" with `P_max = 8`.
pub fn two_speed_example() -> CpuModel {
    CpuModel::new(vec![
        FrequencyLevel::new(500.0, 8.0 / 3.0),
        FrequencyLevel::new(1000.0, 8.0),
    ])
    .expect("preset table is valid")
}

/// The processor of the paper's §4.3 over-stretching example (Fig. 3):
/// a quarter-speed level at power 1 alongside the full-speed level at
/// power 8.
pub fn quarter_speed_example() -> CpuModel {
    CpuModel::new(vec![
        FrequencyLevel::new(250.0, 1.0),
        FrequencyLevel::new(1000.0, 8.0),
    ])
    .expect("preset table is valid")
}

/// A single-speed processor (no DVFS) at the given power — what LSA
/// effectively assumes.
///
/// # Panics
///
/// Panics if `power` is not finite and positive.
pub fn single_speed(power: f64) -> CpuModel {
    CpuModel::new(vec![FrequencyLevel::new(1000.0, power)]).expect("single level is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xscale_matches_paper_table() {
        let cpu = xscale();
        let speeds: Vec<f64> = (0..5).map(|n| cpu.speed(n)).collect();
        assert_eq!(speeds, vec![0.15, 0.4, 0.6, 0.8, 1.0]);
        let powers: Vec<f64> = (0..5).map(|n| cpu.power(n)).collect();
        assert_eq!(powers, vec![0.08, 0.4, 1.0, 2.0, 3.2]);
    }

    #[test]
    fn two_speed_matches_section2() {
        let cpu = two_speed_example();
        assert_eq!(cpu.speed(0), 0.5);
        assert!((cpu.power(0) - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(cpu.max_power(), 8.0);
    }

    #[test]
    fn quarter_speed_matches_section43() {
        let cpu = quarter_speed_example();
        assert_eq!(cpu.speed(0), 0.25);
        assert_eq!(cpu.power(0), 1.0);
        assert_eq!(cpu.max_power(), 8.0);
    }

    #[test]
    fn single_speed_has_one_level() {
        let cpu = single_speed(3.2);
        assert_eq!(cpu.level_count(), 1);
        assert_eq!(cpu.speed(0), 1.0);
        assert_eq!(cpu.max_power(), 3.2);
    }

    #[test]
    fn xscale_energy_per_work_improves_at_low_speed() {
        let cpu = xscale();
        // Energy for 1 unit of work: P_n / S_n.
        let e_lo = cpu.execution_energy(1.0, 0);
        let e_hi = cpu.execution_energy(1.0, 4);
        assert!(
            e_lo < e_hi,
            "slowing down must save energy ({e_lo} vs {e_hi})"
        );
    }
}
