//! The DVFS processor model.

use std::fmt;

use harvest_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::level::FrequencyLevel;

/// Error constructing a [`CpuModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuModelError {
    /// No operating points were supplied.
    NoLevels,
    /// Frequencies were not strictly increasing.
    FrequenciesNotIncreasing {
        /// Index of the first offending level.
        index: usize,
    },
    /// Powers were not strictly increasing with frequency (a level that
    /// is both slower and hungrier would never be selected, so it is
    /// rejected as a configuration mistake).
    PowersNotIncreasing {
        /// Index of the first offending level.
        index: usize,
    },
    /// Idle power must be non-negative and below the lowest active power.
    InvalidIdlePower,
}

impl fmt::Display for CpuModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuModelError::NoLevels => write!(f, "processor needs at least one frequency level"),
            CpuModelError::FrequenciesNotIncreasing { index } => {
                write!(
                    f,
                    "frequencies must be strictly increasing (violated at level {index})"
                )
            }
            CpuModelError::PowersNotIncreasing { index } => {
                write!(
                    f,
                    "powers must be strictly increasing (violated at level {index})"
                )
            }
            CpuModelError::InvalidIdlePower => {
                write!(
                    f,
                    "idle power must be non-negative and below the lowest active power"
                )
            }
        }
    }
}

impl std::error::Error for CpuModelError {}

/// Index of an operating point within a [`CpuModel`], ordered from the
/// slowest (`0`) to the fastest level.
pub type LevelIndex = usize;

/// A DVFS-enabled processor with `N` discrete operating points
/// (paper §3.3): `f_min = f_1 < … < f_N = f_max`, with normalized speeds
/// `S_n = f_n / f_max` and active powers `P_1 < … < P_N = P_max`.
///
/// Work is measured in *full-speed time units*: a job with worst-case
/// execution time `w` at `f_max` needs `w / S_n` wall-clock units at
/// level `n`.
///
/// # Examples
///
/// ```
/// use harvest_cpu::{CpuModel, FrequencyLevel};
///
/// let cpu = CpuModel::new(vec![
///     FrequencyLevel::new(500.0, 8.0 / 3.0),
///     FrequencyLevel::new(1000.0, 8.0),
/// ])?;
/// assert_eq!(cpu.speed(0), 0.5);
/// assert_eq!(cpu.max_power(), 8.0);
/// // Minimum level that finishes 4 work units in a 16-unit window:
/// assert_eq!(cpu.min_feasible_level(4.0, 16.0), Some(0));
/// // …but 4 work units in 5 units need full speed:
/// assert_eq!(cpu.min_feasible_level(4.0, 5.0), Some(1));
/// # Ok::<(), harvest_cpu::CpuModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    levels: Vec<FrequencyLevel>,
    idle_power: f64,
    switch_overhead: SimDuration,
    switch_energy: f64,
    /// Bitmask of levels currently unavailable to the min-frequency
    /// search (fault injection); bit `n` set locks level `n`. The
    /// fastest level can never be locked, so full-speed fallback paths
    /// stay valid.
    locked_mask: u64,
}

impl CpuModel {
    /// Creates a model from operating points sorted by frequency.
    ///
    /// Idle power and DVFS switch overheads default to zero — the
    /// paper's assumptions (§5.1: "the overhead from voltage switching is
    /// assumed to be negligible").
    ///
    /// # Errors
    ///
    /// Returns [`CpuModelError`] if the list is empty or not strictly
    /// increasing in both frequency and power.
    pub fn new(levels: Vec<FrequencyLevel>) -> Result<Self, CpuModelError> {
        if levels.is_empty() {
            return Err(CpuModelError::NoLevels);
        }
        for (i, w) in levels.windows(2).enumerate() {
            if w[0].frequency >= w[1].frequency {
                return Err(CpuModelError::FrequenciesNotIncreasing { index: i + 1 });
            }
            if w[0].power >= w[1].power {
                return Err(CpuModelError::PowersNotIncreasing { index: i + 1 });
            }
        }
        Ok(CpuModel {
            levels,
            idle_power: 0.0,
            switch_overhead: SimDuration::ZERO,
            switch_energy: 0.0,
            locked_mask: 0,
        })
    }

    /// Sets the idle (sleep) power drawn while no job executes.
    ///
    /// # Errors
    ///
    /// Returns [`CpuModelError::InvalidIdlePower`] if `power` is
    /// negative, not finite, or at least the lowest active power.
    pub fn with_idle_power(mut self, power: f64) -> Result<Self, CpuModelError> {
        if !power.is_finite() || power < 0.0 || power >= self.levels[0].power {
            return Err(CpuModelError::InvalidIdlePower);
        }
        self.idle_power = power;
        Ok(self)
    }

    /// Sets a fixed time/energy cost per frequency switch.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative or not finite, or `overhead` is
    /// negative.
    pub fn with_switch_overhead(mut self, overhead: SimDuration, energy: f64) -> Self {
        assert!(
            energy.is_finite() && energy >= 0.0,
            "switch energy must be finite and >= 0"
        );
        assert!(
            overhead >= SimDuration::ZERO,
            "switch overhead must be non-negative"
        );
        self.switch_overhead = overhead;
        self.switch_energy = energy;
        self
    }

    /// Number of operating points `N`.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The operating points, slowest first.
    pub fn levels(&self) -> &[FrequencyLevel] {
        &self.levels
    }

    /// Index of the fastest level.
    pub fn max_level(&self) -> LevelIndex {
        self.levels.len() - 1
    }

    /// Normalized speed `S_n = f_n / f_max` of level `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn speed(&self, n: LevelIndex) -> f64 {
        self.levels[n].frequency / self.levels[self.max_level()].frequency
    }

    /// Active power `P_n` of level `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn power(&self, n: LevelIndex) -> f64 {
        self.levels[n].power
    }

    /// Maximum power `P_max` (at `f_max`).
    pub fn max_power(&self) -> f64 {
        self.levels[self.max_level()].power
    }

    /// Idle power.
    pub fn idle_power(&self) -> f64 {
        self.idle_power
    }

    /// Per-switch time overhead.
    pub fn switch_overhead(&self) -> SimDuration {
        self.switch_overhead
    }

    /// Per-switch energy overhead.
    pub fn switch_energy(&self) -> f64 {
        self.switch_energy
    }

    /// Bitmask of locked (fault-unavailable) levels.
    pub fn locked_mask(&self) -> u64 {
        self.locked_mask
    }

    /// `true` if level `n` is currently locked out by fault injection.
    pub fn is_level_locked(&self, n: LevelIndex) -> bool {
        n < 64 && self.locked_mask & (1 << n) != 0
    }

    /// Replaces the lockout mask (fault injection toggles this at
    /// window edges). Bits above the level range are ignored.
    ///
    /// # Panics
    ///
    /// Panics if the mask would lock the fastest level — that would
    /// leave full-speed fallback paths with no valid operating point.
    pub fn set_locked_mask(&mut self, mask: u64) {
        let max = self.max_level();
        assert!(
            max >= 64 || mask & (1 << max) == 0,
            "the fastest level cannot be locked out"
        );
        self.locked_mask = mask;
    }

    /// Wall-clock time to execute `work` full-speed units at level `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range or `work` is negative.
    pub fn execution_time(&self, work: f64, n: LevelIndex) -> f64 {
        assert!(work >= 0.0, "work must be non-negative");
        work / self.speed(n)
    }

    /// Energy to execute `work` full-speed units at level `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range or `work` is negative.
    pub fn execution_energy(&self, work: f64, n: LevelIndex) -> f64 {
        self.levels[n].energy_for_work(work, self.speed(n))
    }

    /// The slowest level that can still complete `work` full-speed units
    /// within a window of `window` time units — the minimization of
    /// paper eq. 6 (`w/S_n ≤ d − a`). `None` if even full speed cannot.
    ///
    /// Levels locked out by fault injection (see [`set_locked_mask`])
    /// are skipped, so a lockout forces the search onto the next faster
    /// available point.
    ///
    /// [`set_locked_mask`]: CpuModel::set_locked_mask
    ///
    /// # Panics
    ///
    /// Panics if `work` is negative.
    pub fn min_feasible_level(&self, work: f64, window: f64) -> Option<LevelIndex> {
        assert!(work >= 0.0, "work must be non-negative");
        if window < 0.0 {
            return None;
        }
        // Guard against float dust: a window equal to w/S within 1e-12
        // relative counts as feasible.
        let feasible = |n: LevelIndex| {
            let need = self.execution_time(work, n);
            need <= window || (need - window).abs() <= 1e-12 * need.max(1.0)
        };
        (0..self.levels.len()).find(|&n| !self.is_level_locked(n) && feasible(n))
    }

    /// Lane-vectorized [`Self::min_feasible_level`]: resolves paper
    /// eq. 6 for a batch of `(work, window)` lanes in one sweep over the
    /// level table, writing each lane's answer into `out`.
    ///
    /// The loop is level-major so the per-level speed is computed once
    /// and the inner lane loop is a branch-free select (no lane-dependent
    /// control flow), which the optimizer can unroll and vectorize. Each
    /// lane's feasibility test evaluates the exact scalar expressions
    /// (`work / S_n`, the same 1e-12 relative dust guard), so the result
    /// per lane is identical to the scalar call — pinned by the
    /// `lanes_match_scalar` test.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn min_feasible_level_lanes(
        &self,
        work: &[f64],
        window: &[f64],
        out: &mut [Option<LevelIndex>],
    ) {
        assert_eq!(work.len(), window.len(), "lane slices must match");
        assert_eq!(work.len(), out.len(), "lane slices must match");
        out.fill(None);
        for n in 0..self.levels.len() {
            if self.is_level_locked(n) {
                continue;
            }
            let speed = self.speed(n);
            for ((o, &w), &win) in out.iter_mut().zip(work).zip(window) {
                debug_assert!(w >= 0.0, "work must be non-negative");
                let need = w / speed;
                let feasible =
                    win >= 0.0 && (need <= win || (need - win).abs() <= 1e-12 * need.max(1.0));
                if o.is_none() && feasible {
                    *o = Some(n);
                }
            }
        }
    }

    /// Energy saved by running `work` at level `n` instead of full speed
    /// (non-negative whenever the power curve is convex in speed).
    pub fn stretch_saving(&self, work: f64, n: LevelIndex) -> f64 {
        self.execution_energy(work, self.max_level()) - self.execution_energy(work, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_speed() -> CpuModel {
        CpuModel::new(vec![
            FrequencyLevel::new(500.0, 8.0 / 3.0),
            FrequencyLevel::new(1000.0, 8.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(CpuModel::new(vec![]), Err(CpuModelError::NoLevels));
    }

    #[test]
    fn lanes_match_scalar() {
        let mut cpu = CpuModel::new(vec![
            FrequencyLevel::new(150.0, 0.2),
            FrequencyLevel::new(400.0, 0.6),
            FrequencyLevel::new(600.0, 1.2),
            FrequencyLevel::new(800.0, 2.0),
        ])
        .unwrap();
        let mut state = 0x243F_6A88u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f64 / 100.0
        };
        for mask in [0u64, 0b0001, 0b0110] {
            cpu.set_locked_mask(mask);
            let work: Vec<f64> = (0..64).map(|_| next()).collect();
            // Include negative, zero-ish, and dust-boundary windows.
            let window: Vec<f64> = work
                .iter()
                .enumerate()
                .map(|(i, &w)| match i % 4 {
                    0 => next() - 50.0,
                    1 => w / cpu.speed(i % 4),
                    2 => 0.0,
                    _ => next(),
                })
                .collect();
            let mut out = vec![None; work.len()];
            cpu.min_feasible_level_lanes(&work, &window, &mut out);
            for i in 0..work.len() {
                assert_eq!(
                    out[i],
                    cpu.min_feasible_level(work[i], window[i]),
                    "lane {i}: work {} window {} mask {mask:#b}",
                    work[i],
                    window[i]
                );
            }
        }
    }

    #[test]
    fn rejects_unsorted_frequencies() {
        let err = CpuModel::new(vec![
            FrequencyLevel::new(1000.0, 1.0),
            FrequencyLevel::new(500.0, 2.0),
        ]);
        assert_eq!(
            err,
            Err(CpuModelError::FrequenciesNotIncreasing { index: 1 })
        );
    }

    #[test]
    fn rejects_non_monotone_power() {
        let err = CpuModel::new(vec![
            FrequencyLevel::new(500.0, 2.0),
            FrequencyLevel::new(1000.0, 2.0),
        ]);
        assert_eq!(err, Err(CpuModelError::PowersNotIncreasing { index: 1 }));
    }

    #[test]
    fn speeds_normalize_to_fmax() {
        let cpu = two_speed();
        assert_eq!(cpu.speed(0), 0.5);
        assert_eq!(cpu.speed(1), 1.0);
        assert_eq!(cpu.max_level(), 1);
        assert_eq!(cpu.level_count(), 2);
    }

    #[test]
    fn execution_time_and_energy() {
        let cpu = two_speed();
        // §2 example: τ1 (w=4) at half speed takes 8 units, costs 8·8/3.
        assert_eq!(cpu.execution_time(4.0, 0), 8.0);
        assert!((cpu.execution_energy(4.0, 0) - 8.0 * 8.0 / 3.0).abs() < 1e-12);
        // At full speed: 4 units, 32 energy.
        assert_eq!(cpu.execution_time(4.0, 1), 4.0);
        assert_eq!(cpu.execution_energy(4.0, 1), 32.0);
    }

    #[test]
    fn min_feasible_level_picks_slowest() {
        let cpu = two_speed();
        assert_eq!(cpu.min_feasible_level(4.0, 16.0), Some(0));
        assert_eq!(cpu.min_feasible_level(4.0, 8.0), Some(0));
        assert_eq!(cpu.min_feasible_level(4.0, 7.9), Some(1));
        assert_eq!(cpu.min_feasible_level(4.0, 4.0), Some(1));
        assert_eq!(cpu.min_feasible_level(4.0, 3.9), None);
        assert_eq!(cpu.min_feasible_level(4.0, -1.0), None);
    }

    #[test]
    fn locked_levels_are_skipped() {
        let mut cpu = two_speed();
        assert_eq!(cpu.locked_mask(), 0);
        cpu.set_locked_mask(1);
        assert!(cpu.is_level_locked(0));
        assert!(!cpu.is_level_locked(1));
        // A window the slow level could serve is forced to full speed.
        assert_eq!(cpu.min_feasible_level(4.0, 16.0), Some(1));
        assert_eq!(cpu.min_feasible_level(4.0, 3.9), None);
        cpu.set_locked_mask(0);
        assert_eq!(cpu.min_feasible_level(4.0, 16.0), Some(0));
    }

    #[test]
    #[should_panic(expected = "fastest level")]
    fn locking_the_fastest_level_is_rejected() {
        two_speed().set_locked_mask(0b10);
    }

    #[test]
    fn min_feasible_level_tolerates_float_dust() {
        let cpu = two_speed();
        let window = 4.0 / 0.5; // exactly 8, but computed
        assert_eq!(cpu.min_feasible_level(4.0, window * (1.0 + 1e-15)), Some(0));
    }

    #[test]
    fn idle_power_validation() {
        let cpu = two_speed().with_idle_power(0.05).unwrap();
        assert_eq!(cpu.idle_power(), 0.05);
        assert!(two_speed().with_idle_power(100.0).is_err());
        assert!(two_speed().with_idle_power(-0.1).is_err());
    }

    #[test]
    fn switch_overhead_roundtrip() {
        let cpu = two_speed().with_switch_overhead(SimDuration::from_units(0.001), 0.01);
        assert_eq!(cpu.switch_overhead(), SimDuration::from_units(0.001));
        assert_eq!(cpu.switch_energy(), 0.01);
    }

    #[test]
    fn stretch_saving_positive_for_convex_power() {
        let cpu = two_speed();
        // Full speed: 32. Half speed: 64/3 ≈ 21.3. Saving ≈ 10.7.
        let saving = cpu.stretch_saving(4.0, 0);
        assert!((saving - (32.0 - 64.0 / 3.0)).abs() < 1e-9);
        assert!(saving > 0.0);
    }

    #[test]
    fn zero_work_executes_instantly_for_free() {
        let cpu = two_speed();
        assert_eq!(cpu.execution_time(0.0, 0), 0.0);
        assert_eq!(cpu.execution_energy(0.0, 1), 0.0);
        assert_eq!(cpu.min_feasible_level(0.0, 0.0), Some(0));
    }
}
