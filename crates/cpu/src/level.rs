//! A single DVFS operating point.

use serde::{Deserialize, Serialize};

/// One (frequency, power) operating point of a DVFS-enabled processor.
///
/// Frequencies are in arbitrary consistent units (the model only ever
/// uses frequency *ratios*); power is in the workspace's power units
/// (watt-scale for the paper experiments — see DESIGN.md on unit
/// normalization).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyLevel {
    /// Clock frequency `f_n`.
    pub frequency: f64,
    /// Active power consumption `P_n` at this level.
    pub power: f64,
}

impl FrequencyLevel {
    /// Creates an operating point.
    ///
    /// # Panics
    ///
    /// Panics if either value is non-positive or not finite.
    pub fn new(frequency: f64, power: f64) -> Self {
        assert!(
            frequency.is_finite() && frequency > 0.0,
            "frequency must be positive"
        );
        assert!(power.is_finite() && power > 0.0, "power must be positive");
        FrequencyLevel { frequency, power }
    }

    /// Energy per unit of work done *at this level's own rate* is simply
    /// `power / speed` relative to full-speed work units; this helper
    /// returns energy to complete `work` full-speed units given the
    /// normalized `speed` of this level.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not in `(0, 1]` or `work` is negative.
    pub fn energy_for_work(&self, work: f64, speed: f64) -> f64 {
        assert!(speed > 0.0 && speed <= 1.0, "speed must lie in (0, 1]");
        assert!(work >= 0.0, "work must be non-negative");
        self.power * work / speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let l = FrequencyLevel::new(1000.0, 3.2);
        assert_eq!(l.frequency, 1000.0);
        assert_eq!(l.power, 3.2);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn zero_frequency_rejected() {
        let _ = FrequencyLevel::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "power")]
    fn negative_power_rejected() {
        let _ = FrequencyLevel::new(100.0, -1.0);
    }

    #[test]
    fn energy_for_work_scales_with_slowdown() {
        let l = FrequencyLevel::new(500.0, 2.0);
        // 4 units of full-speed work at half speed: 8 time units × 2 power.
        assert_eq!(l.energy_for_work(4.0, 0.5), 16.0);
        assert_eq!(l.energy_for_work(0.0, 0.5), 0.0);
    }
}
