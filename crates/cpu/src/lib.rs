//! # harvest-cpu — DVFS processor models
//!
//! The paper's processor abstraction (§3.3): `N` discrete operating
//! points with normalized speeds `S_n = f_n / f_max` and strictly
//! increasing powers; a job with worst-case execution time `w` (at
//! `f_max`) runs for `w / S_n` wall-clock units at level `n`.
//!
//! * [`FrequencyLevel`] — one (frequency, power) point.
//! * [`CpuModel`] — the validated level table with speed/power/feasibility
//!   queries; [`CpuModel::min_feasible_level`] implements the paper's
//!   eq. 6 minimization.
//! * [`PowerLaw`] — synthetic table generation from `P(s) = p₀ + c·sᵏ`.
//! * [`presets`] — the paper's XScale table (§5.1) and both worked
//!   examples (§2, §4.3).
//!
//! # Examples
//!
//! ```
//! let cpu = harvest_cpu::presets::xscale();
//! // The paper's eq. 6: slowest level finishing 2 work units in 6 time
//! // units needs S_n ≥ 1/3 → the 400 MHz level (S = 0.4).
//! assert_eq!(cpu.min_feasible_level(2.0, 6.0), Some(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod level;
pub mod model;
pub mod power;
pub mod presets;

pub use level::FrequencyLevel;
pub use model::{CpuModel, CpuModelError, LevelIndex};
pub use power::PowerLaw;
