//! Analytic power laws for deriving operating-point tables.

use serde::{Deserialize, Serialize};

use crate::level::FrequencyLevel;
use crate::model::{CpuModel, CpuModelError};

/// A CMOS-style power law `P(s) = p_static + c · s^k` over normalized
/// speed `s ∈ (0, 1]`.
///
/// Classic DVFS analyses (Yao/Demers/Shenker, paper ref \[12\]) assume a
/// convex power curve, typically cubic (`k = 3`); this builder generates
/// synthetic processors with any number of levels for the
/// `ablation_speed_levels` benchmark.
///
/// # Examples
///
/// ```
/// use harvest_cpu::PowerLaw;
///
/// // A cubic, 4-level processor peaking at 3.2 power units.
/// let law = PowerLaw::new(0.1, 3.1, 3.0);
/// let cpu = law.build_model(1000.0, 4)?;
/// assert_eq!(cpu.level_count(), 4);
/// assert!((cpu.max_power() - 3.2).abs() < 1e-12);
/// # Ok::<(), harvest_cpu::CpuModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLaw {
    static_power: f64,
    dynamic_coeff: f64,
    exponent: f64,
}

impl PowerLaw {
    /// Creates a power law with the given static power, dynamic
    /// coefficient, and speed exponent.
    ///
    /// # Panics
    ///
    /// Panics if `static_power` is negative, `dynamic_coeff` is
    /// non-positive, or `exponent < 1` (sub-linear laws make slowing
    /// down never profitable and are almost certainly a mistake).
    pub fn new(static_power: f64, dynamic_coeff: f64, exponent: f64) -> Self {
        assert!(
            static_power.is_finite() && static_power >= 0.0,
            "static power must be finite and >= 0"
        );
        assert!(
            dynamic_coeff.is_finite() && dynamic_coeff > 0.0,
            "dynamic coefficient must be positive"
        );
        assert!(
            exponent.is_finite() && exponent >= 1.0,
            "exponent must be >= 1"
        );
        PowerLaw {
            static_power,
            dynamic_coeff,
            exponent,
        }
    }

    /// The conventional cubic law with no static power, peaking at
    /// `peak_power`.
    pub fn cubic(peak_power: f64) -> Self {
        PowerLaw::new(0.0, peak_power, 3.0)
    }

    /// Power at normalized speed `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is outside `(0, 1]`.
    pub fn power_at(&self, s: f64) -> f64 {
        assert!(s > 0.0 && s <= 1.0, "speed must lie in (0, 1]");
        self.static_power + self.dynamic_coeff * s.powf(self.exponent)
    }

    /// Builds an `n`-level [`CpuModel`] with equally spaced speeds
    /// `1/n, 2/n, …, 1` scaled to `f_max`.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuModelError`] (cannot occur for valid laws, but
    /// the signature stays honest).
    ///
    /// # Panics
    ///
    /// Panics if `f_max` is non-positive or `n` is zero.
    pub fn build_model(&self, f_max: f64, n: usize) -> Result<CpuModel, CpuModelError> {
        assert!(f_max.is_finite() && f_max > 0.0, "f_max must be positive");
        assert!(n > 0, "need at least one level");
        let levels = (1..=n)
            .map(|i| {
                let s = i as f64 / n as f64;
                FrequencyLevel::new(f_max * s, self.power_at(s))
            })
            .collect();
        CpuModel::new(levels)
    }

    /// Energy per unit of work at speed `s` (`P(s)/s`), the quantity DVFS
    /// minimizes.
    ///
    /// # Panics
    ///
    /// Panics if `s` is outside `(0, 1]`.
    pub fn energy_per_work(&self, s: f64) -> f64 {
        self.power_at(s) / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_power_values() {
        let law = PowerLaw::cubic(8.0);
        assert_eq!(law.power_at(1.0), 8.0);
        assert_eq!(law.power_at(0.5), 1.0);
    }

    #[test]
    fn energy_per_work_decreases_when_slowing_cubic() {
        let law = PowerLaw::cubic(8.0);
        assert!(law.energy_per_work(0.5) < law.energy_per_work(1.0));
    }

    #[test]
    fn static_power_penalizes_deep_slowdown() {
        let law = PowerLaw::new(1.0, 7.0, 3.0);
        // With static power, crawling is no longer free.
        assert!(law.energy_per_work(0.1) > law.energy_per_work(0.5));
    }

    #[test]
    fn build_model_spaces_levels_evenly() {
        let cpu = PowerLaw::cubic(3.2).build_model(1000.0, 5).unwrap();
        assert_eq!(cpu.level_count(), 5);
        assert!((cpu.speed(0) - 0.2).abs() < 1e-12);
        assert!((cpu.speed(4) - 1.0).abs() < 1e-12);
        assert!((cpu.max_power() - 3.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn sublinear_law_rejected() {
        let _ = PowerLaw::new(0.0, 1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "speed")]
    fn out_of_range_speed_rejected() {
        let _ = PowerLaw::cubic(1.0).power_at(1.5);
    }
}
