//! Crash flight recorder: a bounded ring of recent events, frozen into
//! replayable dumps when something dies.
//!
//! The simulator's full trace is unbounded and usually off; when a
//! watchdog fires or a worker panics, what the post-mortem needs is the
//! *last few hundred* events, plus the engine counters at the moment of
//! death. A [`FlightRecorder`] keeps exactly that: a fixed-capacity ring
//! of [`FlightEvent`]s (older events are dropped, counted, never
//! reallocated past capacity) that the simulation feeds while it runs.
//! On failure, [`FlightRecorder::capture`] freezes the ring into a
//! [`FlightDump`] queued on the recorder; the campaign driver drains
//! dumps with [`FlightRecorder::take_dumps`], fills in the owning cell's
//! key text, and writes each as a small JSONL file next to the manifest.
//!
//! This crate knows nothing about the simulator, so events are
//! pre-rendered `(kind, detail)` strings — the cost of rendering is only
//! paid when a recorder is installed, which it never is on the pinned
//! warm paths.
//!
//! Dump files are JSONL: one [`FlightLine::Meta`] header (key, reason,
//! engine counters) followed by one [`FlightLine::Event`] per ring slot,
//! oldest first. [`FlightDump::from_jsonl`] round-trips them.

use crate::export::{jsonl_to_vec, to_jsonl_string, JsonlWriter};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// A recorder shared between a run context and the simulation model it
/// lends itself to; the mutex is uncontended (one simulation at a time)
/// and survives worker panics.
pub type SharedFlightRecorder = Arc<Mutex<FlightRecorder>>;

/// Default ring capacity: enough to hold the full release/start/complete
/// churn of a few hyperperiods at §5.1 scale while staying under ~100 kB
/// rendered.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

/// One recorded event: a pre-rendered simulator trace event or a driver
/// marker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Monotone sequence number (never resets; survives ring wrap).
    pub seq: u64,
    /// Simulation time of the event (0 for driver markers).
    pub t: f64,
    /// Event kind (`"released"`, `"started"`, ..., or `"mark"`).
    pub kind: String,
    /// Rendered payload (debug form of the trace event, or marker text).
    pub detail: String,
}

/// A frozen post-mortem: the ring contents plus counters at capture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Canonical key text of the cell that died. The simulator does not
    /// know cell keys, so this is empty at capture and filled in by the
    /// campaign driver when it pairs dumps with failed cells.
    pub key: String,
    /// Why the dump was taken (`"watchdog-event-budget"`, `"panic"`, ...).
    pub reason: String,
    /// Engine events handled when the dump was taken.
    pub events_handled: u64,
    /// Events that fell off the ring before capture.
    pub dropped: u64,
    /// Ring contents, oldest first.
    pub events: Vec<FlightEvent>,
}

/// One line of a flight-dump JSONL file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlightLine {
    /// Header: everything but the events.
    Meta(FlightMeta),
    /// One ring slot.
    Event(FlightEvent),
}

/// Header line of a dump file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightMeta {
    /// See [`FlightDump::key`].
    pub key: String,
    /// See [`FlightDump::reason`].
    pub reason: String,
    /// See [`FlightDump::events_handled`].
    pub events_handled: u64,
    /// See [`FlightDump::dropped`].
    pub dropped: u64,
}

impl FlightDump {
    /// Serialize as JSONL: one `Meta` header, then one `Event` per line.
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        let mut lines = vec![FlightLine::Meta(FlightMeta {
            key: self.key.clone(),
            reason: self.reason.clone(),
            events_handled: self.events_handled,
            dropped: self.dropped,
        })];
        lines.extend(self.events.iter().cloned().map(FlightLine::Event));
        to_jsonl_string(&lines)
    }

    /// Write the JSONL form into `out`.
    pub fn write_jsonl<W: Write>(&self, out: W) -> io::Result<()> {
        let mut w = JsonlWriter::new(out);
        w.write(&FlightLine::Meta(FlightMeta {
            key: self.key.clone(),
            reason: self.reason.clone(),
            events_handled: self.events_handled,
            dropped: self.dropped,
        }))?;
        for ev in &self.events {
            w.write(&FlightLine::Event(ev.clone()))?;
        }
        w.finish().map(|_| ())
    }

    /// Parse a dump file written by [`Self::write_jsonl`] /
    /// [`Self::to_jsonl`]. The first line must be the `Meta` header.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let lines: Vec<FlightLine> = jsonl_to_vec(text)?;
        let mut iter = lines.into_iter();
        let meta = match iter.next() {
            Some(FlightLine::Meta(meta)) => meta,
            Some(_) => return Err("flight dump must begin with a Meta line".to_string()),
            None => return Err("flight dump is empty".to_string()),
        };
        let mut events = Vec::new();
        for line in iter {
            match line {
                FlightLine::Event(ev) => events.push(ev),
                FlightLine::Meta(_) => return Err("flight dump has a second Meta line".to_string()),
            }
        }
        Ok(Self {
            key: meta.key,
            reason: meta.reason,
            events_handled: meta.events_handled,
            dropped: meta.dropped,
            events,
        })
    }
}

/// Fixed-capacity ring of recent events plus a queue of frozen dumps.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<FlightEvent>,
    seq: u64,
    dropped: u64,
    pending: Vec<FlightDump>,
}

impl FlightRecorder {
    /// New recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            ring: VecDeque::with_capacity(capacity),
            seq: 0,
            dropped: 0,
            pending: Vec::new(),
        }
    }

    /// Convenience: a recorder behind the `Arc<Mutex<..>>` that run
    /// contexts and models share.
    pub fn shared(capacity: usize) -> SharedFlightRecorder {
        Arc::new(Mutex::new(Self::new(capacity)))
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event, evicting the oldest if the ring is full.
    pub fn record(&mut self, t: f64, kind: &str, detail: String) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(FlightEvent {
            seq: self.seq,
            t,
            kind: kind.to_string(),
            detail,
        });
        self.seq += 1;
    }

    /// Record a driver marker (e.g. the key text of the cell about to
    /// run), so dumps are attributable even when the crash predates any
    /// simulation event.
    pub fn mark(&mut self, label: &str) {
        self.record(0.0, "mark", label.to_string());
    }

    /// Freeze the current ring into a pending [`FlightDump`]. The ring
    /// keeps running (it is not cleared): within one batch several lanes
    /// may abort and each capture sees the events up to its own moment.
    pub fn capture(&mut self, reason: &str, events_handled: u64) {
        self.pending.push(FlightDump {
            key: String::new(),
            reason: reason.to_string(),
            events_handled,
            dropped: self.dropped,
            events: self.ring.iter().cloned().collect(),
        });
    }

    /// Number of dumps captured and not yet taken.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Drain the captured dumps, oldest first.
    pub fn take_dumps(&mut self) -> Vec<FlightDump> {
        std::mem::take(&mut self.pending)
    }

    /// Forget ring contents (not pending dumps); sequence numbering and
    /// the drop counter restart too.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.seq = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.record(i as f64, "released", format!("job {i}"));
        }
        rec.capture("watchdog-event-budget", 123);
        let dumps = rec.take_dumps();
        assert_eq!(dumps.len(), 1);
        let dump = &dumps[0];
        assert_eq!(dump.events.len(), 4);
        assert_eq!(dump.dropped, 6);
        assert_eq!(dump.events_handled, 123);
        // Oldest-first tail: seqs 6..10.
        let seqs: Vec<u64> = dump.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert!(rec.take_dumps().is_empty(), "take drains");
    }

    #[test]
    fn marks_survive_into_dumps() {
        let mut rec = FlightRecorder::new(8);
        rec.mark("v1|scenario|edf|7");
        rec.record(1.5, "stalled", "until 2.0".to_string());
        rec.capture("panic", 0);
        let dump = rec.take_dumps().remove(0);
        assert_eq!(dump.events[0].kind, "mark");
        assert_eq!(dump.events[0].detail, "v1|scenario|edf|7");
    }

    #[test]
    fn dump_round_trips_through_jsonl() {
        let mut rec = FlightRecorder::new(4);
        rec.mark("key text");
        rec.record(2.0, "missed", "job 3".to_string());
        rec.capture("watchdog-no-progress", 42);
        let mut dump = rec.take_dumps().remove(0);
        dump.key = "v1|scenario|lsa|0".to_string();

        let text = dump.to_jsonl().unwrap();
        let back = FlightDump::from_jsonl(&text).unwrap();
        assert_eq!(back, dump);

        let mut buf = Vec::new();
        dump.write_jsonl(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), text);

        // A headless file is rejected.
        let headless: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert!(FlightDump::from_jsonl(&headless)
            .unwrap_err()
            .contains("Meta"));
    }

    #[test]
    fn capture_without_clear_stacks_dumps() {
        let mut rec = FlightRecorder::new(8);
        rec.record(1.0, "idled", "until 2".to_string());
        rec.capture("watchdog-event-budget", 10);
        rec.record(2.0, "started", "job 0".to_string());
        rec.capture("watchdog-event-budget", 20);
        let dumps = rec.take_dumps();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].events.len(), 1);
        assert_eq!(dumps[1].events.len(), 2);
    }
}
