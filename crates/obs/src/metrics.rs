//! Metrics registry: counters, gauges, and log2-bucket histograms behind a
//! `MetricsSink` trait that mirrors `sim::trace::TraceSink`.
//!
//! The hot simulation loops do **not** call through this trait per event —
//! they keep plain monomorphic integer counters inline and publish them here
//! once, at end of run. The trait exists so that publication code can be
//! written generically and so a disabled run can hand a [`NullMetrics`] to
//! any publisher and have the whole call chain compile to nothing.

use serde::{Deserialize, Serialize};

/// Receiver for published metrics.
///
/// Mirrors the `TraceSink` contract: implementations that drop data should
/// return `false` from [`MetricsSink::is_enabled`] so callers can skip
/// building expensive values (e.g. formatting a name or folding a histogram)
/// before publishing:
///
/// ```
/// use harvest_obs::{MetricsSink, NullMetrics};
/// let mut sink = NullMetrics;
/// if sink.is_enabled() {
///     sink.counter("queue.pops", 12);
/// }
/// ```
pub trait MetricsSink {
    /// Add `delta` to the named monotonically increasing counter.
    fn counter(&mut self, name: &str, delta: u64);
    /// Set the named gauge to an instantaneous value.
    fn gauge(&mut self, name: &str, value: f64);
    /// Record one observation into the named log2-bucket histogram.
    fn observe(&mut self, name: &str, value: f64);
    /// Whether this sink retains anything. Defaults to `true`.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// Forward through mutable references so sinks can be lent out.
impl<S: MetricsSink + ?Sized> MetricsSink for &mut S {
    fn counter(&mut self, name: &str, delta: u64) {
        (**self).counter(name, delta);
    }
    fn gauge(&mut self, name: &str, value: f64) {
        (**self).gauge(name, value);
    }
    fn observe(&mut self, name: &str, value: f64) {
        (**self).observe(name, value);
    }
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
}

/// A metrics sink that discards everything. Every method is an empty inline
/// body, so instrumentation guarded on this type optimizes away entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullMetrics;

impl MetricsSink for NullMetrics {
    #[inline(always)]
    fn counter(&mut self, _name: &str, _delta: u64) {}
    #[inline(always)]
    fn gauge(&mut self, _name: &str, _value: f64) {}
    #[inline(always)]
    fn observe(&mut self, _name: &str, _value: f64) {}
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Number of buckets in a [`Log2Histogram`]: bucket 0 holds values `< 1`
/// (including non-positive), bucket `i >= 1` holds `[2^(i-1), 2^i)`.
pub const LOG2_BUCKETS: usize = 66;

/// Power-of-two bucketed histogram for non-negative magnitudes (gallop
/// lengths, drain sizes, interval durations). Fixed footprint, O(1) insert.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    pub fn new() -> Self {
        Self {
            counts: [0; LOG2_BUCKETS],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for a value: 0 for `v < 1`, else `1 + floor(log2 v)`,
    /// clamped to the last bucket.
    pub fn bucket_of(value: f64) -> usize {
        if value.is_nan() || value < 1.0 {
            return 0;
        }
        // Cheap floor(log2) via the bit width of the integer part; values
        // above 2^63 saturate into the final bucket.
        if value >= 9.223_372_036_854_776e18 {
            return LOG2_BUCKETS - 1;
        }
        let ilog = 63 - (value as u64).leading_zeros() as usize;
        (ilog + 1).min(LOG2_BUCKETS - 1)
    }

    pub fn observe(&mut self, value: f64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Merge another histogram's observations into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Freeze into a serializable snapshot (trailing empty buckets trimmed).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let last = self
            .counts
            .iter()
            .rposition(|&c| c != 0)
            .map_or(0, |i| i + 1);
        HistogramSnapshot {
            count: self.total,
            sum: self.sum,
            min: if self.total == 0 { 0.0 } else { self.min },
            max: if self.total == 0 { 0.0 } else { self.max },
            buckets: self.counts[..last].to_vec(),
        }
    }
}

/// Serializable form of a [`Log2Histogram`]. `buckets[0]` counts values
/// `< 1`; `buckets[i]` for `i >= 1` counts values in `[2^(i-1), 2^i)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile: lower bound of the bucket containing the q-th
    /// observation (q in [0, 1]).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 {
                    0.0
                } else {
                    (1u64 << (i - 1)) as f64
                };
            }
        }
        self.max
    }
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricEntry {
    pub name: String,
    pub value: MetricValue,
}

/// A frozen metric value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// Scalar view used for diffing and table rendering: counters and gauges
    /// as themselves, histograms as their observation count.
    pub fn scalar(&self) -> f64 {
        match self {
            MetricValue::Counter(c) => *c as f64,
            MetricValue::Gauge(g) => *g,
            MetricValue::Histogram(h) => h.count as f64,
        }
    }
}

/// Accumulating registry. Insertion order is preserved so reports render in
/// publication order; lookup is a linear scan, which is fine at the tens of
/// metrics a run publishes once.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, Slot)>,
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(u64),
    Gauge(f64),
    Hist(Box<Log2Histogram>),
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, name: &str) -> Option<&mut Slot> {
        let idx = self.entries.iter().position(|(n, _)| n == name)?;
        Some(&mut self.entries[idx].1)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every registered metric while keeping the registry's
    /// backing storage, so a pooled run context can publish a fresh
    /// run's metrics into a reused registry. A snapshot taken after
    /// `reset` + republication is identical to one from a brand-new
    /// registry (entries are removed, not zeroed, so no stale names
    /// from a previous policy's run linger).
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Merge a pre-accumulated histogram under `name`. Hot loops keep a
    /// [`Log2Histogram`] inline and hand it over once at publication
    /// time instead of paying a name lookup per observation.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn record_histogram(&mut self, name: &str, hist: &Log2Histogram) {
        match self.slot(name) {
            Some(Slot::Hist(h)) => h.merge(hist),
            Some(_) => panic!("metric `{name}` already registered with a different kind"),
            None => self
                .entries
                .push((name.to_owned(), Slot::Hist(Box::new(hist.clone())))),
        }
    }

    /// Freeze into a serializable snapshot, preserving insertion order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .map(|(name, slot)| MetricEntry {
                    name: name.clone(),
                    value: match slot {
                        Slot::Counter(c) => MetricValue::Counter(*c),
                        Slot::Gauge(g) => MetricValue::Gauge(*g),
                        Slot::Hist(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

impl MetricsSink for MetricsRegistry {
    fn counter(&mut self, name: &str, delta: u64) {
        match self.slot(name) {
            Some(Slot::Counter(c)) => *c += delta,
            Some(_) => panic!("metric `{name}` already registered with a different kind"),
            None => self.entries.push((name.to_owned(), Slot::Counter(delta))),
        }
    }

    fn gauge(&mut self, name: &str, value: f64) {
        match self.slot(name) {
            Some(Slot::Gauge(g)) => *g = value,
            Some(_) => panic!("metric `{name}` already registered with a different kind"),
            None => self.entries.push((name.to_owned(), Slot::Gauge(value))),
        }
    }

    fn observe(&mut self, name: &str, value: f64) {
        match self.slot(name) {
            Some(Slot::Hist(h)) => h.observe(value),
            Some(_) => panic!("metric `{name}` already registered with a different kind"),
            None => {
                let mut h = Box::new(Log2Histogram::new());
                h.observe(value);
                self.entries.push((name.to_owned(), Slot::Hist(h)));
            }
        }
    }
}

/// Serializable frozen view of a registry; the unit stored in JSONL run
/// artifacts and the operand of `exp inspect --diff`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub entries: Vec<MetricEntry>,
}

/// One row of a snapshot diff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDelta {
    pub name: String,
    /// Scalar value in the baseline snapshot; `None` if absent there.
    pub before: Option<f64>,
    /// Scalar value in this snapshot; `None` if absent here.
    pub after: Option<f64>,
}

impl MetricDelta {
    pub fn delta(&self) -> f64 {
        self.after.unwrap_or(0.0) - self.before.unwrap_or(0.0)
    }
}

impl MetricsSnapshot {
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// Counter value by name (0 if absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Diff against a baseline: one row per metric present in either
    /// snapshot, in this snapshot's order with baseline-only rows appended.
    pub fn diff(&self, baseline: &MetricsSnapshot) -> Vec<MetricDelta> {
        let mut rows: Vec<MetricDelta> = self
            .entries
            .iter()
            .map(|e| MetricDelta {
                name: e.name.clone(),
                before: baseline.get(&e.name).map(|v| v.scalar()),
                after: Some(e.value.scalar()),
            })
            .collect();
        for e in &baseline.entries {
            if self.get(&e.name).is_none() {
                rows.push(MetricDelta {
                    name: e.name.clone(),
                    before: Some(e.value.scalar()),
                    after: None,
                });
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_metrics_is_disabled_and_silent() {
        let mut sink = NullMetrics;
        assert!(!sink.is_enabled());
        sink.counter("x", 1);
        sink.gauge("y", 2.0);
        sink.observe("z", 3.0);
    }

    #[test]
    fn log2_buckets() {
        assert_eq!(Log2Histogram::bucket_of(-3.0), 0);
        assert_eq!(Log2Histogram::bucket_of(0.0), 0);
        assert_eq!(Log2Histogram::bucket_of(0.99), 0);
        assert_eq!(Log2Histogram::bucket_of(1.0), 1);
        assert_eq!(Log2Histogram::bucket_of(1.99), 1);
        assert_eq!(Log2Histogram::bucket_of(2.0), 2);
        assert_eq!(Log2Histogram::bucket_of(3.0), 2);
        assert_eq!(Log2Histogram::bucket_of(4.0), 3);
        assert_eq!(Log2Histogram::bucket_of(1024.0), 11);
        assert_eq!(Log2Histogram::bucket_of(f64::MAX), LOG2_BUCKETS - 1);
    }

    #[test]
    fn histogram_snapshot_stats() {
        let mut h = Log2Histogram::new();
        for v in [1.0, 2.0, 3.0, 8.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 14.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.mean(), 3.5);
        // buckets: [<1]=0, [1,2)=1, [2,4)=2, [4,8)=0, [8,16)=1
        assert_eq!(s.buckets, vec![0, 1, 2, 0, 1]);
        assert_eq!(s.quantile(0.0), 1.0); // rank clamps to first observation, bucket [1,2)
        assert_eq!(s.quantile(1.0), 8.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_finite() {
        let s = Log2Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_merge_combines_extrema_and_counts() {
        let mut a = Log2Histogram::new();
        a.observe(2.0);
        let mut b = Log2Histogram::new();
        b.observe(100.0);
        b.observe(0.5);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 102.5);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 100.0);

        let mut reg = MetricsRegistry::new();
        reg.record_histogram("waits", &a);
        reg.record_histogram("waits", &b);
        match reg.snapshot().get("waits") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 5),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn registry_accumulates_and_snapshots_in_order() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a.pops", 3);
        reg.counter("a.pops", 2);
        reg.gauge("b.level", 0.5);
        reg.gauge("b.level", 0.75);
        reg.observe("c.len", 4.0);
        reg.observe("c.len", 9.0);
        let snap = reg.snapshot();
        assert_eq!(snap.entries.len(), 3);
        assert_eq!(snap.entries[0].name, "a.pops");
        assert_eq!(snap.counter("a.pops"), 5);
        assert_eq!(snap.get("b.level"), Some(&MetricValue::Gauge(0.75)));
        match snap.get("c.len") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn reset_republication_matches_fresh_registry() {
        let mut pooled = MetricsRegistry::new();
        pooled.counter("stale.policy_metric", 9);
        pooled.observe("stale.hist", 4.0);
        pooled.reset();
        assert!(pooled.is_empty());
        pooled.counter("a", 1);
        pooled.gauge("b", 2.0);

        let mut fresh = MetricsRegistry::new();
        fresh.counter("a", 1);
        fresh.gauge("b", 2.0);
        assert_eq!(pooled.snapshot(), fresh.snapshot());
    }

    #[test]
    fn diff_covers_both_sides() {
        let mut a = MetricsRegistry::new();
        a.counter("shared", 10);
        a.counter("only_base", 1);
        let base = a.snapshot();

        let mut b = MetricsRegistry::new();
        b.counter("shared", 14);
        b.counter("only_new", 7);
        let new = b.snapshot();

        let rows = new.diff(&base);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "shared");
        assert_eq!(rows[0].delta(), 4.0);
        assert_eq!(rows[1].name, "only_new");
        assert_eq!(rows[1].before, None);
        assert_eq!(rows[2].name, "only_base");
        assert_eq!(rows[2].after, None);
    }

    #[test]
    fn diff_scalarizes_log2_histograms_by_count() {
        // Baseline: 3 observations across two buckets.
        let mut a = MetricsRegistry::new();
        for v in [1.0, 2.0, 3.0] {
            a.observe("wait", v);
        }
        let base = a.snapshot();

        // After: 5 observations, different value range — only the
        // observation count is scalar-diffed, not sum/extrema.
        let mut b = MetricsRegistry::new();
        for v in [100.0, 200.0, 400.0, 800.0, 1600.0] {
            b.observe("wait", v);
        }
        let new = b.snapshot();

        let rows = new.diff(&base);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].before, Some(3.0));
        assert_eq!(rows[0].after, Some(5.0));
        assert_eq!(rows[0].delta(), 2.0);

        // A histogram missing from the baseline diffs as new.
        let empty = MetricsRegistry::new().snapshot();
        let rows = new.diff(&empty);
        assert_eq!(rows[0].before, None);
        assert_eq!(rows[0].delta(), 5.0);

        // The full bucket shape is still in the snapshot for readers
        // that want more than the scalar view.
        match new.get("wait") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 5);
                assert_eq!(h.buckets.iter().sum::<u64>(), 5);
                assert_eq!(h.min, 100.0);
                assert_eq!(h.max, 1600.0);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn histogram_diff_is_stable_across_jsonl_round_trip() {
        let mut reg = MetricsRegistry::new();
        for v in [0.5, 4.0, 4.5, 1024.0] {
            reg.observe("slab", v);
        }
        reg.counter("pops", 7);
        let snap = reg.snapshot();

        let text = crate::export::to_jsonl_string(std::slice::from_ref(&snap)).unwrap();
        let back: Vec<MetricsSnapshot> = crate::export::jsonl_to_vec(&text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], snap);
        // Diffing the round-tripped snapshot against the original is a
        // no-op: every delta is exactly zero.
        assert!(back[0].diff(&snap).iter().all(|d| d.delta() == 0.0));
    }
}
