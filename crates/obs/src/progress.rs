//! Live campaign progress: versioned JSONL events + human heartbeat.
//!
//! A [`ProgressReporter`] is shared (behind one mutex) between every
//! worker of a sweep campaign. Workers report one [`CellEvent`] per
//! decided cell; the reporter streams them as JSONL through a
//! [`JsonlWriter`] and, at a bounded cadence, emits a [`Heartbeat`]
//! (cells/sec, store hit rate, batch-lane high water, ETA) — both as a
//! JSONL line and, optionally, as a one-line human summary on stderr.
//!
//! The stream schema is versioned exactly like the run-artifact schema:
//! the first line must be a [`ProgressLine::Started`] carrying
//! [`PROGRESS_SCHEMA_VERSION`], and [`progress_from_jsonl`] rejects
//! streams whose version (or leading line) drifts, the same way
//! `RunArtifact::from_jsonl` does.
//!
//! Write failures degrade, not abort: a campaign must never die because
//! its progress pipe closed. The first failed write warns on stderr and
//! the reporter keeps counting so the final [`Heartbeat`] /
//! [`CampaignFinish`] totals stay correct for whoever can still read
//! them.

use crate::export::{jsonl_to_vec, JsonlWriter};
use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Version stamped into every [`CampaignStart`]; bump on any
/// incompatible change to the line shapes below.
pub const PROGRESS_SCHEMA_VERSION: u32 = 1;

/// How a cell got its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellDecision {
    /// Served from the result store / sweep cache.
    Hit,
    /// Simulated fresh this run.
    Simulated,
    /// Panicked or aborted and was quarantined.
    Quarantined,
    /// Already decided in the manifest from an earlier (killed) run.
    Resumed,
}

/// First line of every stream: campaign identity and shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStart {
    /// Schema version ([`PROGRESS_SCHEMA_VERSION`]).
    pub version: u32,
    /// Campaign label (figure name, `"fault-sweep"`, ...).
    pub campaign: String,
    /// Total cells the campaign will decide.
    pub cells: u64,
    /// Cells already decided by a previous run's manifest at open.
    pub resumed: u64,
    /// Worker threads.
    pub threads: u64,
}

/// One decided cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellEvent {
    /// How the cell was decided.
    pub decision: CellDecision,
    /// Canonical trial-key text.
    pub key: String,
    /// Worker index that decided it.
    pub worker: u64,
}

/// Periodic rate/ETA snapshot; the final heartbeat's counts equal the
/// campaign's decided totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Cells decided so far (all decisions).
    pub done: u64,
    /// Total cells in the campaign.
    pub total: u64,
    /// Store/cache hits so far.
    pub hits: u64,
    /// Cells simulated so far.
    pub simulated: u64,
    /// Cells resumed from the manifest so far.
    pub resumed: u64,
    /// Cells quarantined so far.
    pub quarantined: u64,
    /// Decision rate since campaign start.
    pub cells_per_sec: f64,
    /// hits / done (0 when nothing decided yet).
    pub hit_rate: f64,
    /// Highest batch-lane occupancy any pool reported.
    pub lane_high_water: u64,
    /// Estimated seconds to completion at the current rate.
    pub eta_s: f64,
    /// Which axis supplied the batch lanes (`"seed"`, `"policy"`, or
    /// empty when the campaign has not reported a grouping).
    #[serde(default)]
    pub batch_grouping: String,
    /// Event instants the batched engine processed.
    #[serde(default)]
    pub batch_ticks: u64,
    /// Of those, instants where more than one lane had work — the
    /// observable lane synchrony of the campaign's batches.
    #[serde(default)]
    pub multi_lane_ticks: u64,
    /// Transient store I/O errors that were retried
    /// ([`IoHealth::retries`](crate::io::IoHealth)).
    #[serde(default)]
    pub store_retries: u64,
    /// Store operations that exhausted retries and degraded.
    #[serde(default)]
    pub store_degraded: u64,
    /// Failed store `sync_all` barriers.
    #[serde(default)]
    pub store_sync_failures: u64,
}

impl Heartbeat {
    /// `multi_lane_ticks / batch_ticks` (0 when no batches ran): the
    /// fraction of processed instants where batching paid off.
    pub fn multi_lane_fraction(&self) -> f64 {
        if self.batch_ticks > 0 {
            self.multi_lane_ticks as f64 / self.batch_ticks as f64
        } else {
            0.0
        }
    }
}

/// Terminal line: final totals and wall-clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignFinish {
    /// Cells decided (should equal the start line's `cells`).
    pub done: u64,
    /// Cells simulated fresh.
    pub simulated: u64,
    /// Store/cache hits.
    pub hits: u64,
    /// Cells resumed from the manifest.
    pub resumed: u64,
    /// Cells quarantined.
    pub quarantined: u64,
    /// Campaign wall-clock seconds.
    pub wall_s: f64,
}

/// One line of the progress stream (externally tagged, like `RunLine`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProgressLine {
    /// Campaign opened.
    Started(CampaignStart),
    /// A cell was decided.
    Cell(CellEvent),
    /// Periodic rate snapshot.
    Heartbeat(Heartbeat),
    /// Campaign closed.
    Finished(CampaignFinish),
}

/// Parse and validate a progress stream: first line must be
/// [`ProgressLine::Started`] with the current schema version; any
/// unknown line shape fails inside [`jsonl_to_vec`].
pub fn progress_from_jsonl(text: &str) -> Result<Vec<ProgressLine>, String> {
    let lines: Vec<ProgressLine> = jsonl_to_vec(text)?;
    match lines.first() {
        Some(ProgressLine::Started(start)) => {
            if start.version != PROGRESS_SCHEMA_VERSION {
                return Err(format!(
                    "progress stream has schema version {}, this build reads {}",
                    start.version, PROGRESS_SCHEMA_VERSION
                ));
            }
            Ok(lines)
        }
        Some(_) => Err("progress stream must begin with a Started line".to_string()),
        None => Err("progress stream is empty".to_string()),
    }
}

struct ReporterInner {
    writer: Option<JsonlWriter<Box<dyn Write + Send>>>,
    human: bool,
    degraded: bool,
    started_at: Instant,
    last_beat: Instant,
    heartbeat_every: Duration,
    campaign: String,
    total: u64,
    done: u64,
    hits: u64,
    simulated: u64,
    resumed: u64,
    quarantined: u64,
    lane_high_water: u64,
    batch_grouping: String,
    batch_ticks: u64,
    multi_lane_ticks: u64,
    store_health: crate::io::IoHealth,
}

impl ReporterInner {
    fn emit(&mut self, line: &ProgressLine) {
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        if let Err(e) = writer.write(line) {
            if !self.degraded {
                eprintln!("warning: progress stream write failed ({e}); progress disabled");
                self.degraded = true;
            }
            self.writer = None;
        }
    }

    fn heartbeat_line(&self) -> Heartbeat {
        let elapsed = self.started_at.elapsed().as_secs_f64();
        let cells_per_sec = if elapsed > 0.0 {
            self.done as f64 / elapsed
        } else {
            0.0
        };
        let hit_rate = if self.done > 0 {
            self.hits as f64 / self.done as f64
        } else {
            0.0
        };
        let remaining = self.total.saturating_sub(self.done);
        let eta_s = if cells_per_sec > 0.0 {
            remaining as f64 / cells_per_sec
        } else {
            0.0
        };
        Heartbeat {
            done: self.done,
            total: self.total,
            hits: self.hits,
            simulated: self.simulated,
            resumed: self.resumed,
            quarantined: self.quarantined,
            cells_per_sec,
            hit_rate,
            lane_high_water: self.lane_high_water,
            eta_s,
            batch_grouping: self.batch_grouping.clone(),
            batch_ticks: self.batch_ticks,
            multi_lane_ticks: self.multi_lane_ticks,
            store_retries: self.store_health.retries,
            store_degraded: self.store_health.degraded,
            store_sync_failures: self.store_health.sync_failures,
        }
    }

    fn beat(&mut self) {
        let hb = self.heartbeat_line();
        if self.human {
            eprintln!(
                "progress {} {}/{} cells ({:.1}/s, hit {:.0}%, {} quarantined, eta {:.1}s)",
                self.campaign,
                hb.done,
                hb.total,
                hb.cells_per_sec,
                hb.hit_rate * 100.0,
                hb.quarantined,
                hb.eta_s
            );
        }
        self.emit(&ProgressLine::Heartbeat(hb));
        self.last_beat = Instant::now();
    }
}

/// Shared, mutex-guarded campaign progress front-end.
///
/// Construction does not write anything; the stream begins when the
/// driver calls [`Self::start`]. All methods take `&self`, so one
/// reporter can be shared across worker threads.
pub struct ProgressReporter {
    inner: Mutex<ReporterInner>,
}

impl std::fmt::Debug for ProgressReporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("ProgressReporter")
            .field("campaign", &inner.campaign)
            .field("done", &inner.done)
            .field("total", &inner.total)
            .finish_non_exhaustive()
    }
}

impl ProgressReporter {
    /// New reporter. `writer` receives the JSONL stream (pass `None` for
    /// human-only mode); `human` enables one-line heartbeat summaries on
    /// stderr.
    pub fn new(writer: Option<Box<dyn Write + Send>>, human: bool) -> Self {
        let now = Instant::now();
        Self {
            inner: Mutex::new(ReporterInner {
                writer: writer.map(JsonlWriter::new),
                human,
                degraded: false,
                started_at: now,
                last_beat: now,
                heartbeat_every: Duration::from_secs(1),
                campaign: String::new(),
                total: 0,
                done: 0,
                hits: 0,
                simulated: 0,
                resumed: 0,
                quarantined: 0,
                lane_high_water: 0,
                batch_grouping: String::new(),
                batch_ticks: 0,
                multi_lane_ticks: 0,
                store_health: crate::io::IoHealth::default(),
            }),
        }
    }

    /// Override the heartbeat cadence (default 1 s). `Duration::ZERO`
    /// heartbeats on every cell — useful in tests.
    pub fn with_heartbeat_every(self, every: Duration) -> Self {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .heartbeat_every = every;
        self
    }

    /// Open the stream: emits the [`CampaignStart`] line and starts the
    /// rate clock.
    pub fn start(&self, campaign: &str, cells: u64, resumed: u64, threads: usize) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.campaign = campaign.to_string();
        inner.total = cells;
        inner.started_at = Instant::now();
        inner.last_beat = inner.started_at;
        inner.emit(&ProgressLine::Started(CampaignStart {
            version: PROGRESS_SCHEMA_VERSION,
            campaign: campaign.to_string(),
            cells,
            resumed,
            threads: threads as u64,
        }));
        if inner.human {
            eprintln!(
                "progress {campaign} started: {cells} cells, {resumed} already decided, {threads} threads"
            );
        }
    }

    /// Record one decided cell; emits its [`CellEvent`] line and a
    /// heartbeat when the cadence interval has elapsed.
    pub fn cell(&self, decision: CellDecision, key: &str, worker: usize) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.done += 1;
        match decision {
            CellDecision::Hit => inner.hits += 1,
            CellDecision::Simulated => inner.simulated += 1,
            CellDecision::Quarantined => inner.quarantined += 1,
            CellDecision::Resumed => inner.resumed += 1,
        }
        inner.emit(&ProgressLine::Cell(CellEvent {
            decision,
            key: key.to_string(),
            worker: worker as u64,
        }));
        if inner.last_beat.elapsed() >= inner.heartbeat_every {
            inner.beat();
        }
    }

    /// Raise the reported batch-lane high-water mark (monotone max).
    pub fn note_lane_high_water(&self, lanes: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.lane_high_water = inner.lane_high_water.max(lanes);
    }

    /// Record the batch grouping axis and fold in batched-engine tick
    /// occupancy counters (counts accumulate; the label is
    /// last-writer-wins, which is fine — a campaign runs one grouping).
    pub fn note_batch_occupancy(&self, grouping: &str, batch_ticks: u64, multi_lane_ticks: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.batch_grouping = grouping.to_string();
        inner.batch_ticks += batch_ticks;
        inner.multi_lane_ticks += multi_lane_ticks;
    }

    /// Replace the reported store-health snapshot (absolute counts —
    /// callers pass a fresh [`IoHealth`](crate::io::IoHealth) snapshot,
    /// typically merged across the trial store and manifest, at each
    /// checkpoint). Surfaced in every subsequent heartbeat.
    pub fn note_store_health(&self, health: crate::io::IoHealth) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.store_health = health;
    }

    /// Decided-cell totals so far:
    /// `(done, hits, simulated, resumed, quarantined)`.
    pub fn counts(&self) -> (u64, u64, u64, u64, u64) {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        (
            inner.done,
            inner.hits,
            inner.simulated,
            inner.resumed,
            inner.quarantined,
        )
    }

    /// Close the stream: a final [`Heartbeat`] (whose counts are the
    /// campaign's decided totals), the [`CampaignFinish`] line, then
    /// flush. Returns the flush error, if any — emission errors before
    /// this degraded silently.
    pub fn finish(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.beat();
        let finish = CampaignFinish {
            done: inner.done,
            simulated: inner.simulated,
            hits: inner.hits,
            resumed: inner.resumed,
            quarantined: inner.quarantined,
            wall_s: inner.started_at.elapsed().as_secs_f64(),
        };
        if inner.human {
            eprintln!(
                "progress {} finished: {} cells in {:.2}s ({} hit, {} simulated, {} resumed, {} quarantined)",
                inner.campaign,
                finish.done,
                finish.wall_s,
                finish.hits,
                finish.simulated,
                finish.resumed,
                finish.quarantined
            );
        }
        inner.emit(&ProgressLine::Finished(finish));
        match inner.writer.take() {
            Some(writer) => writer.finish().map(|_| ()),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A `Write` handle into a shared byte buffer.
    #[derive(Clone)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn capture() -> (SharedBuf, Arc<StdMutex<Vec<u8>>>) {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        (SharedBuf(Arc::clone(&buf)), buf)
    }

    #[test]
    fn stream_round_trips_and_final_heartbeat_matches_totals() {
        let (sink, buf) = capture();
        let reporter = ProgressReporter::new(Some(Box::new(sink)), false)
            .with_heartbeat_every(Duration::from_secs(3600));
        reporter.start("fig8", 4, 1, 2);
        reporter.cell(CellDecision::Resumed, "k0", 0);
        reporter.cell(CellDecision::Hit, "k1", 0);
        reporter.cell(CellDecision::Simulated, "k2", 1);
        reporter.cell(CellDecision::Quarantined, "k3", 1);
        reporter.note_lane_high_water(8);
        reporter.note_batch_occupancy("policy", 100, 60);
        reporter.note_batch_occupancy("policy", 50, 30);
        reporter.note_store_health(crate::io::IoHealth {
            retries: 3,
            degraded: 1,
            sync_failures: 2,
        });
        reporter.finish().unwrap();

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines = progress_from_jsonl(&text).unwrap();
        assert!(matches!(lines.first(), Some(ProgressLine::Started(s)) if s.cells == 4));
        let hb = lines
            .iter()
            .rev()
            .find_map(|l| match l {
                ProgressLine::Heartbeat(hb) => Some(hb),
                _ => None,
            })
            .expect("final heartbeat");
        assert_eq!(
            (hb.done, hb.hits, hb.simulated, hb.resumed, hb.quarantined),
            (4, 1, 1, 1, 1)
        );
        assert_eq!(hb.lane_high_water, 8);
        assert_eq!(hb.batch_grouping, "policy");
        assert_eq!((hb.batch_ticks, hb.multi_lane_ticks), (150, 90));
        assert!((hb.multi_lane_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(
            (hb.store_retries, hb.store_degraded, hb.store_sync_failures),
            (3, 1, 2)
        );
        assert!(matches!(lines.last(), Some(ProgressLine::Finished(f)) if f.done == 4));
    }

    #[test]
    fn version_drift_and_missing_start_are_rejected() {
        let (sink, buf) = capture();
        let reporter = ProgressReporter::new(Some(Box::new(sink)), false);
        reporter.start("fig8", 1, 0, 1);
        reporter.finish().unwrap();
        let good = String::from_utf8(buf.lock().unwrap().clone()).unwrap();

        // Future version is refused.
        let drifted = good.replacen("\"version\":1", "\"version\":999", 1);
        assert!(progress_from_jsonl(&drifted)
            .unwrap_err()
            .contains("schema version"));

        // A stream that does not open with Started is refused.
        let headless: String = good.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert!(progress_from_jsonl(&headless)
            .unwrap_err()
            .contains("Started"));

        // An unknown line kind fails in serde, like RunArtifact.
        let alien = format!("{}{{\"Telemetry\":{{}}}}\n", good);
        assert!(progress_from_jsonl(&alien).is_err());
    }

    #[test]
    fn write_failure_degrades_without_losing_counts() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("pipe closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let reporter = ProgressReporter::new(Some(Box::new(Broken)), false);
        reporter.start("fig8", 2, 0, 1);
        reporter.cell(CellDecision::Simulated, "k0", 0);
        reporter.cell(CellDecision::Hit, "k1", 0);
        // The writer was dropped on first failure; finish still succeeds
        // and the totals survived.
        reporter.finish().unwrap();
        assert_eq!(reporter.counts(), (2, 1, 1, 0, 0));
    }
}
