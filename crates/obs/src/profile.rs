//! Scoped wall-clock phase timers.
//!
//! The engine loop and the system model time their phases (event dispatch,
//! policy decision, energy update) by stamping `Instant::now()` around the
//! phase body and recording the elapsed duration here. The profiler is held
//! as an `Option<_>` by its owner, so a disabled run pays one branch per
//! phase boundary and zero clock reads.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Aggregating profiler: a small ordered set of named phases, each with call
/// count and total/max elapsed nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    phases: Vec<(&'static str, Acc)>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Acc {
    calls: u64,
    total_ns: u64,
    max_ns: u64,
}

impl PhaseProfiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamp the start of a phase. Pure convenience over `Instant::now()`.
    #[inline]
    pub fn start() -> Instant {
        Instant::now()
    }

    /// Record one completed phase invocation that started at `t0`.
    #[inline]
    pub fn stop(&mut self, name: &'static str, t0: Instant) {
        self.record(name, t0.elapsed());
    }

    /// Record one completed phase invocation of known duration.
    pub fn record(&mut self, name: &'static str, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let acc = match self.phases.iter_mut().find(|(n, _)| *n == name) {
            Some((_, acc)) => acc,
            None => {
                self.phases.push((name, Acc::default()));
                &mut self.phases.last_mut().expect("just pushed").1
            }
        };
        acc.calls += 1;
        acc.total_ns += ns;
        if ns > acc.max_ns {
            acc.max_ns = ns;
        }
    }

    /// Merge another profiler's accumulators into this one (same-named
    /// phases add; new phases append in the other's order).
    pub fn merge(&mut self, other: &PhaseProfiler) {
        for (name, acc) in &other.phases {
            match self.phases.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => {
                    mine.calls += acc.calls;
                    mine.total_ns += acc.total_ns;
                    mine.max_ns = mine.max_ns.max(acc.max_ns);
                }
                None => self.phases.push((name, *acc)),
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Freeze into a serializable summary, preserving first-seen order.
    pub fn summary(&self) -> PhaseProfile {
        PhaseProfile {
            phases: self
                .phases
                .iter()
                .map(|(name, acc)| PhaseStat {
                    name: (*name).to_owned(),
                    calls: acc.calls,
                    total_ns: acc.total_ns,
                    max_ns: acc.max_ns,
                })
                .collect(),
        }
    }
}

/// Aggregated timing for one named phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStat {
    pub name: String,
    pub calls: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

impl PhaseStat {
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// Serializable profile summary for a whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PhaseProfile {
    pub phases: Vec<PhaseStat>,
}

impl PhaseProfile {
    pub fn get(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.total_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut p = PhaseProfiler::new();
        p.record("dispatch", Duration::from_nanos(100));
        p.record("dispatch", Duration::from_nanos(300));
        p.record("decide", Duration::from_nanos(50));
        let s = p.summary();
        assert_eq!(s.phases.len(), 2);
        let d = s.get("dispatch").unwrap();
        assert_eq!(d.calls, 2);
        assert_eq!(d.total_ns, 400);
        assert_eq!(d.max_ns, 300);
        assert_eq!(d.mean_ns(), 200.0);
        assert_eq!(s.total_ns(), 450);
    }

    #[test]
    fn merge_adds_and_appends() {
        let mut a = PhaseProfiler::new();
        a.record("x", Duration::from_nanos(10));
        let mut b = PhaseProfiler::new();
        b.record("x", Duration::from_nanos(30));
        b.record("y", Duration::from_nanos(5));
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.get("x").unwrap().calls, 2);
        assert_eq!(s.get("x").unwrap().total_ns, 40);
        assert_eq!(s.get("y").unwrap().calls, 1);
    }

    #[test]
    fn stopwatch_measures_something() {
        let mut p = PhaseProfiler::new();
        let t0 = PhaseProfiler::start();
        std::hint::black_box((0..1000).sum::<u64>());
        p.stop("work", t0);
        let s = p.summary();
        assert_eq!(s.get("work").unwrap().calls, 1);
    }
}
