//! Fault-injectable storage I/O: the seam between the persistence
//! stack and the filesystem.
//!
//! Everything that writes campaign state to disk — the pack-file
//! store, the per-file sweep cache, the JSONL manifest, and the
//! [`JsonlWriter`](crate::export::JsonlWriter) behind progress
//! streams — goes through a [`StoreIo`] implementation instead of
//! `std::fs` directly. Two backends exist:
//!
//! * [`RealIo`] — a zero-cost passthrough to `std::fs`.
//! * [`FaultyIo`] — a deterministic fault injector: a SplitMix64
//!   stream (seeded per test, like `core::fault`) schedules short
//!   writes, `EINTR`, `EAGAIN`, `ENOSPC`, failed renames, and failed
//!   syncs at chosen per-family operation counts. Same seed ⇒ same
//!   schedule ⇒ reproducible failures, so recovery paths are testable
//!   instead of theoretical.
//!
//! Alongside the trait live the shared recovery vocabulary types:
//! [`RetryPolicy`] (bounded, jitter-free deterministic backoff for
//! transient errors), [`Durability`] (the `--durability` knob: when
//! `sync_all` barriers run), and [`IoCounters`]/[`IoHealth`] (the
//! `store.retries` / `store.degraded` / `store.sync_failures`
//! accounting surfaced in heartbeats, `exp report`, and the metrics
//! registry).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Read as _, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSink;

/// One SplitMix64 step (same constants as `core::fault`): the
/// generator behind every deterministic fault schedule here.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A writable file handle dispensed by a [`StoreIo`] backend.
///
/// `write` has raw `std::io::Write` semantics — short writes are
/// legal — so injected partial writes surface to the caller's write
/// loop exactly as a real kernel's would.
pub trait StoreFile: Write + Send + fmt::Debug {
    /// Flush file contents and metadata to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncate the file to `len` bytes (recovery: cut a torn tail
    /// back to the last known-good record boundary before retrying).
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem operations the persistence stack needs, as an
/// object-safe trait so a real backend and a fault injector are
/// interchangeable at store-construction time.
///
/// Read-side operations are deliberately not fault-injected: the
/// recovery discipline under test is the *write* path (what a crash
/// or full disk can corrupt); read errors already degrade through the
/// store's checksum rejection.
pub trait StoreIo: Send + Sync + fmt::Debug {
    /// `std::fs::create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Directory entries of `dir` (files only, unordered).
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whole-file read.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Whole-file read as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Open for appending, creating if absent.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StoreFile>>;
    /// Create exclusively (`O_EXCL`): fails with `AlreadyExists` if
    /// the path is taken — the pack-name claim primitive. The handle
    /// appends (`O_APPEND`), so a truncate-by-path rollback moves the
    /// next write back to the new end of file instead of leaving a
    /// zero-filled hole at the handle's old position.
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn StoreFile>>;
    /// Create or truncate for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StoreFile>>;
    /// Atomic rename (the commit point of every tmp-then-rename
    /// sequence). Injectable: a "lost rename" leaves the tmp file.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Truncate a file by path (torn-tail recovery on open).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Whether the path exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The passthrough backend: every operation is the `std::fs` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl RealIo {
    /// A shared handle to the real backend.
    pub fn shared() -> Arc<dyn StoreIo> {
        Arc::new(RealIo)
    }
}

/// A real [`std::fs::File`] as a [`StoreFile`].
#[derive(Debug)]
pub struct RealFile(pub fs::File);

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl StoreFile for RealFile {
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

impl StoreIo for RealIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        let file = fs::OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        Ok(Box::new(RealFile(fs::File::create(path)?)))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        fs::OpenOptions::new().write(true).open(path)?.set_len(len)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// What a scheduled write fault does when its operation count comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Write only half the buffer and report the partial count —
    /// legal `Write` behavior that exercises every caller's loop.
    Short,
    /// `EINTR`: no bytes written, transient.
    Interrupted,
    /// `EAGAIN`: no bytes written, transient.
    WouldBlock,
    /// `ENOSPC`: no bytes written, persistent — retries cannot help.
    StorageFull,
}

/// A deterministic injection schedule: per-family operation counts at
/// which faults fire. Built by [`FaultyIo::seeded`] from a SplitMix64
/// stream or assembled exactly via [`FaultyIo::builder`].
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    /// nth `write` call (counted across all files) → fault.
    pub writes: BTreeMap<u64, WriteFault>,
    /// nth `sync_all` call that fails.
    pub syncs: Vec<u64>,
    /// nth `rename` call that fails.
    pub renames: Vec<u64>,
}

#[derive(Debug, Default)]
struct FaultState {
    schedule: FaultSchedule,
    writes: AtomicU64,
    syncs: AtomicU64,
    renames: AtomicU64,
    injected: AtomicU64,
}

impl FaultState {
    fn next_write_fault(&self) -> Option<WriteFault> {
        let n = self.writes.fetch_add(1, Ordering::Relaxed);
        let fault = self.schedule.writes.get(&n).copied();
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }
    fn sync_fails(&self) -> bool {
        let n = self.syncs.fetch_add(1, Ordering::Relaxed);
        let hit = self.schedule.syncs.contains(&n);
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
    fn rename_fails(&self) -> bool {
        let n = self.renames.fetch_add(1, Ordering::Relaxed);
        let hit = self.schedule.renames.contains(&n);
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

/// Deterministic fault-injecting backend: a [`RealIo`] whose write,
/// sync, and rename paths consult a precomputed [`FaultSchedule`].
#[derive(Debug, Clone)]
pub struct FaultyIo {
    state: Arc<FaultState>,
}

/// Assembles an exact [`FaultSchedule`] for targeted tests.
#[derive(Debug, Default)]
pub struct FaultScheduleBuilder {
    schedule: FaultSchedule,
}

impl FaultScheduleBuilder {
    /// Inject `fault` on the nth write call (0-based, global).
    pub fn write_fault(mut self, nth: u64, fault: WriteFault) -> Self {
        self.schedule.writes.insert(nth, fault);
        self
    }
    /// Fail the nth `sync_all` call.
    pub fn sync_fault(mut self, nth: u64) -> Self {
        self.schedule.syncs.push(nth);
        self
    }
    /// Fail the nth `rename` call.
    pub fn rename_fault(mut self, nth: u64) -> Self {
        self.schedule.renames.push(nth);
        self
    }
    /// Finish into a backend.
    pub fn build(self) -> FaultyIo {
        FaultyIo {
            state: Arc::new(FaultState {
                schedule: self.schedule,
                ..FaultState::default()
            }),
        }
    }
}

impl FaultyIo {
    /// An empty schedule (behaves exactly like [`RealIo`]).
    pub fn builder() -> FaultScheduleBuilder {
        FaultScheduleBuilder::default()
    }

    /// A seeded schedule: over the first `horizon` operations of each
    /// family, each operation faults with probability
    /// `density_permille`/1000; faulting writes draw one of the four
    /// [`WriteFault`] kinds uniformly. Same `(seed, horizon, density)`
    /// ⇒ same schedule.
    pub fn seeded(seed: u64, horizon: u64, density_permille: u64) -> FaultyIo {
        let mut b = Self::builder();
        let mut s = seed ^ 0x010F_A17D_5EED;
        for op in 0..horizon {
            if splitmix64(&mut s) % 1000 < density_permille {
                let kind = match splitmix64(&mut s) % 4 {
                    0 => WriteFault::Short,
                    1 => WriteFault::Interrupted,
                    2 => WriteFault::WouldBlock,
                    _ => WriteFault::StorageFull,
                };
                b = b.write_fault(op, kind);
            }
        }
        for op in 0..horizon {
            if splitmix64(&mut s) % 1000 < density_permille {
                b = b.sync_fault(op);
            }
        }
        for op in 0..horizon {
            if splitmix64(&mut s) % 1000 < density_permille {
                b = b.rename_fault(op);
            }
        }
        b.build()
    }

    /// How many faults have actually fired so far.
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// Total write/sync/rename operations observed so far.
    pub fn operations(&self) -> u64 {
        self.state.writes.load(Ordering::Relaxed)
            + self.state.syncs.load(Ordering::Relaxed)
            + self.state.renames.load(Ordering::Relaxed)
    }
}

/// A file handle whose writes and syncs consult the shared schedule.
struct FaultyFile {
    file: fs::File,
    state: Arc<FaultState>,
}

impl fmt::Debug for FaultyFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyFile").finish_non_exhaustive()
    }
}

impl Write for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.state.next_write_fault() {
            None => self.file.write(buf),
            Some(WriteFault::Short) if buf.len() >= 2 => {
                // A genuine short write: half the bytes land, the
                // caller's loop must continue (or a crash here leaves
                // a torn tail for recovery to cut).
                self.file.write_all(&buf[..buf.len() / 2])?;
                Ok(buf.len() / 2)
            }
            Some(WriteFault::Short) => self.file.write(buf),
            Some(WriteFault::Interrupted) => {
                Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"))
            }
            Some(WriteFault::WouldBlock) => {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "injected EAGAIN"))
            }
            Some(WriteFault::StorageFull) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            )),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl StoreFile for FaultyFile {
    fn sync_all(&mut self) -> io::Result<()> {
        if self.state.sync_fails() {
            return Err(io::Error::other("injected sync failure"));
        }
        self.file.sync_all()
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        // Truncation is the recovery primitive; it stays reliable so
        // every injected schedule has a corruption-free exit.
        self.file.set_len(len)
    }
}

impl StoreIo for FaultyIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        RealIo.create_dir_all(path)
    }
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        RealIo.read_dir(dir)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        RealIo.read(path)
    }
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        RealIo.read_to_string(path)
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(FaultyFile {
            file,
            state: Arc::clone(&self.state),
        }))
    }
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        let file = fs::OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(FaultyFile {
            file,
            state: Arc::clone(&self.state),
        }))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        Ok(Box::new(FaultyFile {
            file: fs::File::create(path)?,
            state: Arc::clone(&self.state),
        }))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.state.rename_fails() {
            return Err(io::Error::other("injected rename failure"));
        }
        RealIo.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        RealIo.remove_file(path)
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        RealIo.truncate(path, len)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// A [`StoreFile`] adapter that retries transient write errors
/// in-place with a [`RetryPolicy`], counting retries into shared
/// [`IoCounters`]. Short writes are absorbed by the internal loop;
/// persistent errors surface to the caller to degrade on. Wrap a
/// stream file in this before handing it to a
/// [`JsonlWriter`](crate::export::JsonlWriter) and the stream gets
/// the same recovery discipline as the stores.
pub struct RetryWriter {
    inner: Box<dyn StoreFile>,
    policy: RetryPolicy,
    counters: Arc<IoCounters>,
}

impl fmt::Debug for RetryWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetryWriter")
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl RetryWriter {
    /// Wrap `inner` with a retry policy and shared counters.
    pub fn new(inner: Box<dyn StoreFile>, policy: RetryPolicy, counters: Arc<IoCounters>) -> Self {
        Self {
            inner,
            policy,
            counters,
        }
    }
}

impl Write for RetryWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.policy.run(&self.counters, || self.inner.write(buf))
    }
    fn flush(&mut self) -> io::Result<()> {
        self.policy.run(&self.counters, || self.inner.flush())
    }
}

impl StoreFile for RetryWriter {
    fn sync_all(&mut self) -> io::Result<()> {
        let out = self.policy.run(&self.counters, || self.inner.sync_all());
        if out.is_err() {
            self.counters.note_sync_failure();
        }
        out
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)
    }
}

/// Bounded, jitter-free retry for transient I/O errors. The schedule
/// is fully deterministic: attempt `i` sleeps `base_backoff · 2^i`,
/// so a test with a known fault schedule sees an exact retry count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). 1 means no retries.
    pub attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base_backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (for tests that want raw errors).
    pub fn none() -> Self {
        Self {
            attempts: 1,
            base_backoff: Duration::ZERO,
        }
    }

    /// Whether `e` is worth retrying: `EINTR`, `EAGAIN`, and timeouts
    /// are; `ENOSPC` and everything else degrade immediately.
    pub fn is_transient(e: &io::Error) -> bool {
        matches!(
            e.kind(),
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    }

    /// The deterministic backoff before retry number `retry` (0-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        self.base_backoff
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
    }

    /// Runs `op`, retrying transient errors up to the attempt budget
    /// with the deterministic backoff schedule. Every retry is counted
    /// into `counters`; the final error (transient budget exhausted or
    /// a persistent error) is returned for the caller to degrade on.
    pub fn run<T>(
        &self,
        counters: &IoCounters,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let mut retry = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if Self::is_transient(&e) && retry + 1 < self.attempts.max(1) => {
                    counters.note_retry();
                    std::thread::sleep(self.backoff(retry));
                    retry += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// When `sync_all` barriers run on the persistence stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Durability {
    /// Never sync: fastest, a crash may lose everything since the
    /// last kernel writeback (records stay torn-tail recoverable).
    None,
    /// Sync at batch boundaries (each decided checkpoint group) and
    /// on close — the default: bounded loss, amortized cost.
    #[default]
    Batch,
    /// Sync after every record: minimal loss window, maximal cost.
    Record,
}

impl Durability {
    /// Parse a `--durability` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Self::None),
            "batch" => Some(Self::Batch),
            "record" => Some(Self::Record),
            _ => None,
        }
    }
    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Batch => "batch",
            Self::Record => "record",
        }
    }
}

/// Shared, thread-safe recovery accounting for one store instance.
#[derive(Debug, Default)]
pub struct IoCounters {
    retries: AtomicU64,
    degraded: AtomicU64,
    sync_failures: AtomicU64,
}

impl IoCounters {
    /// One transient error was retried.
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }
    /// One operation gave up and degraded.
    pub fn note_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }
    /// One `sync_all` barrier failed (data still buffered).
    pub fn note_sync_failure(&self) {
        self.sync_failures.fetch_add(1, Ordering::Relaxed);
    }
    /// Freeze into a plain snapshot.
    pub fn snapshot(&self) -> IoHealth {
        IoHealth {
            retries: self.retries.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            sync_failures: self.sync_failures.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of [`IoCounters`], serializable into
/// heartbeats and reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoHealth {
    /// Transient errors that were retried.
    pub retries: u64,
    /// Operations that exhausted retries (or hit a persistent error)
    /// and degraded.
    pub degraded: u64,
    /// Failed `sync_all` barriers.
    pub sync_failures: u64,
}

impl IoHealth {
    /// Sum two snapshots (e.g. trial store + manifest).
    pub fn merge(self, other: IoHealth) -> IoHealth {
        IoHealth {
            retries: self.retries + other.retries,
            degraded: self.degraded + other.degraded,
            sync_failures: self.sync_failures + other.sync_failures,
        }
    }

    /// Whether nothing went wrong.
    pub fn is_clean(&self) -> bool {
        *self == IoHealth::default()
    }

    /// Publish as `{prefix}.retries` / `{prefix}.degraded` /
    /// `{prefix}.sync_failures` counters.
    pub fn publish<S: MetricsSink + ?Sized>(&self, prefix: &str, sink: &mut S) {
        if !sink.is_enabled() {
            return;
        }
        sink.counter(&format!("{prefix}.retries"), self.retries);
        sink.counter(&format!("{prefix}.degraded"), self.degraded);
        sink.counter(&format!("{prefix}.sync_failures"), self.sync_failures);
    }
}

/// Read the pid + epoch stamp of a lease file (` `-separated).
/// Returns `None` on any parse failure (an empty or torn stamp).
pub fn parse_lease_stamp(text: &str) -> Option<(u32, u64)> {
    let mut parts = text.split_whitespace();
    let pid = parts.next()?.parse().ok()?;
    let epoch = parts.next()?.parse().ok()?;
    Some((pid, epoch))
}

/// Whether a pid is currently alive on this machine. On Linux this
/// checks `/proc/<pid>`; elsewhere it conservatively answers `true`
/// (never reclaim what we cannot verify dead).
pub fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Read a lease stamp from an open file handle (rewinds first).
pub fn read_lease_stamp(file: &mut fs::File) -> Option<(u32, u64)> {
    use std::io::Seek;
    file.seek(io::SeekFrom::Start(0)).ok()?;
    let mut text = String::new();
    file.read_to_string(&mut text).ok()?;
    parse_lease_stamp(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("obs-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn real_io_round_trips() {
        let dir = scratch("real");
        let io = RealIo;
        let path = dir.join("a.txt");
        let mut f = io.create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(io.read(&path).unwrap(), b"hello");
        io.rename(&path, &dir.join("b.txt")).unwrap();
        assert!(!io.exists(&path));
        assert_eq!(io.read_to_string(&dir.join("b.txt")).unwrap(), "hello");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_new_claims_exclusively() {
        let dir = scratch("excl");
        let io = RealIo;
        let path = dir.join("claim");
        io.create_new(&path).unwrap();
        let err = io.create_new(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_short_write_writes_half() {
        let dir = scratch("short");
        let io = FaultyIo::builder()
            .write_fault(0, WriteFault::Short)
            .build();
        let path = dir.join("f");
        let mut f = io.create(&path).unwrap();
        let n = f.write(b"abcdefgh").unwrap();
        assert_eq!(n, 4);
        drop(f);
        assert_eq!(RealIo.read(&path).unwrap(), b"abcd");
        assert_eq!(io.injected(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_transients_then_success() {
        let dir = scratch("transient");
        let io = FaultyIo::builder()
            .write_fault(0, WriteFault::Interrupted)
            .write_fault(1, WriteFault::WouldBlock)
            .build();
        let path = dir.join("f");
        let mut f = io.create(&path).unwrap();
        assert_eq!(
            f.write(b"x").unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        assert_eq!(f.write(b"x").unwrap_err().kind(), io::ErrorKind::WouldBlock);
        f.write_all(b"x").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_enospc_and_sync_and_rename() {
        let dir = scratch("hard");
        let io = FaultyIo::builder()
            .write_fault(0, WriteFault::StorageFull)
            .sync_fault(0)
            .rename_fault(0)
            .build();
        let mut f = io.create(&dir.join("f")).unwrap();
        assert_eq!(
            f.write(b"x").unwrap_err().kind(),
            io::ErrorKind::StorageFull
        );
        assert!(f.sync_all().is_err());
        assert!(io.rename(&dir.join("f"), &dir.join("g")).is_err());
        assert!(io.exists(&dir.join("f")), "failed rename must not move");
        assert_eq!(io.injected(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let a = FaultyIo::seeded(7, 64, 250);
        let b = FaultyIo::seeded(7, 64, 250);
        assert_eq!(a.state.schedule.writes, b.state.schedule.writes);
        assert_eq!(a.state.schedule.syncs, b.state.schedule.syncs);
        assert_eq!(a.state.schedule.renames, b.state.schedule.renames);
        let c = FaultyIo::seeded(8, 64, 250);
        assert!(
            a.state.schedule.writes != c.state.schedule.writes
                || a.state.schedule.syncs != c.state.schedule.syncs
                || a.state.schedule.renames != c.state.schedule.renames,
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn retry_policy_retries_transients_only() {
        let counters = IoCounters::default();
        let policy = RetryPolicy {
            attempts: 3,
            base_backoff: Duration::ZERO,
        };
        let mut calls = 0;
        let out = policy.run(&counters, || {
            calls += 1;
            if calls < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(counters.snapshot().retries, 2);

        let mut calls = 0;
        let out: io::Result<()> = policy.run(&counters, || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::StorageFull, "enospc"))
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "persistent errors must not retry");
    }

    #[test]
    fn retry_budget_is_bounded() {
        let counters = IoCounters::default();
        let policy = RetryPolicy {
            attempts: 4,
            base_backoff: Duration::ZERO,
        };
        let mut calls = 0;
        let out: io::Result<()> = policy.run(&counters, || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::WouldBlock, "eagain"))
        });
        assert!(out.is_err());
        assert_eq!(calls, 4);
        assert_eq!(counters.snapshot().retries, 3);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_doubling() {
        let policy = RetryPolicy {
            attempts: 5,
            base_backoff: Duration::from_millis(2),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(2));
        assert_eq!(policy.backoff(1), Duration::from_millis(4));
        assert_eq!(policy.backoff(2), Duration::from_millis(8));
    }

    #[test]
    fn durability_parses() {
        assert_eq!(Durability::parse("none"), Some(Durability::None));
        assert_eq!(Durability::parse("batch"), Some(Durability::Batch));
        assert_eq!(Durability::parse("record"), Some(Durability::Record));
        assert_eq!(Durability::parse("often"), None);
        assert_eq!(Durability::default(), Durability::Batch);
        assert_eq!(Durability::Batch.name(), "batch");
    }

    #[test]
    fn io_health_merges_and_publishes() {
        let counters = IoCounters::default();
        counters.note_retry();
        counters.note_degraded();
        counters.note_sync_failure();
        counters.note_sync_failure();
        let h = counters.snapshot();
        assert_eq!(h.retries, 1);
        assert_eq!(h.degraded, 1);
        assert_eq!(h.sync_failures, 2);
        assert!(!h.is_clean());
        let merged = h.merge(h);
        assert_eq!(merged.sync_failures, 4);

        let mut reg = crate::MetricsRegistry::new();
        h.publish("store", &mut reg);
        let snap = reg.snapshot();
        let get = |name: &str| {
            snap.entries
                .iter()
                .find(|e| e.name == name)
                .expect("metric present")
        };
        assert!(matches!(
            get("store.retries").value,
            crate::MetricValue::Counter(1)
        ));
        assert!(matches!(
            get("store.sync_failures").value,
            crate::MetricValue::Counter(2)
        ));
    }

    #[test]
    fn lease_stamp_round_trip() {
        assert_eq!(parse_lease_stamp("123 7"), Some((123, 7)));
        assert_eq!(parse_lease_stamp("123 7\n"), Some((123, 7)));
        assert_eq!(parse_lease_stamp(""), None);
        assert_eq!(parse_lease_stamp("nope"), None);
        assert!(pid_alive(std::process::id()));
        assert!(!pid_alive(u32::MAX - 1));
    }

    #[test]
    fn splitmix_matches_reference() {
        // First value of the SplitMix64 reference stream from seed 0.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }
}
