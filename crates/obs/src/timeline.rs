//! Run timelines: piecewise-constant step series of storage level and active
//! DVFS level versus time, with uniform-grid resampling for ASCII plots.
//!
//! A timeline is derived *after* a run from artifacts the simulator already
//! produces (periodic storage samples, trace events); building it never
//! touches simulation state, so it cannot perturb bit-identity.

use serde::{Deserialize, Serialize};

/// A `(time, value)` sample of a real-valued step series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    pub t: f64,
    pub value: f64,
}

/// A `(time, level)` sample of the active DVFS level. Negative levels encode
/// non-running states: [`LevelPoint::IDLE`] and [`LevelPoint::STALLED`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelPoint {
    pub t_ticks: i64,
    pub level: i64,
}

impl LevelPoint {
    /// The CPU is idle (no job admitted).
    pub const IDLE: i64 = -1;
    /// The CPU is stalled waiting for harvested energy.
    pub const STALLED: i64 = -2;
}

/// Energy/frequency timeline of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Timeline {
    /// Stored-energy level over time (step series, left-continuous).
    pub energy: Vec<TimePoint>,
    /// Active DVFS level over time; see [`LevelPoint`] for the encoding.
    pub level: Vec<LevelPoint>,
}

/// Sample a step series onto `width` uniform points across `[t0, t1]`.
/// Each output point holds the value of the last input sample at or before
/// that time (the first sample's value before any sample is seen).
fn resample_step(points: &[(f64, f64)], t0: f64, t1: f64, width: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(width);
    if width == 0 {
        return out;
    }
    if points.is_empty() {
        out.resize(width, 0.0);
        return out;
    }
    let span = (t1 - t0).max(f64::MIN_POSITIVE);
    let mut idx = 0usize;
    let mut current = points[0].1;
    for i in 0..width {
        let t = t0 + span * i as f64 / (width.max(2) - 1) as f64;
        while idx < points.len() && points[idx].0 <= t {
            current = points[idx].1;
            idx += 1;
        }
        out.push(current);
    }
    out
}

impl Timeline {
    pub fn is_empty(&self) -> bool {
        self.energy.is_empty() && self.level.is_empty()
    }

    /// Time span `[t0, t1]` covered by either series, if any samples exist.
    pub fn span(&self) -> Option<(f64, f64)> {
        let mut t0 = f64::INFINITY;
        let mut t1 = f64::NEG_INFINITY;
        for p in &self.energy {
            t0 = t0.min(p.t);
            t1 = t1.max(p.t);
        }
        for p in &self.level {
            t0 = t0.min(p.t_ticks as f64);
            t1 = t1.max(p.t_ticks as f64);
        }
        if t0.is_finite() && t1.is_finite() {
            Some((t0, t1))
        } else {
            None
        }
    }

    /// Storage level resampled onto `width` uniform points over [`span`].
    pub fn energy_series(&self, width: usize) -> Vec<f64> {
        let (t0, t1) = match self.span() {
            Some(s) => s,
            None => return vec![0.0; width],
        };
        let pts: Vec<(f64, f64)> = self.energy.iter().map(|p| (p.t, p.value)).collect();
        resample_step(&pts, t0, t1, width)
    }

    /// Active DVFS level resampled onto `width` uniform points over [`span`]
    /// (idle/stalled states surface as their negative encodings).
    pub fn level_series(&self, width: usize) -> Vec<f64> {
        let (t0, t1) = match self.span() {
            Some(s) => s,
            None => return vec![0.0; width],
        };
        let pts: Vec<(f64, f64)> = self
            .level
            .iter()
            .map(|p| (p.t_ticks as f64, p.level as f64))
            .collect();
        resample_step(&pts, t0, t1, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resample_holds_last_value() {
        let pts = [(0.0, 1.0), (5.0, 3.0), (8.0, 2.0)];
        let s = resample_step(&pts, 0.0, 10.0, 11);
        assert_eq!(s[0], 1.0);
        assert_eq!(s[4], 1.0);
        assert_eq!(s[5], 3.0);
        assert_eq!(s[7], 3.0);
        assert_eq!(s[8], 2.0);
        assert_eq!(s[10], 2.0);
    }

    #[test]
    fn empty_timeline_yields_flat_zero() {
        let t = Timeline::default();
        assert!(t.is_empty());
        assert_eq!(t.span(), None);
        assert_eq!(t.energy_series(4), vec![0.0; 4]);
    }

    #[test]
    fn span_covers_both_series() {
        let t = Timeline {
            energy: vec![TimePoint { t: 2.0, value: 1.0 }],
            level: vec![LevelPoint {
                t_ticks: 9,
                level: LevelPoint::IDLE,
            }],
        };
        assert_eq!(t.span(), Some((2.0, 9.0)));
        let lv = t.level_series(3);
        assert_eq!(lv.len(), 3);
        assert_eq!(*lv.last().unwrap(), -1.0);
    }
}
