//! Campaign-scale span tracing with a Chrome-trace exporter.
//!
//! A sweep campaign is thousands of short cells spread over a handful of
//! workers; per-cell timing has to cost almost nothing on the worker side.
//! The design here is the classic two-tier tracer:
//!
//! - a [`SpanCollector`] owns the trace: a single wall-clock epoch and a
//!   mutex-guarded vector of finished [`SpanRecord`]s;
//! - each worker holds a private [`SpanSink`], which timestamps spans
//!   against the shared epoch and buffers finished records locally,
//!   draining into the collector only every [`SpanSink::FLUSH_AT`] records
//!   (and on drop). The hot path is therefore a `Instant::now()` call and
//!   a `Vec::push`; the global lock is touched once per few hundred spans.
//!
//! The collector exports the [Chrome trace event format] (`ph: "X"`
//! complete events), which both `chrome://tracing` and [Perfetto] load
//! directly: workers render as tracks (`tid`), span categories
//! (`probe` / `build` / `simulate` / `figure` / `store`) are filterable,
//! and per-span args carry cell keys.
//!
//! [Chrome trace event format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use serde::Value;
use std::io::{self, Write};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Span category: store/cache probes.
pub const CAT_PROBE: &str = "probe";
/// Span category: prefab construction (task sets, profiles, predictors).
pub const CAT_BUILD: &str = "build";
/// Span category: trial simulation (scalar or batched).
pub const CAT_SIMULATE: &str = "simulate";
/// Span category: figure-level work (aggregation, whole-figure extent).
pub const CAT_FIGURE: &str = "figure";
/// Span category: result-store writes and maintenance.
pub const CAT_STORE: &str = "store";

/// One finished span: a named interval on a worker track.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (e.g. `"cell"`, `"probe"`, a figure name).
    pub name: String,
    /// Category, one of the `CAT_*` constants.
    pub cat: &'static str,
    /// Track id: worker index, or [`TID_DRIVER`] for the driver thread.
    pub tid: u32,
    /// Microseconds since the collector's epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Free-form key/value attribution (cell key, batch width, ...).
    pub args: Vec<(String, String)>,
}

/// Track id used for driver-thread (non-worker) spans.
pub const TID_DRIVER: u32 = 0;

/// Shared trace: epoch + every drained span. Clone the [`Arc`] freely;
/// hand each worker its own [`SpanSink`] via [`SpanCollector::sink`].
#[derive(Debug)]
pub struct SpanCollector {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for SpanCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanCollector {
    /// New empty collector; the epoch (trace time zero) is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Convenience: a new collector behind an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Microseconds elapsed since the collector's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// A buffering sink for worker track `tid` (use `worker + 1`;
    /// [`TID_DRIVER`] is reserved for the driver).
    pub fn sink(self: &Arc<Self>, tid: u32) -> SpanSink {
        SpanSink {
            collector: Arc::clone(self),
            tid,
            buf: Vec::new(),
        }
    }

    fn drain(&self, buf: &mut Vec<SpanRecord>) {
        if buf.is_empty() {
            return;
        }
        let mut spans = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
        spans.append(buf);
    }

    /// Number of spans drained into the collector so far.
    pub fn len(&self) -> usize {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no spans have been drained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the drained spans, sorted by start time.
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut out = self
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        out.sort_by_key(|s| (s.ts_us, s.tid));
        out
    }

    /// The trace as a Chrome-trace JSON value:
    /// `{"traceEvents": [{"ph": "X", ...}, ...]}`.
    pub fn to_chrome_trace(&self) -> Value {
        let events = self
            .records()
            .into_iter()
            .map(|s| {
                let args = Value::Map(
                    s.args
                        .into_iter()
                        .map(|(k, v)| (k, Value::Str(v)))
                        .collect(),
                );
                Value::Map(vec![
                    ("name".into(), Value::Str(s.name)),
                    ("cat".into(), Value::Str(s.cat.into())),
                    ("ph".into(), Value::Str("X".into())),
                    ("ts".into(), Value::U64(s.ts_us)),
                    ("dur".into(), Value::U64(s.dur_us)),
                    ("pid".into(), Value::U64(1)),
                    ("tid".into(), Value::U64(u64::from(s.tid))),
                    ("args".into(), args),
                ])
            })
            .collect();
        Value::Map(vec![("traceEvents".into(), Value::Seq(events))])
    }

    /// Serialize the Chrome trace into `out`.
    pub fn write_chrome_trace<W: Write>(&self, out: &mut W) -> io::Result<()> {
        let json = serde_json::to_string(&self.to_chrome_trace()).map_err(io::Error::other)?;
        out.write_all(json.as_bytes())?;
        out.write_all(b"\n")
    }
}

/// An in-flight span: the start timestamp, waiting for
/// [`SpanSink::record`]. Obtained from [`SpanSink::start`].
#[derive(Debug, Clone, Copy)]
pub struct SpanStart {
    ts_us: u64,
}

/// Per-worker buffering front-end to a [`SpanCollector`].
///
/// Not `Clone`: each worker owns exactly one, so the local buffer is
/// single-threaded and push is lock-free. Buffered records drain into the
/// collector every [`Self::FLUSH_AT`] spans, on [`Self::flush`], and on
/// drop.
#[derive(Debug)]
pub struct SpanSink {
    collector: Arc<SpanCollector>,
    tid: u32,
    buf: Vec<SpanRecord>,
}

impl SpanSink {
    /// Local records buffered before touching the collector's lock.
    pub const FLUSH_AT: usize = 256;

    /// Begin a span now.
    pub fn start(&self) -> SpanStart {
        SpanStart {
            ts_us: self.collector.now_us(),
        }
    }

    /// Finish a span begun with [`Self::start`] and buffer it.
    pub fn record(&mut self, start: SpanStart, name: &str, cat: &'static str) {
        self.record_with(start, name, cat, Vec::new());
    }

    /// Finish a span, attaching key/value args (cell key, batch size, ...).
    pub fn record_with(
        &mut self,
        start: SpanStart,
        name: &str,
        cat: &'static str,
        args: Vec<(String, String)>,
    ) {
        let end = self.collector.now_us();
        self.buf.push(SpanRecord {
            name: name.to_string(),
            cat,
            tid: self.tid,
            ts_us: start.ts_us,
            dur_us: end.saturating_sub(start.ts_us),
            args,
        });
        if self.buf.len() >= Self::FLUSH_AT {
            self.flush();
        }
    }

    /// Drain the local buffer into the collector.
    pub fn flush(&mut self) {
        self.collector.drain(&mut self.buf);
    }
}

impl Drop for SpanSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_buffers_then_drains_on_drop() {
        let collector = SpanCollector::shared();
        {
            let mut sink = collector.sink(1);
            let t = sink.start();
            sink.record(t, "cell", CAT_SIMULATE);
            let t = sink.start();
            sink.record_with(t, "probe", CAT_PROBE, vec![("key".into(), "k0".into())]);
            // Below FLUSH_AT: nothing drained yet.
            assert!(collector.is_empty());
        }
        let records = collector.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].tid, 1);
        assert!(records
            .iter()
            .any(|r| r.cat == CAT_PROBE && r.args == vec![("key".to_string(), "k0".to_string())]));
    }

    #[test]
    fn explicit_flush_crosses_threads() {
        let collector = SpanCollector::shared();
        let handles: Vec<_> = (0..4u32)
            .map(|w| {
                let collector = Arc::clone(&collector);
                std::thread::spawn(move || {
                    let mut sink = collector.sink(w + 1);
                    for _ in 0..10 {
                        let t = sink.start();
                        sink.record(t, "cell", CAT_SIMULATE);
                    }
                    sink.flush();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(collector.len(), 40);
    }

    #[test]
    fn chrome_trace_shape_is_loadable() {
        let collector = SpanCollector::shared();
        let mut sink = collector.sink(TID_DRIVER);
        let t = sink.start();
        sink.record_with(t, "figure", CAT_FIGURE, vec![("util".into(), "0.4".into())]);
        sink.flush();

        let trace = collector.to_chrome_trace();
        let events = trace
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 1);
        let ev = events[0].as_object().expect("event object");
        let field = |k: &str| {
            ev.iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing field {k}"))
        };
        assert_eq!(field("ph").as_str(), Some("X"));
        assert_eq!(field("cat").as_str(), Some(CAT_FIGURE));
        assert!(matches!(field("ts"), Value::U64(_)));
        assert!(matches!(field("dur"), Value::U64(_)));

        // Round-trips through the JSON printer/parser.
        let mut buf = Vec::new();
        collector.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            back.get("traceEvents")
                .and_then(Value::as_array)
                .map(Vec::len),
            Some(1)
        );
    }
}
