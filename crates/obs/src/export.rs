//! Streaming JSONL (one JSON value per line) export and import.
//!
//! Run artifacts are written as JSONL so a recorder can stream lines out as
//! they are produced without holding the whole artifact in memory, and so
//! downstream tooling can process artifacts line-by-line. Deserialization
//! goes through the same vendored serde stack, which makes round-tripping a
//! schema-drift check: `jsonl_to_vec::<T>(to_jsonl_string(&items))` failing
//! means `T`'s shape changed incompatibly.

use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::Path;

use crate::io::{StoreFile, StoreIo};

/// Streaming writer: one serialized value per `\n`-terminated line.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    inner: W,
    lines: u64,
}

impl<W: Write> JsonlWriter<W> {
    pub fn new(inner: W) -> Self {
        Self { inner, lines: 0 }
    }

    /// Serialize `value` and append it as one line.
    ///
    /// A serialized value that itself contains `\n` would silently split
    /// into two stream lines and corrupt every reader downstream, so it is
    /// rejected with [`io::ErrorKind::InvalidData`] in **all** build
    /// profiles (not just a debug assertion) and nothing is written.
    pub fn write<T: Serialize>(&mut self, value: &T) -> io::Result<()> {
        let json = serde_json::to_string(value).map_err(io::Error::other)?;
        self.write_json_line(&json)
    }

    /// Append one pre-serialized JSON value as a line, enforcing the
    /// single-line invariant.
    fn write_json_line(&mut self, json: &str) -> io::Result<()> {
        if json.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "serialized value contains a newline; it would corrupt the JSONL stream",
            ));
        }
        self.inner.write_all(json.as_bytes())?;
        self.inner.write_all(b"\n")?;
        self.lines += 1;
        Ok(())
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl JsonlWriter<Box<dyn StoreFile>> {
    /// Create (or truncate) `path` through a [`StoreIo`] backend, so
    /// stream files share the store's fault-injection and retry seam.
    pub fn create_with(io: &dyn StoreIo, path: &Path) -> io::Result<Self> {
        Ok(Self::new(io.create(path)?))
    }

    /// Flush buffered lines and sync them to stable storage (the
    /// durability barrier for stream files).
    pub fn sync(&mut self) -> io::Result<()> {
        self.inner.flush()?;
        self.inner.sync_all()
    }
}

/// Serialize a slice into a JSONL string (convenience for in-memory use).
pub fn to_jsonl_string<T: Serialize>(items: &[T]) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    for item in items {
        out.push_str(&serde_json::to_string(item)?);
        out.push('\n');
    }
    Ok(out)
}

/// Parse a JSONL document into typed lines. Blank lines are skipped; any
/// malformed line aborts with its 1-based line number in the error.
pub fn jsonl_to_vec<T: Deserialize>(text: &str) -> Result<Vec<T>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            serde_json::from_str::<T>(line).map_err(|e| format!("jsonl line {}: {}", i + 1, e))?;
        out.push(value);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Row {
        t: f64,
        label: String,
    }

    #[test]
    fn writer_emits_one_line_per_value() {
        let mut w = JsonlWriter::new(Vec::new());
        w.write(&Row {
            t: 1.5,
            label: "a".into(),
        })
        .unwrap();
        w.write(&Row {
            t: 2.0,
            label: "b".into(),
        })
        .unwrap();
        assert_eq!(w.lines(), 2);
        let buf = w.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back: Vec<Row> = jsonl_to_vec(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].label, "b");
    }

    #[test]
    fn round_trip_is_lossless() {
        let items = vec![
            Row {
                t: 0.125,
                label: "x".into(),
            },
            Row {
                t: -3.0,
                label: "".into(),
            },
        ];
        let text = to_jsonl_string(&items).unwrap();
        let back: Vec<Row> = jsonl_to_vec(&text).unwrap();
        assert_eq!(back, items);
    }

    #[test]
    fn multiline_values_error_in_every_profile() {
        // The vendored serializer escapes `\n` inside strings, so this can
        // only happen if the serializer changes (e.g. pretty printing) —
        // but then it must be a hard `io::Error`, not a debug assertion.
        let mut w = JsonlWriter::new(Vec::new());
        let err = w.write_json_line("{\"a\":\n1}").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(w.lines(), 0);
        // Nothing was written: the stream stays intact for the next value.
        w.write_json_line("{\"a\":1}").unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "{\"a\":1}\n");
    }

    #[test]
    fn blank_lines_skipped_and_errors_located() {
        let back: Vec<Row> = jsonl_to_vec("\n{\"t\":1.0,\"label\":\"ok\"}\n\n").unwrap();
        assert_eq!(back.len(), 1);
        let err = jsonl_to_vec::<Row>("{\"t\":1.0,\"label\":\"ok\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
