//! Observability layer for the harvest-rt simulator.
//!
//! This crate deliberately sits *below* the simulation crates in the
//! dependency graph: it knows nothing about tasks, energy, or schedulers.
//! It provides four small, orthogonal pieces:
//!
//! - [`metrics`] — a `MetricsSink` trait mirroring `sim::trace::TraceSink`,
//!   with a [`NullMetrics`] sink that compiles to nothing and a
//!   [`MetricsRegistry`] that accumulates counters / gauges / log2-bucket
//!   histograms and freezes them into a serializable [`MetricsSnapshot`].
//! - [`profile`] — scoped wall-clock phase timers ([`PhaseProfiler`]) that
//!   aggregate into a serializable [`PhaseProfile`] (calls, total, mean, max
//!   per phase).
//! - [`export`] — a streaming JSONL writer/reader: one serde value per line,
//!   lossless round-trip through the vendored `serde_json`.
//! - [`timeline`] — piecewise step series (storage level and active DVFS
//!   level vs. time) with uniform-grid resampling for ASCII plotting.
//! - [`io`] — the fault-injectable storage I/O seam ([`StoreIo`] with a
//!   real backend and a deterministic SplitMix64-scheduled [`FaultyIo`]),
//!   plus the shared recovery vocabulary: [`RetryPolicy`], [`Durability`],
//!   and the [`IoCounters`] / [`IoHealth`] accounting that heartbeats and
//!   reports surface.
//!
//! Campaign-scale telemetry (all opt-in, all zero-cost when absent):
//!
//! - [`span`] — a two-tier span tracer ([`SpanCollector`] /
//!   per-worker [`SpanSink`]) with a Chrome-trace / Perfetto exporter,
//!   so a whole sweep renders as a flame chart of workers × cells.
//! - [`progress`] — a shared [`ProgressReporter`] streaming versioned
//!   JSONL progress events (start / per-cell decision / heartbeat with
//!   rate, hit rate, and ETA / finish), schema-guarded like run
//!   artifacts.
//! - [`flight`] — a fixed-capacity [`FlightRecorder`] ring of recent
//!   events, frozen into JSONL [`FlightDump`]s when a watchdog fires or
//!   a worker panics.
//!
//! Everything here is **off by default** in the simulator: the hot loops keep
//! plain integer counters (no dynamic dispatch) and only publish into a
//! registry once, at end of run, when explicitly asked to.

pub mod export;
pub mod flight;
pub mod io;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod span;
pub mod timeline;

pub use export::{jsonl_to_vec, to_jsonl_string, JsonlWriter};
pub use flight::{
    FlightDump, FlightEvent, FlightLine, FlightMeta, FlightRecorder, SharedFlightRecorder,
    DEFAULT_FLIGHT_CAPACITY,
};
pub use io::{
    Durability, FaultScheduleBuilder, FaultyIo, IoCounters, IoHealth, RealIo, RetryPolicy,
    StoreFile, StoreIo, WriteFault,
};
pub use metrics::{
    Log2Histogram, MetricDelta, MetricEntry, MetricValue, MetricsRegistry, MetricsSink,
    MetricsSnapshot, NullMetrics,
};
pub use profile::{PhaseProfile, PhaseProfiler, PhaseStat};
pub use progress::{
    progress_from_jsonl, CampaignFinish, CampaignStart, CellDecision, CellEvent, Heartbeat,
    ProgressLine, ProgressReporter, PROGRESS_SCHEMA_VERSION,
};
pub use span::{
    SpanCollector, SpanRecord, SpanSink, SpanStart, CAT_BUILD, CAT_FIGURE, CAT_PROBE, CAT_SIMULATE,
    CAT_STORE, TID_DRIVER,
};
pub use timeline::{LevelPoint, TimePoint, Timeline};
