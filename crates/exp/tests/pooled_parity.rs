//! Pooled-execution parity: trials replayed through a worker's
//! [`SimPool`] must be bit-identical to fresh [`run_prefab`] runs, for
//! every policy and **regardless of the order** trials pass through the
//! pool — a pooled context must carry nothing from one run into the
//! next.
//!
//! [`SimPool`]: harvest_exp::scenario::SimPool
//! [`run_prefab`]: harvest_exp::scenario::PaperScenario::run_prefab

use harvest_exp::scenario::{PaperScenario, PolicyKind, SimPool};
use proptest::prelude::*;

/// splitmix64: one `u64` of proptest entropy drives the whole shuffle.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A Fisher–Yates permutation of `0..n` seeded by `seed`.
fn shuffled(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (splitmix64(&mut seed) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

fn scenario_at(capacity: f64) -> PaperScenario {
    // A shortened horizon keeps each case fast without changing what is
    // exercised: queue reuse, scheduler reset, metrics reset.
    let mut s = PaperScenario::new(0.4, capacity);
    s.horizon_units = 1_500;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every (policy × capacity) cell, replayed through one shared pool
    /// in a random order, equals its fresh run — full `SimResult`
    /// equality, which covers job records, energy accounting, event
    /// counts, and sampled levels bit for bit.
    #[test]
    fn pooled_runs_match_fresh_in_any_order(
        perm_seed in any::<u64>(),
        trial_seed in any::<u64>(),
    ) {
        let trial_seed = trial_seed % 4;
        let policies = [PolicyKind::Lsa, PolicyKind::EaDvfs, PolicyKind::GreedyStretch];
        let capacities = [150.0, 600.0];
        let prefab = scenario_at(capacities[0]).prefab(trial_seed);

        let mut cells = Vec::new();
        for &policy in &policies {
            for &capacity in &capacities {
                cells.push((policy, capacity));
            }
        }
        let fresh: Vec<_> = cells
            .iter()
            .map(|&(policy, capacity)| scenario_at(capacity).run_prefab(policy, &prefab))
            .collect();

        let order = shuffled(cells.len(), perm_seed);
        let mut pool = SimPool::new();
        for &i in &order {
            let (policy, capacity) = cells[i];
            let pooled = scenario_at(capacity).run_prefab_in(&mut pool, policy, &prefab);
            prop_assert!(
                pooled == fresh[i],
                "pooled run differs from fresh for {:?} at capacity {} (position {} of shuffle)",
                policy,
                capacity,
                i
            );
        }
        prop_assert_eq!(pool.stats().runs, cells.len() as u64);
        prop_assert!(pool.stats().event_slab_high_water > 0);
    }
}
