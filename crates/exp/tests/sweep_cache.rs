//! Figure-level sweep-cache behaviour: warm re-runs are bit-identical
//! to cold ones and simulate nothing, corrupted entries are rejected
//! and recomputed (never trusted), the capacity-search bisection reuses
//! cached probes, and `HARVEST_SWEEP_CACHE` gates the whole mechanism.

use std::path::PathBuf;

use harvest_exp::cache::{SweepCache, SWEEP_CACHE_ENV};
use harvest_exp::figures::{
    min_zero_miss_capacity_cached, miss_rate_figure_cached, remaining_energy_figure_cached,
};
use harvest_exp::scenario::PolicyKind;
use harvest_exp::store::PackStore;
use harvest_exp::test_support::with_env;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("harvest-sweep-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_miss_rate_rerun_is_bit_identical_and_simulates_nothing() {
    let dir = scratch_dir("missrate");
    let policies = [PolicyKind::Lsa, PolicyKind::EaDvfs];

    let cache = SweepCache::new(&dir).unwrap();
    let (cold, cold_stats) = miss_rate_figure_cached(Some(&cache), 0.4, &policies, 1, 2);
    assert!(cold_stats.simulated > 0, "cold run must simulate");
    assert_eq!(cold_stats.cached, 0);
    assert_eq!(
        cold_stats.pool.runs, cold_stats.simulated,
        "every simulated cell must go through a pooled context"
    );
    assert!(cold_stats.pool.event_slab_high_water > 0);

    // A cache-disabled run is the ground truth the cached paths must hit.
    let (uncached, _) = miss_rate_figure_cached(None, 0.4, &policies, 1, 2);
    assert_eq!(cold, uncached, "caching must not change the figure");

    // Warm re-run: answered entirely from disk, bit-identical.
    let warm_cache = SweepCache::new(&dir).unwrap();
    let (warm, warm_stats) = miss_rate_figure_cached(Some(&warm_cache), 0.4, &policies, 1, 2);
    assert_eq!(warm, cold, "warm figure must be bit-identical");
    assert_eq!(warm_stats.simulated, 0, "warm re-run must simulate nothing");
    assert_eq!(warm_stats.cached, cold_stats.simulated);
    assert_eq!(warm_stats.pool.runs, 0);

    // Corrupt one entry: it must be rejected, recomputed, and re-stored
    // — and the figure must still come out identical.
    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("cache holds entries");
    std::fs::write(&victim, b"{ \"key\": \"poisoned\"").unwrap();
    let healed_cache = SweepCache::new(&dir).unwrap();
    let (healed, healed_stats) = miss_rate_figure_cached(Some(&healed_cache), 0.4, &policies, 1, 2);
    assert_eq!(healed, cold, "a rejected entry must be recomputed exactly");
    assert_eq!(healed_stats.simulated, 1, "only the poisoned cell reruns");
    assert_eq!(healed_cache.stats().rejects, 1);
    assert_eq!(
        healed_cache.stats().stores,
        1,
        "the healed entry is re-stored"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The pack store behind the same figure drivers: cold run populates
/// packs, a reopened store answers the whole grid from memory with
/// bit-identical figures — including the f64 sample curves of the
/// remaining-energy driver — and simulates nothing.
#[test]
fn warm_pack_store_reruns_are_bit_identical_across_figures() {
    let dir = scratch_dir("packstore");
    let policies = [PolicyKind::Lsa, PolicyKind::EaDvfs];

    let store = PackStore::open(&dir).unwrap();
    let (cold_miss, cold_stats) = miss_rate_figure_cached(Some(&store), 0.4, &policies, 1, 2);
    assert!(cold_stats.simulated > 0);
    let (cold_energy, _) =
        remaining_energy_figure_cached(Some(&store), 0.4, &[PolicyKind::EaDvfs], 1, 2, 1000);
    let (cold_cmin, _) =
        min_zero_miss_capacity_cached(Some(&store), PolicyKind::Lsa, 0.4, 1, 2, 1e7, 0.01);
    drop(store);

    let warm_store = PackStore::open(&dir).unwrap();
    let (warm_miss, warm_stats) = miss_rate_figure_cached(Some(&warm_store), 0.4, &policies, 1, 2);
    assert_eq!(warm_miss, cold_miss, "warm figure must be bit-identical");
    assert_eq!(warm_stats.simulated, 0, "warm re-run must simulate nothing");
    let (warm_energy, energy_stats) =
        remaining_energy_figure_cached(Some(&warm_store), 0.4, &[PolicyKind::EaDvfs], 1, 2, 1000);
    assert_eq!(warm_energy, cold_energy, "sample curves round-trip bits");
    assert_eq!(energy_stats.simulated, 0);
    let (warm_cmin, cmin_stats) =
        min_zero_miss_capacity_cached(Some(&warm_store), PolicyKind::Lsa, 0.4, 1, 2, 1e7, 0.01);
    assert_eq!(warm_cmin, cold_cmin, "search replays the probe sequence");
    assert_eq!(cmin_stats.simulated, 0);

    // Ground truth: the uncached figure matches what the store served.
    let (uncached, _) = miss_rate_figure_cached(None, 0.4, &policies, 1, 2);
    assert_eq!(uncached, cold_miss, "the store must not change the figure");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn capacity_search_reuses_cached_probes() {
    let dir = scratch_dir("bisect");
    let cache = SweepCache::new(&dir).unwrap();
    let (cold, cold_stats) =
        min_zero_miss_capacity_cached(Some(&cache), PolicyKind::Lsa, 0.4, 1, 2, 1e7, 0.01);
    assert!(cold.is_finite() && cold > 0.0);
    assert!(cold_stats.simulated > 0);

    // The search is a deterministic function of probe outcomes, so a
    // re-run visits exactly the same capacities and every probe hits.
    let warm_cache = SweepCache::new(&dir).unwrap();
    let (warm, warm_stats) =
        min_zero_miss_capacity_cached(Some(&warm_cache), PolicyKind::Lsa, 0.4, 1, 2, 1e7, 0.01);
    assert_eq!(warm, cold, "search result must replay exactly");
    assert_eq!(warm_stats.simulated, 0);
    assert_eq!(warm_stats.cached, cold_stats.simulated + cold_stats.cached);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_remaining_energy_rerun_preserves_sample_bits() {
    let dir = scratch_dir("energy");
    let cache = SweepCache::new(&dir).unwrap();
    let policies = [PolicyKind::EaDvfs];
    let (cold, cold_stats) =
        remaining_energy_figure_cached(Some(&cache), 0.4, &policies, 1, 2, 1000);
    assert!(cold_stats.simulated > 0);

    let warm_cache = SweepCache::new(&dir).unwrap();
    let (warm, warm_stats) =
        remaining_energy_figure_cached(Some(&warm_cache), 0.4, &policies, 1, 2, 1000);
    // Full struct equality: the sampled curves are rebuilt from stored
    // IEEE-754 bit patterns, so every f64 must match exactly.
    assert_eq!(warm, cold);
    assert_eq!(warm_stats.simulated, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn env_var_gates_the_public_figure_entry() {
    let dir = scratch_dir("envgate");
    let dir_str = dir.to_str().unwrap().to_owned();
    with_env(&[(SWEEP_CACHE_ENV, Some(dir_str.as_str()))], || {
        let cold = harvest_exp::figures::miss_rate_figure(0.4, &[PolicyKind::EaDvfs], 1, 2);
        assert!(
            std::fs::read_dir(&dir).unwrap().count() > 0,
            "enabled cache must persist entries"
        );
        let warm = harvest_exp::figures::miss_rate_figure(0.4, &[PolicyKind::EaDvfs], 1, 2);
        assert_eq!(warm, cold);
    });
    let _ = std::fs::remove_dir_all(&dir);
}
