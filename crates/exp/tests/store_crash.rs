//! Pack-store crash-consistency properties: a torn pack tail loses at
//! most the torn record and never corrupts an earlier one, a truncated
//! or garbled sidecar index is re-derived from the packs with no
//! decided cell lost, and legacy per-file cache entries migrate into
//! the pack byte-identically (f64 sample bit patterns included).
//!
//! The corruption grid mirrors the deterministic fault-injection style
//! of the engine's crash tests: proptest picks *where* to cut, the
//! assertions are exact (which cells survive, which recompute) rather
//! than "it did not crash".

use std::path::PathBuf;

use harvest_exp::cache::{SweepCache, TrialKey, TrialSummary};
use harvest_exp::manifest::CellOutcome;
use harvest_exp::scenario::{PaperScenario, PolicyKind};
use harvest_exp::store::{DecidedStore, PackStore, TrialStore};
use proptest::prelude::*;

fn scratch_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "harvest-store-crash-{tag}-{case:016x}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key_of(seed: u64) -> TrialKey {
    PaperScenario::new(0.4, 300.0).trial_key(PolicyKind::EaDvfs, seed)
}

/// A summary whose payload exercises the full codec: counters plus
/// raw f64 bit patterns (including values JSON could not round-trip,
/// like NaNs with payload bits).
fn summary_of(seed: u64, sample_bits: &[u64]) -> TrialSummary {
    TrialSummary {
        released: 40 + seed,
        completed_in_time: 30 + seed,
        missed: 10,
        sample_level_bits: sample_bits.to_vec(),
    }
}

/// The single pack file of a store written by one thread.
fn only_pack(dir: &PathBuf) -> PathBuf {
    let packs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "hpk"))
        .collect();
    assert_eq!(packs.len(), 1, "single-threaded appends use one slot");
    packs.into_iter().next().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cut an arbitrary number of bytes off the pack tail: every record
    /// before the cut must survive bit-identically, everything at or
    /// past the cut is truncated away (a recomputable miss, never a
    /// garbled hit), and the reopened store has healed the file to a
    /// record boundary so a third open scans cleanly.
    #[test]
    fn torn_pack_tail_loses_only_the_torn_records(
        case in any::<u64>(),
        records in 2usize..6,
        cut in 1u64..200,
        bits in proptest::collection::vec(any::<u64>(), 0..5),
    ) {
        let dir = scratch_dir("tail", case);
        {
            let store = PackStore::open(&dir).unwrap();
            for seed in 0..records as u64 {
                store.store(&key_of(seed), &summary_of(seed, &bits));
            }
        }
        let pack = only_pack(&dir);
        let full = std::fs::read(&pack).unwrap();
        // Never cut into the 8-byte magic: a headerless file is ignored
        // wholesale, which is the unit-tested path, not this one.
        let cut = (cut % (full.len() as u64 - 8)).max(1);
        let torn_len = full.len() - cut as usize;
        std::fs::write(&pack, &full[..torn_len]).unwrap();

        let reopened = PackStore::open(&dir).unwrap();
        let healed_len = std::fs::metadata(&pack).unwrap().len();
        prop_assert!(healed_len <= torn_len as u64, "healing never grows the file");
        // Survivors are exactly the records wholly before the cut —
        // count them through probes and check bit-identity.
        let mut survivors = 0;
        for seed in 0..records as u64 {
            if let Some(got) = reopened.probe(&key_of(seed)) {
                prop_assert_eq!(got, summary_of(seed, &bits));
                survivors += 1;
            } else {
                // Missing records must be a suffix: a torn tail cannot
                // swallow an earlier record while serving a later one.
                for later in seed..records as u64 {
                    prop_assert!(reopened.probe(&key_of(later)).is_none());
                }
                break;
            }
        }
        prop_assert!(survivors < records, "the cut destroyed at least one record");
        prop_assert_eq!(reopened.len(), survivors);
        // The lost cells recompute and re-store; a clean reopen then
        // serves the full grid again.
        for seed in survivors as u64..records as u64 {
            reopened.store(&key_of(seed), &summary_of(seed, &bits));
        }
        drop(reopened);
        let healed = PackStore::open(&dir).unwrap();
        for seed in 0..records as u64 {
            prop_assert_eq!(healed.probe(&key_of(seed)), Some(summary_of(seed, &bits)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncate or garble the sidecar index at an arbitrary byte: the
    /// store must fall back to a full pack scan and serve every decided
    /// cell — done *and* quarantined records both survive, so a resumed
    /// fault campaign loses nothing to a torn index.
    #[test]
    fn truncated_sidecar_rederives_every_decided_cell(
        case in any::<u64>(),
        cut_at in 0usize..64,
        garble in any::<bool>(),
    ) {
        let dir = scratch_dir("idx", case);
        let failure = harvest_exp::parallel::CellFailure {
            message: "watchdog: starved".to_owned(),
            panicked: false,
            worker: 1,
            flight: None,
        };
        {
            let store = PackStore::open(&dir).unwrap();
            for seed in 0..3u64 {
                store.record_done(&key_of(seed), &summary_of(seed, &[1, 2])).unwrap();
            }
            store.record_quarantined(&key_of(3), &failure).unwrap();
        }
        let idx = only_pack(&dir).with_extension("idx");
        prop_assert!(idx.exists(), "clean drop writes the sidecar");
        let idx_bytes = std::fs::read(&idx).unwrap();
        let cut_at = cut_at % idx_bytes.len();
        if garble {
            let mut garbled = idx_bytes.clone();
            garbled[cut_at] ^= 0xA5;
            std::fs::write(&idx, garbled).unwrap();
        } else {
            std::fs::write(&idx, &idx_bytes[..cut_at]).unwrap();
        }

        let reopened = PackStore::open(&dir).unwrap();
        prop_assert_eq!(reopened.resumed(), 4, "every decided cell reloads");
        for seed in 0..3u64 {
            match reopened.decided(&key_of(seed)) {
                Some(CellOutcome::Done(got)) => prop_assert_eq!(got, summary_of(seed, &[1, 2])),
                other => prop_assert!(false, "cell {} not done: {:?}", seed, other),
            }
        }
        match reopened.decided(&key_of(3)) {
            Some(CellOutcome::Quarantined(got)) => prop_assert_eq!(got, failure.clone()),
            other => prop_assert!(false, "quarantine lost: {:?}", other),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Legacy per-file JSON cache entries migrate into the pack store
    /// byte-identically — counters and raw sample bit patterns — and
    /// the migration marker makes a second pass a no-op.
    #[test]
    fn legacy_migration_round_trips_sample_bits(
        case in any::<u64>(),
        grids in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..4), 1..4),
    ) {
        let legacy = scratch_dir("legacy-src", case);
        let dir = scratch_dir("legacy-dst", case);
        let cache = SweepCache::new(&legacy).unwrap();
        for (seed, bits) in grids.iter().enumerate() {
            cache.put(&key_of(seed as u64), &summary_of(seed as u64, bits));
        }

        let store = PackStore::open(&dir).unwrap();
        let migrated = store.migrate_legacy(&legacy).unwrap();
        prop_assert_eq!(migrated, grids.len());
        for (seed, bits) in grids.iter().enumerate() {
            prop_assert_eq!(
                store.probe(&key_of(seed as u64)),
                Some(summary_of(seed as u64, bits))
            );
        }
        prop_assert_eq!(store.migrate_legacy(&legacy).unwrap(), 0, "marker stops a re-run");
        drop(store);
        // The migrated records persist in the pack across a reopen.
        let reopened = PackStore::open(&dir).unwrap();
        for (seed, bits) in grids.iter().enumerate() {
            prop_assert_eq!(
                reopened.probe(&key_of(seed as u64)),
                Some(summary_of(seed as u64, bits))
            );
        }
        let _ = std::fs::remove_dir_all(&legacy);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
