//! End-to-end `exp` CLI behaviour of the pack store: a cold sweep
//! followed by a warm `--expect-warm` re-run reproduces the figure
//! digest with zero simulated cells, an unopenable `HARVEST_SWEEP_STORE`
//! degrades to an uncached run with one warning (exit 0), a fault-sweep
//! resumed through `--store` re-simulates nothing (the pack's decided
//! records serve both the cache and manifest roles), and the
//! `store stat` / `store compact` subcommands round-trip a store
//! directory without disturbing its contents.

use std::path::PathBuf;
use std::process::{Command, Output};

fn exp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exp"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("harvest-store-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The `key=value` field of the first stdout line containing it.
fn field(out: &Output, key: &str) -> String {
    let text = stdout(out);
    let needle = format!("{key}=");
    text.lines()
        .find_map(|l| {
            l.split_whitespace()
                .find_map(|tok| tok.strip_prefix(&needle))
        })
        .unwrap_or_else(|| panic!("no `{key}=` in output:\n{text}"))
        .to_owned()
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("spawn exp")
}

#[test]
fn cold_then_warm_store_sweep_is_digest_identical() {
    let dir = scratch_dir("warm");
    let args = |extra: &[&str]| {
        let mut v = vec![
            "sweep".to_owned(),
            "--util".to_owned(),
            "0.4".to_owned(),
            "--trials".to_owned(),
            "1".to_owned(),
            "--threads".to_owned(),
            "2".to_owned(),
            "--store".to_owned(),
            dir.to_str().unwrap().to_owned(),
        ];
        v.extend(extra.iter().map(|s| (*s).to_owned()));
        v
    };
    let cold = run(exp().args(args(&[])));
    assert!(
        cold.status.success(),
        "cold sweep failed: {}",
        stderr(&cold)
    );
    assert_ne!(field(&cold, "simulated"), "0", "cold run must simulate");
    let cold_digest = field(&cold, "figure_fnv64");

    let warm = run(exp().args(args(&["--expect-warm"])));
    assert!(
        warm.status.success(),
        "warm sweep failed: {}",
        stderr(&warm)
    );
    assert_eq!(field(&warm, "simulated"), "0");
    assert_eq!(field(&warm, "figure_fnv64"), cold_digest);
    // The store's accounting surfaces both as a summary line and as
    // registry-rendered metric lines next to the pool gauges.
    assert!(stdout(&warm).contains("store dir="), "{}", stdout(&warm));
    assert!(
        stdout(&warm).contains("metric store.hit_rate=1"),
        "warm run must be all hits:\n{}",
        stdout(&warm)
    );

    // A warm run against a compacted store still reproduces the digest.
    let compact = run(exp().args(["store", "compact", dir.to_str().unwrap()]));
    assert!(compact.status.success(), "{}", stderr(&compact));
    let rewarm = run(exp().args(args(&["--expect-warm"])));
    assert!(rewarm.status.success(), "{}", stderr(&rewarm));
    assert_eq!(field(&rewarm, "figure_fnv64"), cold_digest);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unopenable_store_env_degrades_with_one_warning() {
    let blocker = scratch_dir("degrade");
    // A plain file where the path expects a directory: `create_dir_all`
    // on `<blocker>/store` fails with ENOTDIR even for root.
    std::fs::write(&blocker, b"not a directory").unwrap();
    let bad = blocker.join("store");
    let out = run(exp()
        .args(["sweep", "--util", "0.4", "--trials", "1", "--threads", "2"])
        .env("HARVEST_SWEEP_STORE", &bad));
    assert!(
        out.status.success(),
        "degraded sweep must still exit 0: {}",
        stderr(&out)
    );
    assert!(
        stderr(&out).contains("cannot open sweep store"),
        "expected a degradation warning, got:\n{}",
        stderr(&out)
    );
    assert_ne!(field(&out, "simulated"), "0", "uncached run simulates");
    assert!(
        !stdout(&out).contains("store dir="),
        "a degraded run reports no store"
    );
    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn fault_sweep_resumes_through_the_store_alone() {
    let dir = scratch_dir("resume");
    let args = |extra: &[&str]| {
        let mut v = vec![
            "fault-sweep".to_owned(),
            "--util".to_owned(),
            "0.4".to_owned(),
            "--capacity".to_owned(),
            "300".to_owned(),
            "--trials".to_owned(),
            "1".to_owned(),
            "--threads".to_owned(),
            "2".to_owned(),
            "--horizon".to_owned(),
            "1000".to_owned(),
            "--intensities".to_owned(),
            "0.0,1.0".to_owned(),
            "--store".to_owned(),
            dir.to_str().unwrap().to_owned(),
        ];
        v.extend(extra.iter().map(|s| (*s).to_owned()));
        v
    };
    let cold = run(exp().args(args(&[])));
    assert!(cold.status.success(), "{}", stderr(&cold));
    let simulated: u64 = field(&cold, "simulated").parse().unwrap();
    assert!(simulated > 0);
    assert_eq!(field(&cold, "resumed"), "0");
    let digest = field(&cold, "figure_fnv64");

    // No --manifest: the pack's decided records alone must resume the
    // campaign, and resolution must count as resumed, not cached.
    let resumed = run(exp().args(args(&["--expect-resumed"])));
    assert!(resumed.status.success(), "{}", stderr(&resumed));
    assert_eq!(field(&resumed, "simulated"), "0");
    assert_eq!(field(&resumed, "resumed"), simulated.to_string());
    assert_eq!(field(&resumed, "figure_fnv64"), digest);

    // One record per cell: when the pack already holds the manifest
    // role it must not ALSO be written through the trial-store role,
    // so compaction finds no superseded duplicates to drop.
    let compact = run(exp().args(["store", "compact", dir.to_str().unwrap()]));
    assert!(compact.status.success(), "{}", stderr(&compact));
    assert_eq!(
        field(&compact, "records_before"),
        simulated.to_string(),
        "each decided cell must append exactly one record"
    );
    assert_eq!(field(&compact, "records_after"), simulated.to_string());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_stat_and_compact_report_the_directory() {
    let dir = scratch_dir("stat");
    let sweep = run(exp().args([
        "sweep",
        "--util",
        "0.4",
        "--trials",
        "1",
        "--threads",
        "2",
        "--store",
        dir.to_str().unwrap(),
    ]));
    assert!(sweep.status.success(), "{}", stderr(&sweep));

    let stat = run(exp().args(["store", "stat", dir.to_str().unwrap()]));
    assert!(stat.status.success(), "{}", stderr(&stat));
    let records: u64 = field(&stat, "records").parse().unwrap();
    assert!(records > 0);
    assert_eq!(field(&stat, "done"), records.to_string());
    assert_eq!(field(&stat, "quarantined"), "0");
    let bytes_before: u64 = field(&stat, "bytes").parse().unwrap();

    let compact = run(exp().args(["store", "compact", dir.to_str().unwrap()]));
    assert!(compact.status.success(), "{}", stderr(&compact));
    assert_eq!(field(&compact, "records_after"), records.to_string());
    assert_eq!(field(&compact, "bytes_before"), bytes_before.to_string());

    let after = run(exp().args(["store", "stat", dir.to_str().unwrap()]));
    assert!(after.status.success(), "{}", stderr(&after));
    assert_eq!(field(&after, "packs"), "1", "compaction merges to one pack");
    assert_eq!(field(&after, "records"), records.to_string());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_and_cache_flags_are_mutually_exclusive() {
    for sub in ["sweep", "fault-sweep"] {
        let out = run(exp().args([sub, "--store", "/tmp/a", "--cache", "/tmp/b"]));
        assert_eq!(out.status.code(), Some(2), "usage error must exit 2");
        assert!(
            stderr(&out).contains("mutually exclusive"),
            "{}",
            stderr(&out)
        );
    }
}

/// A flipped byte mid-record: `store scrub` quarantines exactly that
/// record, keeps the rest, and the next warm run re-simulates exactly
/// the one lost cell back to the original figure digest.
#[test]
fn scrub_quarantines_a_corrupted_record_and_the_cell_recomputes() {
    let dir = scratch_dir("scrub");
    let args = |extra: &[&str]| {
        let mut v = vec![
            "sweep".to_owned(),
            "--util".to_owned(),
            "0.4".to_owned(),
            "--trials".to_owned(),
            "1".to_owned(),
            "--threads".to_owned(),
            "2".to_owned(),
            "--store".to_owned(),
            dir.to_str().unwrap().to_owned(),
        ];
        v.extend(extra.iter().map(|s| (*s).to_owned()));
        v
    };
    let cold = run(exp().args(args(&[])));
    assert!(cold.status.success(), "{}", stderr(&cold));
    let simulated: u64 = field(&cold, "simulated").parse().unwrap();
    assert!(simulated >= 2, "the cold grid simulates every cell");
    let digest = field(&cold, "figure_fnv64");

    // Flip one byte inside the first record body of one pack.
    let pack = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "hpk"))
        .expect("a pack file");
    let mut bytes = std::fs::read(&pack).unwrap();
    bytes[8 + 6] ^= 0xA5;
    std::fs::write(&pack, bytes).unwrap();

    let scrub = run(exp().args(["store", "scrub", dir.to_str().unwrap()]));
    assert!(scrub.status.success(), "{}", stderr(&scrub));
    assert_eq!(field(&scrub, "corrupt_spans"), "1");
    let kept: u64 = field(&scrub, "records_kept").parse().unwrap();
    assert_eq!(kept, simulated - 1, "scrub loses exactly the bad record");
    assert!(
        dir.join("scrub-quarantine").is_dir(),
        "the corrupt bytes are preserved for post-mortem"
    );

    // A second scrub of the clean store finds nothing to quarantine.
    let again = run(exp().args(["store", "scrub", dir.to_str().unwrap(), "--json"]));
    assert!(again.status.success(), "{}", stderr(&again));
    assert!(stdout(&again).contains("\"corrupt_spans\": 0"));

    // The warm run recomputes exactly the quarantined cell.
    let warm = run(exp().args(args(&[])));
    assert!(warm.status.success(), "{}", stderr(&warm));
    assert_eq!(field(&warm, "simulated"), "1");
    assert_eq!(field(&warm, "figure_fnv64"), digest);
    let rewarm = run(exp().args(args(&["--expect-warm"])));
    assert!(rewarm.status.success(), "{}", stderr(&rewarm));
    assert_eq!(field(&rewarm, "figure_fnv64"), digest);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Two concurrent `exp fault-sweep --store` processes writing disjoint
/// halves of a grid into one directory: writer leases keep their packs
/// disjoint, both campaigns complete, and the combined store decides
/// every cell exactly once.
#[test]
fn two_concurrent_writers_fill_one_store_without_collisions() {
    let dir = scratch_dir("two-writers");
    let args = |intensities: &str, extra: &[&str]| {
        let mut v = vec![
            "fault-sweep".to_owned(),
            "--util".to_owned(),
            "0.4".to_owned(),
            "--capacity".to_owned(),
            "300".to_owned(),
            "--trials".to_owned(),
            "1".to_owned(),
            "--threads".to_owned(),
            "2".to_owned(),
            "--horizon".to_owned(),
            "1000".to_owned(),
            "--intensities".to_owned(),
            intensities.to_owned(),
            "--store".to_owned(),
            dir.to_str().unwrap().to_owned(),
        ];
        v.extend(extra.iter().map(|s| (*s).to_owned()));
        v
    };
    let mut a = exp().args(args("0.0,0.5", &[])).spawn().expect("spawn a");
    let mut b = exp().args(args("0.25,0.75", &[])).spawn().expect("spawn b");
    let status_a = a.wait().expect("wait a");
    let status_b = b.wait().expect("wait b");
    assert!(status_a.success() && status_b.success());

    // 3 policies x 1 trial x 2 intensities per process, disjoint
    // halves: 12 decided cells, each recorded exactly once.
    let compact = run(exp().args(["store", "compact", dir.to_str().unwrap()]));
    assert!(compact.status.success(), "{}", stderr(&compact));
    assert_eq!(field(&compact, "records_before"), "12");
    assert_eq!(field(&compact, "records_after"), "12");

    // The union resumes the full grid with zero re-simulation.
    let union = run(exp().args(args("0.0,0.25,0.5,0.75", &["--expect-resumed"])));
    assert!(union.status.success(), "{}", stderr(&union));
    assert_eq!(field(&union, "simulated"), "0");
    assert_eq!(field(&union, "resumed"), "12");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--durability` is accepted end-to-end: a `record`-durability cold
/// run and a `none`-durability warm run reproduce the same digest, and
/// a bogus level is a usage error.
#[test]
fn durability_levels_round_trip_the_same_figure() {
    let dir = scratch_dir("durability");
    let args = |extra: &[&str]| {
        let mut v = vec![
            "sweep".to_owned(),
            "--util".to_owned(),
            "0.4".to_owned(),
            "--trials".to_owned(),
            "1".to_owned(),
            "--threads".to_owned(),
            "2".to_owned(),
            "--store".to_owned(),
            dir.to_str().unwrap().to_owned(),
        ];
        v.extend(extra.iter().map(|s| (*s).to_owned()));
        v
    };
    let cold = run(exp().args(args(&["--durability", "record"])));
    assert!(cold.status.success(), "{}", stderr(&cold));
    let digest = field(&cold, "figure_fnv64");

    let warm = run(exp().args(args(&["--durability", "none", "--expect-warm"])));
    assert!(warm.status.success(), "{}", stderr(&warm));
    assert_eq!(field(&warm, "figure_fnv64"), digest);

    let bogus = run(exp().args(args(&["--durability", "paranoid"])));
    assert_eq!(bogus.status.code(), Some(2), "usage error must exit 2");
    assert!(
        stderr(&bogus).contains("none, batch, or record"),
        "{}",
        stderr(&bogus)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Lease files stamped with a dead process's pid are stale: the next
/// writer takes the slot over (with a note) instead of skipping it,
/// and the campaign completes normally.
#[test]
fn stale_leases_from_a_dead_process_are_taken_over() {
    let dir = scratch_dir("stale-lease");
    std::fs::create_dir_all(&dir).unwrap();
    // A pid that is certainly dead: a just-reaped child of ours.
    let dead = {
        let child = exp().arg("bogus-subcommand").output().expect("spawn");
        assert_eq!(child.status.code(), Some(2));
        exp()
            .arg("bogus-subcommand")
            .spawn()
            .expect("spawn short-lived child")
    };
    let dead_pid = dead.id();
    let mut dead = dead;
    let _ = dead.wait();
    // Stamp every slot so the sweep's writers hit a stale lease no
    // matter which slots its threads hash to.
    for slot in 0..16 {
        std::fs::write(dir.join(format!("lease-{slot}")), format!("{dead_pid} 1\n")).unwrap();
    }
    let out = run(exp().args([
        "sweep",
        "--util",
        "0.4",
        "--trials",
        "1",
        "--threads",
        "2",
        "--store",
        dir.to_str().unwrap(),
    ]));
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("took over stale writer lease"),
        "expected a takeover note, got:\n{}",
        stderr(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
