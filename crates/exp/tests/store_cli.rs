//! End-to-end `exp` CLI behaviour of the pack store: a cold sweep
//! followed by a warm `--expect-warm` re-run reproduces the figure
//! digest with zero simulated cells, an unopenable `HARVEST_SWEEP_STORE`
//! degrades to an uncached run with one warning (exit 0), a fault-sweep
//! resumed through `--store` re-simulates nothing (the pack's decided
//! records serve both the cache and manifest roles), and the
//! `store stat` / `store compact` subcommands round-trip a store
//! directory without disturbing its contents.

use std::path::PathBuf;
use std::process::{Command, Output};

fn exp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exp"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("harvest-store-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The `key=value` field of the first stdout line containing it.
fn field(out: &Output, key: &str) -> String {
    let text = stdout(out);
    let needle = format!("{key}=");
    text.lines()
        .find_map(|l| {
            l.split_whitespace()
                .find_map(|tok| tok.strip_prefix(&needle))
        })
        .unwrap_or_else(|| panic!("no `{key}=` in output:\n{text}"))
        .to_owned()
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("spawn exp")
}

#[test]
fn cold_then_warm_store_sweep_is_digest_identical() {
    let dir = scratch_dir("warm");
    let args = |extra: &[&str]| {
        let mut v = vec![
            "sweep".to_owned(),
            "--util".to_owned(),
            "0.4".to_owned(),
            "--trials".to_owned(),
            "1".to_owned(),
            "--threads".to_owned(),
            "2".to_owned(),
            "--store".to_owned(),
            dir.to_str().unwrap().to_owned(),
        ];
        v.extend(extra.iter().map(|s| (*s).to_owned()));
        v
    };
    let cold = run(exp().args(args(&[])));
    assert!(
        cold.status.success(),
        "cold sweep failed: {}",
        stderr(&cold)
    );
    assert_ne!(field(&cold, "simulated"), "0", "cold run must simulate");
    let cold_digest = field(&cold, "figure_fnv64");

    let warm = run(exp().args(args(&["--expect-warm"])));
    assert!(
        warm.status.success(),
        "warm sweep failed: {}",
        stderr(&warm)
    );
    assert_eq!(field(&warm, "simulated"), "0");
    assert_eq!(field(&warm, "figure_fnv64"), cold_digest);
    // The store's accounting surfaces both as a summary line and as
    // registry-rendered metric lines next to the pool gauges.
    assert!(stdout(&warm).contains("store dir="), "{}", stdout(&warm));
    assert!(
        stdout(&warm).contains("metric store.hit_rate=1"),
        "warm run must be all hits:\n{}",
        stdout(&warm)
    );

    // A warm run against a compacted store still reproduces the digest.
    let compact = run(exp().args(["store", "compact", dir.to_str().unwrap()]));
    assert!(compact.status.success(), "{}", stderr(&compact));
    let rewarm = run(exp().args(args(&["--expect-warm"])));
    assert!(rewarm.status.success(), "{}", stderr(&rewarm));
    assert_eq!(field(&rewarm, "figure_fnv64"), cold_digest);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unopenable_store_env_degrades_with_one_warning() {
    let blocker = scratch_dir("degrade");
    // A plain file where the path expects a directory: `create_dir_all`
    // on `<blocker>/store` fails with ENOTDIR even for root.
    std::fs::write(&blocker, b"not a directory").unwrap();
    let bad = blocker.join("store");
    let out = run(exp()
        .args(["sweep", "--util", "0.4", "--trials", "1", "--threads", "2"])
        .env("HARVEST_SWEEP_STORE", &bad));
    assert!(
        out.status.success(),
        "degraded sweep must still exit 0: {}",
        stderr(&out)
    );
    assert!(
        stderr(&out).contains("cannot open sweep store"),
        "expected a degradation warning, got:\n{}",
        stderr(&out)
    );
    assert_ne!(field(&out, "simulated"), "0", "uncached run simulates");
    assert!(
        !stdout(&out).contains("store dir="),
        "a degraded run reports no store"
    );
    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn fault_sweep_resumes_through_the_store_alone() {
    let dir = scratch_dir("resume");
    let args = |extra: &[&str]| {
        let mut v = vec![
            "fault-sweep".to_owned(),
            "--util".to_owned(),
            "0.4".to_owned(),
            "--capacity".to_owned(),
            "300".to_owned(),
            "--trials".to_owned(),
            "1".to_owned(),
            "--threads".to_owned(),
            "2".to_owned(),
            "--horizon".to_owned(),
            "1000".to_owned(),
            "--intensities".to_owned(),
            "0.0,1.0".to_owned(),
            "--store".to_owned(),
            dir.to_str().unwrap().to_owned(),
        ];
        v.extend(extra.iter().map(|s| (*s).to_owned()));
        v
    };
    let cold = run(exp().args(args(&[])));
    assert!(cold.status.success(), "{}", stderr(&cold));
    let simulated: u64 = field(&cold, "simulated").parse().unwrap();
    assert!(simulated > 0);
    assert_eq!(field(&cold, "resumed"), "0");
    let digest = field(&cold, "figure_fnv64");

    // No --manifest: the pack's decided records alone must resume the
    // campaign, and resolution must count as resumed, not cached.
    let resumed = run(exp().args(args(&["--expect-resumed"])));
    assert!(resumed.status.success(), "{}", stderr(&resumed));
    assert_eq!(field(&resumed, "simulated"), "0");
    assert_eq!(field(&resumed, "resumed"), simulated.to_string());
    assert_eq!(field(&resumed, "figure_fnv64"), digest);

    // One record per cell: when the pack already holds the manifest
    // role it must not ALSO be written through the trial-store role,
    // so compaction finds no superseded duplicates to drop.
    let compact = run(exp().args(["store", "compact", dir.to_str().unwrap()]));
    assert!(compact.status.success(), "{}", stderr(&compact));
    assert_eq!(
        field(&compact, "records_before"),
        simulated.to_string(),
        "each decided cell must append exactly one record"
    );
    assert_eq!(field(&compact, "records_after"), simulated.to_string());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_stat_and_compact_report_the_directory() {
    let dir = scratch_dir("stat");
    let sweep = run(exp().args([
        "sweep",
        "--util",
        "0.4",
        "--trials",
        "1",
        "--threads",
        "2",
        "--store",
        dir.to_str().unwrap(),
    ]));
    assert!(sweep.status.success(), "{}", stderr(&sweep));

    let stat = run(exp().args(["store", "stat", dir.to_str().unwrap()]));
    assert!(stat.status.success(), "{}", stderr(&stat));
    let records: u64 = field(&stat, "records").parse().unwrap();
    assert!(records > 0);
    assert_eq!(field(&stat, "done"), records.to_string());
    assert_eq!(field(&stat, "quarantined"), "0");
    let bytes_before: u64 = field(&stat, "bytes").parse().unwrap();

    let compact = run(exp().args(["store", "compact", dir.to_str().unwrap()]));
    assert!(compact.status.success(), "{}", stderr(&compact));
    assert_eq!(field(&compact, "records_after"), records.to_string());
    assert_eq!(field(&compact, "bytes_before"), bytes_before.to_string());

    let after = run(exp().args(["store", "stat", dir.to_str().unwrap()]));
    assert!(after.status.success(), "{}", stderr(&after));
    assert_eq!(field(&after, "packs"), "1", "compaction merges to one pack");
    assert_eq!(field(&after, "records"), records.to_string());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_and_cache_flags_are_mutually_exclusive() {
    for sub in ["sweep", "fault-sweep"] {
        let out = run(exp().args([sub, "--store", "/tmp/a", "--cache", "/tmp/b"]));
        assert_eq!(out.status.code(), Some(2), "usage error must exit 2");
        assert!(
            stderr(&out).contains("mutually exclusive"),
            "{}",
            stderr(&out)
        );
    }
}
