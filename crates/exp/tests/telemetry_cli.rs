//! End-to-end campaign-telemetry coverage (ISSUE 8): Chrome-trace
//! export, the live progress stream, crash flight dumps, the campaign
//! report, and — most importantly — that switching telemetry on does
//! not move the pinned figure digest.

use std::path::{Path, PathBuf};
use std::process::Command;

use harvest_obs::flight::FlightDump;
use harvest_obs::progress::{progress_from_jsonl, ProgressLine};
use serde::Value;

/// Same pinned digest as `fault_campaign.rs`: the robustness figure on
/// the smoke grid, from a known-good build.
const PINNED_DIGEST: u64 = 0x66AE_8DCB_A4A4_73AC;

/// `exp fault-sweep` flags for the smoke grid (18 cells).
fn fault_args() -> Vec<&'static str> {
    vec![
        "fault-sweep",
        "--util",
        "0.4",
        "--capacity",
        "300",
        "--horizon",
        "2000",
        "--intensities",
        "0.0,0.5,1.0",
        "--trials",
        "2",
        "--threads",
        "2",
    ]
}

fn exp_command() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_exp"));
    // Stay hermetic: never pick up the invoking shell's store/cache.
    cmd.env_remove("HARVEST_SWEEP_CACHE");
    cmd.env_remove("HARVEST_SWEEP_STORE");
    cmd
}

/// Extracts `key=value` from a one-line report.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let tag = format!("{key}=");
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&tag))
        .unwrap_or_else(|| panic!("no `{key}=` in {line:?}"))
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("harvest-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(out: &std::process::Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn stderr(out: &std::process::Output) -> String {
    String::from_utf8(out.stderr.clone()).unwrap()
}

/// Parses a Chrome-trace export and returns its `traceEvents`,
/// asserting every event carries the complete-span shape.
fn trace_events(path: &Path) -> Vec<Value> {
    let text = std::fs::read_to_string(path).unwrap();
    let value: Value = serde_json::from_str(&text).unwrap();
    let events = value
        .get("traceEvents")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("no traceEvents in {text}"))
        .clone();
    for ev in &events {
        assert_eq!(ev.get("ph").and_then(Value::as_str), Some("X"), "{ev:?}");
        for key in ["name", "cat"] {
            assert!(ev.get(key).and_then(Value::as_str).is_some(), "{ev:?}");
        }
        for key in ["ts", "dur", "pid", "tid"] {
            assert!(ev.get(key).and_then(Value::as_u64).is_some(), "{ev:?}");
        }
    }
    events
}

#[test]
fn telemetry_flags_do_not_move_the_pinned_figure() {
    let dir = scratch_dir("telemetry-digest");
    let trace = dir.join("trace.json");
    let progress = dir.join("progress.jsonl");
    let out = exp_command()
        .args(fault_args())
        .args(["--trace", trace.to_str().unwrap()])
        .args(["--progress", progress.to_str().unwrap()])
        .args(["--flight", dir.join("flight").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    let line = text
        .lines()
        .find(|l| l.starts_with("fault-sweep "))
        .unwrap();
    let digest = u64::from_str_radix(field(line, "figure_fnv64"), 16).unwrap();
    assert_eq!(digest, PINNED_DIGEST, "telemetry changed the figure");

    // A clean campaign writes no flight dump at all.
    assert!(
        !dir.join("flight").exists() || std::fs::read_dir(dir.join("flight")).unwrap().count() == 0,
        "clean campaign must not dump"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sabotaged_campaign_emits_trace_progress_and_flight_dumps() {
    let dir = scratch_dir("telemetry-sabotage");
    let store = dir.join("store");
    let trace = dir.join("trace.json");
    let progress = dir.join("progress.jsonl");
    let flight = dir.join("flight");
    let out = exp_command()
        .args(fault_args())
        .args(["--store", store.to_str().unwrap()])
        .args(["--trace", trace.to_str().unwrap()])
        .args(["--progress", progress.to_str().unwrap()])
        .args(["--flight", flight.to_str().unwrap()])
        .args(["--inject-panic", "lsa:0:0.5"])
        .args(["--inject-starve", "ea-dvfs:1:1.0"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    let report = text
        .lines()
        .find(|l| l.starts_with("fault-sweep "))
        .unwrap();
    assert_eq!(field(report, "quarantined"), "2");

    // Trace: structurally valid Chrome trace covering the campaign's
    // phases and one span per simulated batch.
    let events = trace_events(&trace);
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    assert!(names.contains(&"robustness-campaign"), "{names:?}");
    assert!(names.contains(&"resolve"), "{names:?}");
    assert!(names.contains(&"build"), "{names:?}");
    assert!(
        names.iter().filter(|n| **n == "cell").count() >= 16,
        "{names:?}"
    );

    // Progress: parses under the schema check; the final heartbeat's
    // counts are the campaign's decided totals and match the store.
    let lines = progress_from_jsonl(&std::fs::read_to_string(&progress).unwrap()).unwrap();
    assert!(matches!(
        lines.first(),
        Some(ProgressLine::Started(s)) if s.campaign == "fault-sweep" && s.cells == 18
    ));
    let hb = lines
        .iter()
        .rev()
        .find_map(|l| match l {
            ProgressLine::Heartbeat(hb) => Some(hb),
            _ => None,
        })
        .expect("final heartbeat");
    assert_eq!((hb.done, hb.total, hb.quarantined), (18, 18, 2));
    assert_eq!(hb.simulated + hb.hits + hb.resumed, 16);
    assert!(matches!(lines.last(), Some(ProgressLine::Finished(f)) if f.done == 18));

    let stat = exp_command()
        .args(["store", "stat", store.to_str().unwrap()])
        .output()
        .unwrap();
    let stat_line = stdout(&stat);
    assert_eq!(
        field(stat_line.trim(), "records").parse::<u64>().unwrap(),
        hb.done,
        "store decided counts must equal the final heartbeat"
    );
    assert_eq!(field(stat_line.trim(), "quarantined"), "2");

    // Flight: one dump per quarantined cell, each naming its cell key
    // and carrying the last ring events; stderr links them.
    let quarantine_keys: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("quarantine "))
        .map(|l| field(l, "key"))
        .collect();
    assert_eq!(quarantine_keys.len(), 2);
    let mut dumps = Vec::new();
    for entry in std::fs::read_dir(&flight).unwrap() {
        let path = entry.unwrap().path();
        assert!(
            path.to_str().unwrap().ends_with(".flight.jsonl"),
            "{path:?}"
        );
        dumps.push(FlightDump::from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap());
    }
    assert_eq!(dumps.len(), 2, "one dump per quarantined cell");
    for dump in &dumps {
        assert!(
            quarantine_keys.contains(&dump.key.as_str()),
            "dump key {} not quarantined",
            dump.key
        );
        assert!(
            !dump.events.is_empty(),
            "empty flight ring for {}",
            dump.key
        );
    }
    assert!(dumps.iter().any(|d| d.reason == "panic"), "{dumps:?}");
    assert!(
        dumps.iter().any(|d| d.reason.contains("watchdog")),
        "{dumps:?}"
    );

    let err = stderr(&out);
    let flight_lines: Vec<&str> = err.lines().filter(|l| l.starts_with("flight ")).collect();
    assert_eq!(flight_lines.len(), 2, "{err}");
    for l in &flight_lines {
        assert!(Path::new(field(l, "dump")).exists(), "{l}");
    }

    // Report folds all three sources; --json round-trips.
    let report = exp_command()
        .args(["report", "--store", store.to_str().unwrap()])
        .args(["--progress", progress.to_str().unwrap()])
        .args(["--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(report.status.success(), "{report:?}");
    let md = stdout(&report);
    assert!(md.contains("# Campaign report"), "{md}");
    assert!(
        md.contains("18 cells decided: 16 done, 2 quarantined."),
        "{md}"
    );
    for policy in ["edf", "lsa", "ea-dvfs"] {
        assert!(md.contains(policy), "missing {policy} in {md}");
    }
    assert!(md.contains(".flight.jsonl"), "{md}");
    assert!(md.contains("Slowest cells"), "{md}");

    let json_out = exp_command()
        .args(["report", "--store", store.to_str().unwrap()])
        .args(["--progress", progress.to_str().unwrap()])
        .args(["--trace", trace.to_str().unwrap()])
        .args(["--json"])
        .output()
        .unwrap();
    assert!(json_out.status.success(), "{json_out:?}");
    let value: Value = serde_json::from_str(&stdout(&json_out)).unwrap();
    let cells = value.get("cells").expect("cells section");
    assert_eq!(cells.get("total").and_then(Value::as_u64), Some(18));
    assert_eq!(cells.get("quarantined").and_then(Value::as_u64), Some(2));
    assert_eq!(
        cells
            .get("quarantines")
            .and_then(Value::as_array)
            .map(Vec::len),
        Some(2)
    );
    let progress_section = value.get("progress").expect("progress section");
    assert_eq!(
        progress_section.get("done").and_then(Value::as_u64),
        Some(18)
    );
    assert!(value.get("trace").is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_trace_and_progress_cover_cold_and_warm_runs() {
    let dir = scratch_dir("telemetry-sweep");
    let store = dir.join("store");
    let cold_progress = dir.join("cold.jsonl");
    let warm_progress = dir.join("warm.jsonl");
    let trace = dir.join("trace.json");

    let cold = exp_command()
        .args(["sweep", "--store", store.to_str().unwrap()])
        .args(["--progress", cold_progress.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(cold.status.success(), "{cold:?}");
    let cold_line = stdout(&cold);
    let cold_report = cold_line.lines().find(|l| l.starts_with("sweep ")).unwrap();
    let cells: u64 = field(cold_report, "cells").parse().unwrap();
    let cold_digest = field(cold_report, "figure_fnv64").to_owned();

    let lines = progress_from_jsonl(&std::fs::read_to_string(&cold_progress).unwrap()).unwrap();
    let hb = lines
        .iter()
        .rev()
        .find_map(|l| match l {
            ProgressLine::Heartbeat(hb) => Some(hb),
            _ => None,
        })
        .unwrap();
    assert_eq!((hb.done, hb.simulated, hb.hits), (cells, cells, 0));

    // Warm: every cell resolves from the store, under trace + progress,
    // and the digest matches the cold (telemetry-off-compatible) run.
    let warm = exp_command()
        .args(["sweep", "--store", store.to_str().unwrap(), "--expect-warm"])
        .args(["--progress", warm_progress.to_str().unwrap()])
        .args(["--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(warm.status.success(), "{warm:?}");
    let warm_line = stdout(&warm);
    let warm_report = warm_line.lines().find(|l| l.starts_with("sweep ")).unwrap();
    assert_eq!(field(warm_report, "figure_fnv64"), cold_digest);

    let lines = progress_from_jsonl(&std::fs::read_to_string(&warm_progress).unwrap()).unwrap();
    let hb = lines
        .iter()
        .rev()
        .find_map(|l| match l {
            ProgressLine::Heartbeat(hb) => Some(hb),
            _ => None,
        })
        .unwrap();
    assert_eq!((hb.done, hb.hits, hb.simulated), (cells, cells, 0));

    // The warm trace still records the figure and probe phases (probe
    // answered every cell, so no simulate spans are required).
    let events = trace_events(&trace);
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    assert!(names.contains(&"miss-rate-figure"), "{names:?}");
    assert!(names.contains(&"probe"), "{names:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_needs_an_input_and_store_stat_speaks_json() {
    let out = exp_command().args(["report"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("at least one input"), "{out:?}");

    // Build a tiny store via a sweep, then stat it both ways.
    let dir = scratch_dir("telemetry-stat");
    let store = dir.join("store");
    let sweep = exp_command()
        .args(["sweep", "--store", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(sweep.status.success(), "{sweep:?}");

    let human = exp_command()
        .args(["store", "stat", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(human.status.success(), "{human:?}");
    let line = stdout(&human);
    let records: u64 = field(line.trim(), "records").parse().unwrap();
    assert!(records > 0);
    assert_eq!(field(line.trim(), "superseded"), "0");

    let json = exp_command()
        .args(["store", "stat", store.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(json.status.success(), "{json:?}");
    let value: Value = serde_json::from_str(&stdout(&json)).unwrap();
    assert_eq!(value.get("records").and_then(Value::as_u64), Some(records));
    assert_eq!(value.get("superseded").and_then(Value::as_u64), Some(0));

    let _ = std::fs::remove_dir_all(&dir);
}
