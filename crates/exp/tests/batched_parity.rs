//! Bit-identity of the batched SoA engine against the scalar simulator.
//!
//! Every lane of `simulate_batch_in` must reproduce the scalar
//! `simulate_in` run of the same `(scenario, policy, seed)` cell — not
//! approximately, but bit for bit: the whole `SimResult` (job records,
//! energy accounting, event and trace counts, level residency, sampled
//! levels) and the `TrialSummary` byte encoding that sweep caches
//! persist. The grid deliberately mixes scenarios that take the lean
//! fused path (oracle predictor, fault-free) with ones that must
//! scalar-drain (fault plans, non-oracle predictors, watchdogs), so
//! both sides of the eligibility screen are pinned.

use harvest_exp::scenario::{PaperScenario, PolicyKind, PredictorKind, SimPool, TrialPrefab};
use harvest_sim::engine::Watchdog;

/// Runs one scenario's seeds both ways and asserts per-lane equality of
/// the full results and of the persisted summary bytes.
fn assert_batch_parity(scenario: &PaperScenario, policy: PolicyKind, seeds: std::ops::Range<u64>) {
    let prefabs: Vec<TrialPrefab> = seeds.clone().map(|s| scenario.prefab(s)).collect();
    let refs: Vec<&TrialPrefab> = prefabs.iter().collect();

    let mut scalar_pool = SimPool::new();
    let scalar: Vec<_> = refs
        .iter()
        .map(|p| scenario.run_prefab_in(&mut scalar_pool, policy, p))
        .collect();

    let mut batch_pool = SimPool::new();
    let batched = scenario.run_prefabs_batched_in(&mut batch_pool, policy, &refs);

    assert_eq!(batched.len(), scalar.len());
    for ((seed, b), s) in seeds.clone().zip(&batched).zip(&scalar) {
        assert_eq!(
            b, s,
            "lane for seed {seed} diverged ({} / {policy:?})",
            scenario.capacity
        );
        // The persisted form must match byte for byte, too: this is what
        // warm-cache figure rebuilds read back.
        let bs = harvest_exp::cache::TrialSummary::of(b);
        let ss = harvest_exp::cache::TrialSummary::of(s);
        assert_eq!(
            serde_json::to_string(&bs).unwrap(),
            serde_json::to_string(&ss).unwrap(),
            "summary bytes for seed {seed} diverged"
        );
    }

    let stats = batch_pool.stats();
    assert_eq!(
        stats.runs,
        prefabs.len() as u64,
        "every lane must be counted as a run"
    );
}

#[test]
fn lean_lanes_match_scalar_across_policies() {
    let mut scenario = PaperScenario::new(0.8, 200.0);
    scenario.num_tasks = 6;
    scenario.horizon_units = 400;
    for policy in PolicyKind::ALL {
        assert_batch_parity(&scenario, policy, 0..6);
    }
}

#[test]
fn random_scenario_grid_matches_scalar() {
    // A small pseudo-random scenario grid (splitmix-style derivation so
    // the grid is deterministic): utilization, capacity, task count, and
    // sampling all vary per cell.
    let mut x = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for case in 0..4 {
        let r = next();
        let utilization = 0.3 + 0.1 * (r % 6) as f64;
        let capacity = [150.0, 300.0, 700.0, 2000.0][(r >> 8) as usize % 4];
        let mut scenario = PaperScenario::new(utilization, capacity);
        scenario.num_tasks = 3 + (r >> 16) as usize % 5;
        scenario.horizon_units = 300 + 100 * ((r >> 24) % 3) as i64;
        if r >> 32 & 1 == 1 {
            scenario = scenario.with_sampling(50);
        }
        let policy = PolicyKind::ALL[(r >> 40) as usize % 4];
        let base = next() % 1000;
        assert_batch_parity(&scenario, policy, base..base + 4);
        let _ = case;
    }
}

#[test]
fn faulted_lanes_scalar_drain_and_match() {
    // Fault plans make lanes ineligible for the fused loop; they must
    // scalar-drain through the fallback and still match exactly.
    for intensity in [0.3, 0.8] {
        let mut scenario = PaperScenario::new(0.5, 250.0).with_fault_intensity(intensity);
        scenario.num_tasks = 5;
        scenario.horizon_units = 500;
        assert_batch_parity(&scenario, PolicyKind::EaDvfs, 0..4);
    }
}

#[test]
fn mixed_eligibility_batches_match() {
    // Intensity is per scenario, but an armed scenario can still draw an
    // *empty* plan for some seeds — those lanes stay lean while their
    // siblings scalar-drain, exercising a genuinely mixed batch. Either
    // way every lane must match its scalar run.
    let mut scenario = PaperScenario::new(0.6, 200.0).with_fault_intensity(0.05);
    scenario.num_tasks = 4;
    scenario.horizon_units = 400;
    assert_batch_parity(&scenario, PolicyKind::EaDvfs, 0..8);
}

#[test]
fn non_oracle_predictors_scalar_drain_and_match() {
    for predictor in [
        PredictorKind::Ewma,
        PredictorKind::Persistence,
        PredictorKind::MovingAverage { window: 50 },
    ] {
        let mut scenario = PaperScenario::new(0.5, 300.0).with_predictor(predictor);
        scenario.num_tasks = 4;
        scenario.horizon_units = 300;
        assert_batch_parity(&scenario, PolicyKind::EaDvfs, 0..3);
    }
}

#[test]
fn watchdog_lanes_abort_identically() {
    let mut scenario = PaperScenario::new(0.5, 300.0);
    scenario.num_tasks = 4;
    scenario.horizon_units = 500;
    let prefabs: Vec<TrialPrefab> = (0..3).map(|s| scenario.prefab(s)).collect();
    let refs: Vec<&TrialPrefab> = prefabs.iter().collect();
    // Lane 1 is starved by a tiny watchdog; its siblings run clean.
    let watchdogs = vec![None, Some(Watchdog::with_max_events(4)), None];
    let mut pool = SimPool::new();
    let batched = pool.run_batch(&scenario, PolicyKind::Lsa, &refs, &watchdogs);
    let mut scalar_pool = SimPool::new();
    for ((prefab, watchdog), b) in refs.iter().zip(&watchdogs).zip(&batched) {
        let s = scenario.try_run_prefab_in(&mut scalar_pool, PolicyKind::Lsa, prefab, *watchdog);
        assert_eq!(b, &s);
    }
    assert!(batched[1].is_err(), "starved lane must abort");
}

#[test]
fn batched_runs_reuse_slabs_and_count_occupancy() {
    let mut scenario = PaperScenario::new(0.8, 200.0);
    scenario.num_tasks = 5;
    scenario.horizon_units = 200;
    let prefabs: Vec<TrialPrefab> = (0..8).map(|s| scenario.prefab(s)).collect();
    let refs: Vec<&TrialPrefab> = prefabs.iter().collect();
    let mut pool = SimPool::new();
    for _ in 0..3 {
        let results = scenario.run_prefabs_batched_in(&mut pool, PolicyKind::EaDvfs, &refs);
        assert_eq!(results.len(), 8);
    }
    let stats = pool.stats();
    assert_eq!(stats.runs, 24);
    assert_eq!(stats.batched_runs, 24, "oracle fault-free lanes run lean");
    assert_eq!(stats.batch_lane_high_water, 8);
}

/// Runs one `(scenario, seed)` trial's policy arms both ways and
/// asserts per-arm equality of the full results and summary bytes.
fn assert_arm_parity(scenario: &PaperScenario, policies: &[PolicyKind], seed: u64) {
    let prefab = scenario.prefab(seed);
    let arms: Vec<(PolicyKind, &TrialPrefab)> = policies.iter().map(|&p| (p, &prefab)).collect();

    let mut scalar_pool = SimPool::new();
    let scalar: Vec<_> = policies
        .iter()
        .map(|&p| scenario.run_prefab_in(&mut scalar_pool, p, &prefab))
        .collect();

    let mut batch_pool = SimPool::new();
    let batched = scenario.run_arms_batched_in(&mut batch_pool, &arms);

    assert_eq!(batched.len(), scalar.len());
    for ((policy, b), s) in policies.iter().zip(&batched).zip(&scalar) {
        assert_eq!(
            b, s,
            "arm {policy:?} of seed {seed} diverged ({})",
            scenario.capacity
        );
        let bs = harvest_exp::cache::TrialSummary::of(b);
        let ss = harvest_exp::cache::TrialSummary::of(s);
        assert_eq!(
            serde_json::to_string(&bs).unwrap(),
            serde_json::to_string(&ss).unwrap(),
            "summary bytes for arm {policy:?} of seed {seed} diverged"
        );
    }
}

#[test]
fn policy_lockstep_arms_match_scalar() {
    let mut scenario = PaperScenario::new(0.8, 200.0);
    scenario.num_tasks = 6;
    scenario.horizon_units = 400;
    for seed in 0..4 {
        assert_arm_parity(&scenario, &PolicyKind::ALL, seed);
    }
    // Sampling adds periodic cross-lane events; the arms must still
    // match their scalar runs exactly.
    let sampled = scenario.with_sampling(50);
    for seed in 0..2 {
        assert_arm_parity(&sampled, &PolicyKind::ALL, seed);
    }
}

#[test]
fn faulted_policy_arms_scalar_drain_and_match() {
    // A fault plan makes every arm ineligible for the fused loop; the
    // lockstep batch must fall back per arm and still match.
    let mut scenario = PaperScenario::new(0.5, 250.0).with_fault_intensity(0.6);
    scenario.num_tasks = 5;
    scenario.horizon_units = 400;
    for seed in 0..3 {
        assert_arm_parity(&scenario, &[PolicyKind::Lsa, PolicyKind::EaDvfs], seed);
    }
}

/// Satellite contract of the grouping split in `PoolStats`: sibling-seed
/// batches bump only the seed-lane high water, policy-lockstep batches
/// bump only the policy-lane counters, and both feed the shared tick
/// occupancy tallies.
#[test]
fn grouping_stats_stay_separate() {
    let mut scenario = PaperScenario::new(0.8, 200.0);
    scenario.num_tasks = 5;
    scenario.horizon_units = 200;
    let prefabs: Vec<TrialPrefab> = (0..6).map(|s| scenario.prefab(s)).collect();
    let refs: Vec<&TrialPrefab> = prefabs.iter().collect();

    let mut seed_pool = SimPool::new();
    let _ = scenario.run_prefabs_batched_in(&mut seed_pool, PolicyKind::EaDvfs, &refs);
    let seed_stats = seed_pool.stats();
    assert_eq!(seed_stats.batched_runs, 6);
    assert_eq!(seed_stats.batch_lane_high_water, 6);
    assert_eq!(seed_stats.policy_batched_runs, 0);
    assert_eq!(seed_stats.batch_policy_lane_high_water, 0);
    assert!(seed_stats.batch_ticks > 0);
    assert!(seed_stats.multi_lane_ticks <= seed_stats.batch_ticks);

    let arms: Vec<(PolicyKind, &TrialPrefab)> =
        PolicyKind::ALL.iter().map(|&p| (p, &prefabs[0])).collect();
    let mut arm_pool = SimPool::new();
    let _ = scenario.run_arms_batched_in(&mut arm_pool, &arms);
    let arm_stats = arm_pool.stats();
    assert_eq!(arm_stats.batched_runs, PolicyKind::ALL.len() as u64);
    assert_eq!(arm_stats.policy_batched_runs, PolicyKind::ALL.len() as u64);
    assert_eq!(
        arm_stats.batch_policy_lane_high_water,
        PolicyKind::ALL.len() as u64
    );
    assert_eq!(
        arm_stats.batch_lane_high_water, 0,
        "a lockstep batch must not touch the sibling-seed mark"
    );
    assert!(arm_stats.batch_ticks > 0);
    assert!(
        arm_stats.multi_lane_ticks > 0,
        "lockstep arms share release instants"
    );
    assert!(arm_stats.multi_lane_fraction() > 0.0);
}

#[test]
fn cached_arm_summaries_round_trip() {
    let dir = std::env::temp_dir().join(format!("harvest-arm-parity-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = harvest_exp::cache::SweepCache::new(&dir).unwrap();
    let mut scenario = PaperScenario::new(0.6, 300.0);
    scenario.num_tasks = 5;
    scenario.horizon_units = 300;
    let prefab = scenario.prefab(7);
    let arms: Vec<(PolicyKind, &TrialPrefab)> =
        PolicyKind::ALL.iter().map(|&p| (p, &prefab)).collect();
    let mut pool = SimPool::new();
    let cold = scenario.run_arm_summaries_batched(&mut pool, Some(&cache), &arms);
    assert_eq!(cache.stats().stores, PolicyKind::ALL.len() as u64);
    let warm = scenario.run_arm_summaries_batched(&mut pool, Some(&cache), &arms);
    assert_eq!(cold, warm);
    assert_eq!(cache.stats().hits, PolicyKind::ALL.len() as u64);
    // Per-(policy, seed) keys interoperate with the scalar store path.
    let scalar = scenario.run_summary(&mut pool, Some(&cache), PolicyKind::ALL[1], &prefab);
    assert_eq!(scalar, cold[1]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cached_batched_summaries_round_trip() {
    let dir = std::env::temp_dir().join(format!(
        "harvest-batched-parity-cache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = harvest_exp::cache::SweepCache::new(&dir).unwrap();
    let mut scenario = PaperScenario::new(0.6, 300.0).with_sampling(50);
    scenario.num_tasks = 5;
    scenario.horizon_units = 300;
    let prefabs: Vec<TrialPrefab> = (0..5).map(|s| scenario.prefab(s)).collect();
    let refs: Vec<&TrialPrefab> = prefabs.iter().collect();
    let mut pool = SimPool::new();
    let cold = scenario.run_summaries_batched(&mut pool, Some(&cache), PolicyKind::EaDvfs, &refs);
    assert_eq!(cache.stats().stores, 5, "every cell written per seed");
    // Warm pass: every cell answered from disk, bit-identically.
    let warm = scenario.run_summaries_batched(&mut pool, Some(&cache), PolicyKind::EaDvfs, &refs);
    assert_eq!(cold, warm);
    assert_eq!(cache.stats().hits, 5);
    // And the per-seed keys interoperate with the scalar path.
    let scalar = scenario.run_summary(&mut pool, Some(&cache), PolicyKind::EaDvfs, &prefabs[2]);
    assert_eq!(scalar, cold[2]);
    let _ = std::fs::remove_dir_all(&dir);
}
