//! Fault-injection properties of the durable store stack: every
//! deterministic injection schedule — short writes, EINTR, EAGAIN,
//! ENOSPC, failed syncs, failed renames — either completes with
//! retries or degrades cleanly, and never corrupts a store. After any
//! schedule, `scrub` finds zero corrupt byte spans, every append that
//! reported success survives a clean reopen bit-identically, and every
//! append that reported failure left nothing behind.
//!
//! Targeted schedules pin each of the five fault kinds to an exact
//! operation so the assertions are exact (retry counts, degradation,
//! sidecar fallback); a seeded proptest then sweeps random schedules
//! across all three durability levels.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use harvest_exp::cache::{SweepCache, TrialKey, TrialSummary};
use harvest_exp::manifest::{CellOutcome, SweepManifest};
use harvest_exp::scenario::{PaperScenario, PolicyKind};
use harvest_exp::store::{DecidedStore, PackStore, TrialStore};
use harvest_obs::io::{Durability, FaultyIo, RetryPolicy, WriteFault};
use proptest::prelude::*;

fn scratch_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "harvest-faulty-io-{tag}-{case:016x}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key_of(seed: u64) -> TrialKey {
    PaperScenario::new(0.4, 300.0).trial_key(PolicyKind::EaDvfs, seed)
}

fn summary_of(seed: u64, sample_bits: &[u64]) -> TrialSummary {
    TrialSummary {
        released: 40 + seed,
        completed_in_time: 30 + seed,
        missed: 10,
        sample_level_bits: sample_bits.to_vec(),
    }
}

/// Zero-backoff retry policy: the schedules are deterministic, so the
/// tests assert exact retry counts without sleeping.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 4,
        base_backoff: Duration::ZERO,
    }
}

/// A store under a targeted schedule: writes `records` cells and
/// returns which appends reported success.
fn write_cells(store: &PackStore, records: u64) -> Vec<u64> {
    (0..records)
        .filter(|&s| {
            store
                .record_done(&key_of(s), &summary_of(s, &[s, !s]))
                .is_ok()
        })
        .collect()
}

/// After any schedule: scrub reports zero corrupt spans and a clean
/// reopen serves exactly the successful appends, bit-identically.
fn assert_store_uncorrupted(dir: &PathBuf, stored_ok: &[u64]) {
    let stats = PackStore::scrub(dir).expect("scrub after injection");
    assert_eq!(
        stats.corrupt_spans, 0,
        "injected failures must never leave corrupt bytes"
    );
    assert_eq!(stats.records_kept, stored_ok.len());
    let reopened = PackStore::open(dir).expect("clean reopen");
    assert_eq!(reopened.len(), stored_ok.len());
    for &s in stored_ok {
        assert_eq!(
            reopened.probe(&key_of(s)),
            Some(summary_of(s, &[s, !s])),
            "successful append for seed {s} must survive bit-identically"
        );
    }
}

/// Write op 0 is the new pack's magic; op 1 is the first record body.
/// A short write there is absorbed by the append loop with no retry
/// counted (it is legal `Write` behavior, not an error).
#[test]
fn short_write_is_absorbed_by_the_append_loop() {
    let dir = scratch_dir("short", 0);
    let io = FaultyIo::builder()
        .write_fault(1, WriteFault::Short)
        .build();
    {
        let store =
            PackStore::open_with(&dir, Arc::new(io), fast_retry(), Durability::Batch).unwrap();
        let ok = write_cells(&store, 2);
        assert_eq!(ok, vec![0, 1]);
        let health = store.io_health();
        assert_eq!(health.retries, 0, "a short write is not a retry");
        assert_eq!(health.degraded, 0);
    }
    assert_store_uncorrupted(&dir, &[0, 1]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// EINTR and EAGAIN are transient: the policy retries them in place,
/// counts each retry, and the append still succeeds.
#[test]
fn transient_errors_retry_and_succeed() {
    for fault in [WriteFault::Interrupted, WriteFault::WouldBlock] {
        let dir = scratch_dir("transient", fault as u64);
        let io = FaultyIo::builder().write_fault(1, fault).build();
        {
            let store =
                PackStore::open_with(&dir, Arc::new(io), fast_retry(), Durability::Batch).unwrap();
            let ok = write_cells(&store, 2);
            assert_eq!(ok, vec![0, 1]);
            let health = store.io_health();
            assert_eq!(health.retries, 1, "exactly one injected transient fault");
            assert_eq!(health.degraded, 0);
        }
        assert_store_uncorrupted(&dir, &[0, 1]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// ENOSPC is persistent: retries cannot help, the append fails, the
/// partial record is truncated away, and the store degrades to
/// read-only — until `reprobe` re-arms it for the next campaign.
#[test]
fn storage_full_degrades_then_reprobe_rearms() {
    let dir = scratch_dir("enospc", 0);
    let io = FaultyIo::builder()
        .write_fault(2, WriteFault::StorageFull)
        .build();
    {
        let store =
            PackStore::open_with(&dir, Arc::new(io), fast_retry(), Durability::Batch).unwrap();
        assert!(store
            .record_done(&key_of(0), &summary_of(0, &[0, !0]))
            .is_ok());
        assert!(
            store
                .record_done(&key_of(1), &summary_of(1, &[1, !1]))
                .is_err(),
            "ENOSPC must surface as a failed append"
        );
        assert!(
            store.record_done(&key_of(9), &summary_of(9, &[9])).is_err(),
            "a degraded store rejects writes"
        );
        let health = store.io_health();
        assert_eq!(health.degraded, 1);
        // Re-arm: the schedule is exhausted, so the next append lands.
        store.reprobe();
        assert!(store
            .record_done(&key_of(1), &summary_of(1, &[1, !1]))
            .is_ok());
    }
    assert_store_uncorrupted(&dir, &[0, 1]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Under `Durability::Record` every append syncs; an injected sync
/// failure rolls the whole record back (the caller re-simulates that
/// cell) rather than reporting durable success for unsynced bytes.
#[test]
fn record_durability_rolls_back_on_sync_failure() {
    let dir = scratch_dir("sync", 0);
    let io = FaultyIo::builder().sync_fault(0).build();
    {
        let store =
            PackStore::open_with(&dir, Arc::new(io), fast_retry(), Durability::Record).unwrap();
        assert!(
            store
                .record_done(&key_of(0), &summary_of(0, &[0, !0]))
                .is_err(),
            "an unsyncable record must not report success"
        );
        let health = store.io_health();
        assert_eq!(health.sync_failures, 1);
        assert_eq!(health.degraded, 1);
        // Re-arm; the schedule holds no further sync faults.
        store.reprobe();
        assert!(store
            .record_done(&key_of(1), &summary_of(1, &[1, !1]))
            .is_ok());
    }
    assert_store_uncorrupted(&dir, &[1]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failed sidecar rename leaves no `.idx` behind; the reopen falls
/// back to a full pack scan and serves every decided cell.
#[test]
fn failed_sidecar_rename_falls_back_to_pack_scan() {
    let dir = scratch_dir("rename", 0);
    let io = FaultyIo::builder().rename_fault(0).build();
    {
        let store =
            PackStore::open_with(&dir, Arc::new(io), fast_retry(), Durability::Batch).unwrap();
        let ok = write_cells(&store, 3);
        assert_eq!(ok, vec![0, 1, 2]);
    } // Drop writes sidecars; the first rename is injected to fail.
    let sidecars = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "idx"))
        .count();
    assert_eq!(sidecars, 0, "the injected rename must drop the sidecar");
    assert_store_uncorrupted(&dir, &[0, 1, 2]);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random seeded schedules across every durability level: each
    /// append completes (possibly with retries) or fails cleanly; the
    /// store is never corrupted; scrub confirms zero bad records; a
    /// clean reopen serves exactly the successful appends.
    #[test]
    fn seeded_schedules_complete_or_degrade_without_corruption(
        seed in any::<u64>(),
        density in 20u64..300,
        durability_pick in 0u8..3,
        records in 3u64..8,
        bits in proptest::collection::vec(any::<u64>(), 0..4),
    ) {
        let dir = scratch_dir("seeded", seed ^ (density << 32));
        let durability = match durability_pick {
            0 => Durability::None,
            1 => Durability::Batch,
            _ => Durability::Record,
        };
        let io = FaultyIo::seeded(seed, 64, density);
        let injected_any;
        let mut stored_ok: Vec<u64> = Vec::new();
        {
            let store = PackStore::open_with(
                &dir,
                Arc::new(io.clone()),
                fast_retry(),
                durability,
            ).unwrap();
            for s in 0..records {
                if store.record_done(&key_of(s), &summary_of(s, &bits)).is_ok() {
                    stored_ok.push(s);
                }
            }
            injected_any = io.injected() > 0;
            if !injected_any {
                prop_assert!(store.io_health().is_clean());
                prop_assert_eq!(stored_ok.len() as u64, records);
            }
        }
        let stats = PackStore::scrub(&dir).unwrap();
        prop_assert_eq!(stats.corrupt_spans, 0, "no schedule may corrupt the store");
        prop_assert_eq!(stats.records_kept, stored_ok.len());
        let reopened = PackStore::open(&dir).unwrap();
        prop_assert_eq!(reopened.len(), stored_ok.len());
        for &s in &stored_ok {
            prop_assert_eq!(reopened.probe(&key_of(s)), Some(summary_of(s, &bits)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The JSONL manifest under random schedules: reopening with a
    /// clean backend never fails, and every decided cell it serves is
    /// one that was recorded, bit-identical — a torn line costs its
    /// suffix (those cells recompute) but never garbles an outcome.
    #[test]
    fn seeded_schedules_never_garble_the_manifest(
        seed in any::<u64>(),
        density in 20u64..300,
        records in 2u64..6,
        bits in proptest::collection::vec(any::<u64>(), 0..3),
    ) {
        let dir = scratch_dir("manifest", seed ^ (density << 16));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.jsonl");
        let io = FaultyIo::seeded(seed, 64, density);
        {
            let manifest = SweepManifest::open_with(
                &path,
                Arc::new(io),
                fast_retry(),
                Durability::Batch,
            ).unwrap();
            for s in 0..records {
                let _ = manifest.record_done(key_of(s).text(), &summary_of(s, &bits));
            }
            manifest.barrier();
        }
        let reopened = SweepManifest::open(&path).unwrap();
        for (key, outcome) in reopened.decided_entries() {
            let seed: u64 = key.rsplit('|').next().unwrap().parse().unwrap();
            match outcome {
                CellOutcome::Done(got) => prop_assert_eq!(got, summary_of(seed, &bits)),
                other => prop_assert!(false, "garbled outcome: {:?}", other),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The per-file cache under random schedules: an entry is either
    /// absent (its tmp-file write or rename failed and the cell
    /// recomputes) or exact — tmp-then-rename never publishes a
    /// partial entry.
    #[test]
    fn seeded_schedules_never_publish_a_partial_cache_entry(
        seed in any::<u64>(),
        density in 20u64..300,
        records in 2u64..6,
        bits in proptest::collection::vec(any::<u64>(), 0..3),
    ) {
        let dir = scratch_dir("cache", seed ^ (density << 8));
        let io = FaultyIo::seeded(seed, 64, density);
        {
            let cache = SweepCache::new_with(&dir, Arc::new(io), fast_retry()).unwrap();
            for s in 0..records {
                cache.put(&key_of(s), &summary_of(s, &bits));
            }
        }
        let reopened = SweepCache::new(&dir).unwrap();
        for s in 0..records {
            if let Some(got) = reopened.get(&key_of(s)) {
                prop_assert_eq!(got, summary_of(s, &bits));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
