//! End-to-end fault-campaign coverage (ISSUE 5): the pinned robustness
//! figure, quarantine behaviour through the real `exp fault-sweep`
//! subcommand, and kill-and-resume through the on-disk manifest.

use std::path::PathBuf;
use std::process::Command;

use harvest_exp::figures::{robustness_campaign, RobustnessConfig, Sabotage};
use harvest_exp::scenario::{PolicyKind, PredictorKind};

/// FNV-1a digest of the robustness figure on the smoke grid below,
/// captured from a known-good build. Any drift in fault generation,
/// injection, scheduling, or aggregation shows up here.
const PINNED_DIGEST: u64 = 0x66AE_8DCB_A4A4_73AC;

/// The smoke grid: must stay in sync with [`cli_args`] so the API-level
/// and subcommand-level runs pin the same figure.
fn smoke_config() -> RobustnessConfig {
    RobustnessConfig {
        utilization: 0.4,
        capacity: 300.0,
        horizon_units: 2_000,
        intensities: vec![0.0, 0.5, 1.0],
        policies: vec![PolicyKind::Edf, PolicyKind::Lsa, PolicyKind::EaDvfs],
        predictors: vec![PredictorKind::Oracle],
        trials: 2,
        threads: 2,
        ..RobustnessConfig::default()
    }
}

/// `exp fault-sweep` flags equivalent to [`smoke_config`].
fn cli_args() -> Vec<&'static str> {
    vec![
        "fault-sweep",
        "--util",
        "0.4",
        "--capacity",
        "300",
        "--horizon",
        "2000",
        "--intensities",
        "0.0,0.5,1.0",
        "--trials",
        "2",
        "--threads",
        "2",
    ]
}

fn exp_command() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_exp"));
    // The subcommand falls back to the environment cache; keep the test
    // hermetic regardless of the invoking shell.
    cmd.env_remove("HARVEST_SWEEP_CACHE");
    cmd
}

/// Extracts `key=value` from a one-line report.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let tag = format!("{key}=");
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&tag))
        .unwrap_or_else(|| panic!("no `{key}=` in {line:?}"))
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("harvest-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn robustness_figure_digest_is_pinned() {
    let report = robustness_campaign(&smoke_config(), None, None, |_| Sabotage::None);
    assert!(report.quarantined.is_empty());
    assert_eq!(
        report.figure.digest(),
        PINNED_DIGEST,
        "robustness figure drifted: got {:016x}",
        report.figure.digest()
    );
}

#[test]
fn fault_sweep_subcommand_reproduces_the_pinned_figure() {
    let out = exp_command().args(cli_args()).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let line = stdout
        .lines()
        .find(|l| l.starts_with("fault-sweep "))
        .unwrap_or_else(|| panic!("no report line in {stdout:?}"));
    assert_eq!(field(line, "cells"), "18");
    assert_eq!(field(line, "quarantined"), "0");
    let digest = u64::from_str_radix(field(line, "figure_fnv64"), 16).unwrap();
    assert_eq!(digest, PINNED_DIGEST, "CLI figure drifted");
}

#[test]
fn fault_sweep_subcommand_quarantines_sabotaged_cells_and_exits_zero() {
    let mut args = cli_args();
    args.extend([
        "--inject-panic",
        "lsa:0:0.0",
        "--inject-starve",
        "ea-dvfs:1:1.0",
    ]);
    let out = exp_command().args(args).output().unwrap();
    assert!(out.status.success(), "sweep must survive sabotage: {out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let report = stdout
        .lines()
        .find(|l| l.starts_with("fault-sweep "))
        .unwrap();
    assert_eq!(field(report, "quarantined"), "2");
    let quarantines: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("quarantine "))
        .collect();
    assert_eq!(quarantines.len(), 2, "{stdout}");
    let panicked = quarantines
        .iter()
        .find(|l| field(l, "panicked") == "true")
        .unwrap();
    assert_eq!(field(panicked, "policy"), "lsa");
    assert_eq!(field(panicked, "seed"), "0");
    assert_eq!(field(panicked, "intensity"), "0");
    assert!(field(panicked, "key").contains("|lsa|0"), "{panicked}");
    let starved = quarantines
        .iter()
        .find(|l| field(l, "panicked") == "false")
        .unwrap();
    assert_eq!(field(starved, "policy"), "ea-dvfs");
    assert_eq!(field(starved, "seed"), "1");
    assert!(starved.contains("watchdog"), "{starved}");
    // Queue stats from the surviving worker pools are reported.
    assert!(
        stdout.lines().any(|l| l.starts_with("queue worker=")),
        "{stdout}"
    );
}

#[test]
fn fault_sweep_subcommand_resumes_from_a_torn_manifest() {
    let dir = scratch_dir("fault-campaign-resume");
    let manifest = dir.join("campaign.manifest.jsonl");
    let manifest_str = manifest.to_str().unwrap();

    let out = exp_command()
        .args(cli_args())
        .args(["--manifest", manifest_str])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let first = String::from_utf8(out.stdout).unwrap();
    let first_line = first
        .lines()
        .find(|l| l.starts_with("fault-sweep "))
        .unwrap();
    assert_eq!(field(first_line, "simulated"), "18");
    let first_digest = field(first_line, "figure_fnv64").to_owned();

    // Simulate a kill mid-write: drop the last checkpoint line and leave
    // a torn half-line behind.
    let text = std::fs::read_to_string(&manifest).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 18);
    let torn = format!(
        "{}\n{}",
        lines[..17].join("\n"),
        &lines[17][..lines[17].len() / 2]
    );
    std::fs::write(&manifest, torn).unwrap();

    // The resumed campaign re-simulates only the lost cell.
    let out = exp_command()
        .args(cli_args())
        .args(["--manifest", manifest_str])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let second = String::from_utf8(out.stdout).unwrap();
    let second_line = second
        .lines()
        .find(|l| l.starts_with("fault-sweep "))
        .unwrap();
    assert_eq!(field(second_line, "resumed"), "17");
    assert_eq!(field(second_line, "simulated"), "1");
    assert_eq!(field(second_line, "figure_fnv64"), first_digest);

    // A third run resumes every cell; `--expect-resumed` makes the
    // binary itself enforce that nothing re-simulates.
    let out = exp_command()
        .args(cli_args())
        .args(["--manifest", manifest_str, "--expect-resumed"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let third = String::from_utf8(out.stdout).unwrap();
    let third_line = third
        .lines()
        .find(|l| l.starts_with("fault-sweep "))
        .unwrap();
    assert_eq!(field(third_line, "resumed"), "18");
    assert_eq!(field(third_line, "simulated"), "0");
    assert_eq!(field(third_line, "figure_fnv64"), first_digest);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_sweep_subcommand_reports_usage_errors_with_exit_2() {
    let out = exp_command()
        .args(["fault-sweep", "--intensities", "1.5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("intensit"), "{stderr}");
}
