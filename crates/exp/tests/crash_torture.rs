//! Crash torture: a fault-sweep campaign writing through `--store` is
//! SIGKILLed at several points mid-flight, resumed, and killed again.
//! After the final uninterrupted run the figure digest is bit-identical
//! to a never-killed reference campaign, every cell is decided exactly
//! once, and the killed writers' stale leases were taken over cleanly.
//!
//! The kill points are driven by observed on-disk pack growth (not
//! timers), so each round provably murders the writer after it has
//! appended new records and before it finishes the grid.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::{Duration, Instant};

fn exp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exp"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "harvest-crash-torture-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn field(out: &Output, key: &str) -> String {
    let text = stdout(out);
    let needle = format!("{key}=");
    text.lines()
        .find_map(|l| {
            l.split_whitespace()
                .find_map(|tok| tok.strip_prefix(&needle))
        })
        .unwrap_or_else(|| panic!("no `{key}=` in output:\n{text}"))
        .to_owned()
}

/// The campaign under torture: 3 policies x 5 intensities x 2 trials
/// = 30 cells, long enough that a kill lands mid-grid.
fn campaign_args(dir: &Path) -> Vec<String> {
    [
        "fault-sweep",
        "--util",
        "0.4",
        "--capacity",
        "300",
        "--trials",
        "2",
        "--threads",
        "2",
        "--horizon",
        "40000",
        "--intensities",
        "0.0,0.25,0.5,0.75,1.0",
        "--store",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .chain([dir.to_str().unwrap().to_owned()])
    .collect()
}

/// Total bytes across the store's pack files (0 if the dir is missing).
fn pack_bytes(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "hpk"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

#[test]
fn sigkilled_campaign_resumes_to_a_bit_identical_figure() {
    // Reference: the same campaign, never interrupted, in its own dir.
    let ref_dir = scratch_dir("reference");
    let reference = exp()
        .args(campaign_args(&ref_dir))
        .output()
        .expect("spawn reference campaign");
    assert!(reference.status.success(), "{}", stderr(&reference));
    let ref_digest = field(&reference, "figure_fnv64");
    let cells: u64 = {
        let c: u64 = field(&reference, "cells").parse().unwrap();
        assert_eq!(c, 30);
        c
    };

    let dir = scratch_dir("torture");
    let mut watermark = 0u64;
    let mut kills = 0u32;
    for _round in 0..3 {
        let mut child = exp()
            .args(campaign_args(&dir))
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn torture campaign");
        // Kill only after the pack grew past the previous round's high
        // water: the writer provably appended fresh decided records.
        let target = watermark + 64;
        let deadline = Instant::now() + Duration::from_secs(60);
        let killed = loop {
            if pack_bytes(&dir) >= target {
                child.kill().expect("SIGKILL the writer");
                break true;
            }
            if child.try_wait().expect("poll child").is_some() {
                break false; // finished the whole grid before the kill
            }
            assert!(Instant::now() < deadline, "no pack growth within 60s");
            std::thread::sleep(Duration::from_millis(5));
        };
        let _ = child.wait();
        if killed {
            kills += 1;
        }
        watermark = pack_bytes(&dir);
        // The murdered writer's leases are stale but free; stat must
        // open, heal any torn tail, and account the surviving records.
        let stat = exp()
            .args(["store", "stat", dir.to_str().unwrap()])
            .output()
            .expect("spawn store stat");
        assert!(
            stat.status.success(),
            "stat after kill round failed: {}",
            stderr(&stat)
        );
        assert_eq!(field(&stat, "quarantined"), "0");
    }
    assert!(kills > 0, "no round managed to kill a live writer");

    // Final uninterrupted run: resumes whatever survived, recomputes
    // the rest, and must reproduce the reference figure bit-for-bit.
    let last = exp()
        .args(campaign_args(&dir))
        .output()
        .expect("spawn final campaign");
    assert!(last.status.success(), "{}", stderr(&last));
    assert_eq!(field(&last, "figure_fnv64"), ref_digest);
    let resumed: u64 = field(&last, "resumed").parse().unwrap();
    assert!(
        resumed > 0,
        "kill rounds left decided records, so the final run must resume some"
    );

    // Every cell is decided exactly once: a verification pass resumes
    // the full grid without simulating, reproducing the digest again.
    let verify = exp()
        .args(
            campaign_args(&dir)
                .into_iter()
                .chain(["--expect-resumed".to_owned()]),
        )
        .output()
        .expect("spawn verification campaign");
    assert!(verify.status.success(), "{}", stderr(&verify));
    assert_eq!(field(&verify, "simulated"), "0");
    assert_eq!(field(&verify, "resumed"), cells.to_string());
    assert_eq!(field(&verify, "figure_fnv64"), ref_digest);

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
