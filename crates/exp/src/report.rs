//! Plain-text reporting: aligned tables, ASCII line plots, CSV.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use harvest_exp::report::Table;
///
/// let mut t = Table::new(vec!["U", "ratio"]);
/// t.row(vec!["0.2".into(), "2.50".into()]);
/// let s = t.render();
/// assert!(s.contains("ratio"));
/// assert!(s.contains("2.50"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", cells[i], width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as CSV (comma-separated, no quoting — callers
    /// keep cells comma-free).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders one or more named series as an ASCII line plot.
///
/// Each series must have the same length; x is the sample index mapped
/// to `x_label` ticks. Distinct series use distinct glyphs; overlapping
/// points show the later series' glyph.
///
/// # Panics
///
/// Panics if no series are given, lengths differ, or a series is empty.
///
/// # Examples
///
/// ```
/// use harvest_exp::report::ascii_plot;
///
/// let plot = ascii_plot(
///     &[("up", &[0.0, 0.5, 1.0][..]), ("down", &[1.0, 0.5, 0.0][..])],
///     "t",
///     20,
///     8,
/// );
/// assert!(plot.contains("up"));
/// ```
pub fn ascii_plot(series: &[(&str, &[f64])], x_label: &str, width: usize, height: usize) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let n = series[0].1.len();
    assert!(n > 0, "series must be non-empty");
    assert!(
        series.iter().all(|(_, s)| s.len() == n),
        "series length mismatch"
    );
    assert!(width >= 2 && height >= 2, "plot must be at least 2x2");

    const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    let lo = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .fold(f64::INFINITY, f64::min)
        .min(0.0);
    let hi = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .fold(f64::NEG_INFINITY, f64::max)
        .max(lo + 1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (i, &v) in s.iter().enumerate() {
            let x = if n == 1 { 0 } else { i * (width - 1) / (n - 1) };
            let frac = (v - lo) / (hi - lo);
            let y = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x] = glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{hi:>10.3} ┤");
    for row in &grid {
        out.push_str("           │");
        out.extend(row.iter());
        out.push('\n');
    }
    let _ = writeln!(out, "{lo:>10.3} ┤{}", "─".repeat(width));
    let _ = writeln!(out, "            {x_label} →");
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "            {} {name}", GLYPHS[si % GLYPHS.len()]);
    }
    out
}

/// Formats a float with 4 significant decimals, trimming trailing zeros.
pub fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e12 {
        format!("{x:.0}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["123".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("bbbb"));
        assert!(lines[2].ends_with("   1"));
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn plot_contains_all_series_labels() {
        let p = ascii_plot(
            &[("alpha", &[1.0, 2.0][..]), ("beta", &[2.0, 1.0][..])],
            "t",
            10,
            4,
        );
        assert!(p.contains("alpha") && p.contains("beta"));
        assert!(p.contains('*') && p.contains('+'));
    }

    #[test]
    fn plot_handles_flat_series() {
        let p = ascii_plot(&[("flat", &[0.5, 0.5, 0.5][..])], "t", 12, 4);
        assert!(p.contains('*'));
    }

    #[test]
    fn fmt_num_trims() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(0.25), "0.2500");
    }
}
