//! Pack-file sweep store: segment-packed trial results with batch probes.
//!
//! The per-file cache ([`crate::cache::SweepCache`]) spends one `open(2)`
//! plus a full JSON parse per warm cell — ~7.9 µs, which BENCH_PR6 showed
//! is slower than *simulating* a cell through the batched engine. This
//! module replaces the per-cell files with append-only **segment packs**:
//! each writer owns an exclusive pack file of length-prefixed,
//! FNV-checksummed records (canonical key text + compact binary
//! [`TrialSummary`]). On open every pack is read into memory once and the
//! file descriptor is closed again, so probes are pure hash-map lookups —
//! zero per-cell syscalls, O(1) retained descriptors regardless of grid
//! size — and the batch probe API ([`TrialStore::probe_many`]) resolves a
//! whole figure grid in one pass.
//!
//! Integrity rules carry over from [`crate::cache`] and
//! [`crate::manifest`]:
//!
//! * Every record stores the **canonical key text**, and every hit
//!   re-verifies it, so a fingerprint collision or poisoned pack can
//!   never substitute a foreign result.
//! * A kill mid-append leaves a torn final record. [`PackStore::open`]
//!   tolerates that with the [`SweepManifest`](crate::manifest::SweepManifest)
//!   discipline: the pack is scanned record-by-record, the damaged tail
//!   is truncated away, and its cells recompute.
//! * A sidecar index (`*.idx`) caches `(fingerprint, offset, kind)`
//!   entries for a checksummed prefix of its pack; open trusts a valid
//!   sidecar for that prefix and scans only the tail appended after it.
//!   A missing, truncated, or corrupt sidecar merely forces a full pack
//!   scan — it can never lose or corrupt decided cells.
//! * Records come in two kinds — `done` ([`TrialSummary`]) and
//!   `quarantined` ([`CellFailure`]) — so one store serves both as sweep
//!   cache and as the fault-campaign resume manifest (the unified
//!   *decided-record* path; see [`DecidedStore`]).
//!
//! Writes append to one of a fixed set of writer slots (pack files named
//! `pack-<pid>-<slot>-<n>.hpk`), created lazily with `O_EXCL`, so
//! concurrent processes and threads never interleave bytes in one file.
//! An IO failure never fails the run: transient errors retry on the
//! store's deterministic [`RetryPolicy`] schedule; persistent errors
//! flip the store into write-degraded mode (one warning) and it keeps
//! answering probes.
//!
//! Durability and recovery (PR 10):
//!
//! * Every filesystem touch goes through a [`StoreIo`] backend, so the
//!   whole recovery discipline is testable under the deterministic
//!   [`FaultyIo`](harvest_obs::FaultyIo) injector.
//! * Writer slots are claimed through **advisory-locked lease files**
//!   (`flock` on `lease-<slot>` with a `pid epoch` stamp). A crashed
//!   process's flock dies with it, so the next writer takes the slot
//!   over (bumping the epoch); [`PackStore::open`] reclaims dead-pid
//!   packs by refreshing their sidecars, and [`PackStore::compact`] /
//!   [`PackStore::scrub`] refuse to run while any lease is held by a
//!   live writer.
//! * A [`Durability`] knob decides when `sync_all` barriers run:
//!   per-record, at batch boundaries ([`PackStore::barrier`], the
//!   default), or never. Compaction and sidecar writes are
//!   crash-consistent (write → sync → rename → unlink).
//! * [`PackStore::scrub`] walks every pack byte-for-byte, resyncs past
//!   mid-pack corruption, quarantines the corrupt spans into
//!   `scrub-quarantine/`, and rewrites a clean store — the warm path
//!   then re-simulates exactly the lost cells.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use harvest_obs::io::{
    pid_alive, read_lease_stamp, Durability, IoCounters, IoHealth, RealIo, RetryPolicy, StoreFile,
    StoreIo,
};

use crate::cache::{fnv1a64, CacheStats, SweepCache, TrialKey, TrialSummary};
use crate::manifest::{CellOutcome, SweepManifest};
use crate::parallel::CellFailure;

/// Environment variable gating the pack store (read by
/// [`store_from_env`]): unset, empty, or `0` disables; `1` enables at
/// the default `target/sweep-store/`; any other value is used as the
/// store directory path. Takes precedence over
/// [`SWEEP_CACHE_ENV`](crate::cache::SWEEP_CACHE_ENV).
pub const SWEEP_STORE_ENV: &str = "HARVEST_SWEEP_STORE";

/// Default store root used when [`SWEEP_STORE_ENV`] is `1`.
pub const DEFAULT_STORE_DIR: &str = "target/sweep-store";

/// Default legacy per-file cache root ingested by the one-time
/// migration (see [`PackStore::migrate_legacy`]).
pub const DEFAULT_LEGACY_CACHE_DIR: &str = "target/sweep-cache";

/// Pack file magic + format version ("harvest pack, v1").
const PACK_MAGIC: [u8; 8] = *b"HPK1\x01\0\0\0";
/// Sidecar index magic + format version.
const IDX_MAGIC: [u8; 8] = *b"HPX1\x01\0\0\0";
/// Record kind: a cleanly decided cell carrying a [`TrialSummary`].
const KIND_DONE: u8 = 1;
/// Record kind: a quarantined cell carrying a [`CellFailure`].
const KIND_QUARANTINED: u8 = 2;
/// Number of writer slots a store multiplexes its threads over. Bounds
/// the retained file descriptors: a store holds at most this many fds
/// open, no matter how many cells it writes.
pub const WRITER_SLOTS: usize = 8;
/// Marker file recording that the legacy per-file cache was already
/// ingested, making migration one-time.
const LEGACY_MARKER: &str = "legacy-ingested";

// ---------------------------------------------------------------------------
// Store traits
// ---------------------------------------------------------------------------

/// The cache-facing read/write surface shared by the per-file
/// [`SweepCache`] and the pack-file [`PackStore`], so figure drivers run
/// unchanged against either backend.
pub trait TrialStore: Sync {
    /// Looks one key up; integrity-rejected entries answer `None`.
    fn probe(&self, key: &TrialKey) -> Option<TrialSummary>;

    /// Resolves a whole grid of keys in one pass. The default forwards
    /// to [`probe`](Self::probe) per key; [`PackStore`] answers the
    /// batch under a single map lock with zero per-cell syscalls.
    fn probe_many(&self, keys: &[TrialKey]) -> Vec<Option<TrialSummary>> {
        keys.iter().map(|k| self.probe(k)).collect()
    }

    /// Persists one decided cell. Never fails the run: IO errors degrade
    /// the store to read-only with one warning.
    fn store(&self, key: &TrialKey, summary: &TrialSummary);

    /// Lifetime hit/miss accounting.
    fn stats(&self) -> CacheStats;

    /// Where the store lives (for reporting).
    fn location(&self) -> &Path;

    /// Durability barrier: flush and sync everything appended since the
    /// last barrier. Campaign drivers call this at batch checkpoints;
    /// the default is a no-op for backends with nothing buffered.
    fn barrier(&self) {}

    /// Retry/degradation/sync accounting for this backend. Defaults to
    /// a clean snapshot for backends without an I/O seam.
    fn io_health(&self) -> IoHealth {
        IoHealth::default()
    }

    /// Re-probe a degraded backend: a store that degraded to read-only
    /// in an earlier campaign re-arms its write path so the next
    /// campaign retries the directory (the disk may have recovered).
    /// No-op by default and on healthy stores.
    fn reprobe(&self) {}
}

impl TrialStore for SweepCache {
    fn probe(&self, key: &TrialKey) -> Option<TrialSummary> {
        self.get(key)
    }

    fn store(&self, key: &TrialKey, summary: &TrialSummary) {
        self.put(key, summary);
    }

    fn stats(&self) -> CacheStats {
        SweepCache::stats(self)
    }

    fn location(&self) -> &Path {
        self.dir()
    }

    fn io_health(&self) -> IoHealth {
        SweepCache::io_health(self)
    }

    fn reprobe(&self) {
        SweepCache::reprobe(self);
    }
}

/// The manifest-facing surface of a decided-cell store: what a
/// fault-sweep campaign needs to checkpoint and resume. Implemented by
/// the JSONL [`SweepManifest`] and by [`PackStore`] (whose `decided`
/// records unify resume and cache into one read path).
pub trait DecidedStore: Sync {
    /// The outcome already decided for `key`, if any.
    fn decided(&self, key: &TrialKey) -> Option<CellOutcome>;

    /// Checkpoints a cleanly decided cell.
    ///
    /// # Errors
    ///
    /// Returns the IO error when the record cannot be appended; durable
    /// state is only claimed on success.
    fn record_done(&self, key: &TrialKey, summary: &TrialSummary) -> std::io::Result<()>;

    /// Checkpoints a quarantined cell.
    ///
    /// # Errors
    ///
    /// Same contract as [`record_done`](Self::record_done).
    fn record_quarantined(&self, key: &TrialKey, failure: &CellFailure) -> std::io::Result<()>;

    /// How many decided cells were loaded at open — the cells a resumed
    /// campaign will not re-simulate.
    fn resumed(&self) -> usize;

    /// Durability barrier: sync every record checkpointed since the
    /// last barrier (see [`TrialStore::barrier`]).
    fn barrier(&self) {}

    /// Retry/degradation/sync accounting (see [`TrialStore::io_health`]).
    fn io_health(&self) -> IoHealth {
        IoHealth::default()
    }
}

impl DecidedStore for SweepManifest {
    fn decided(&self, key: &TrialKey) -> Option<CellOutcome> {
        self.get(key.text())
    }

    fn record_done(&self, key: &TrialKey, summary: &TrialSummary) -> std::io::Result<()> {
        SweepManifest::record_done(self, key.text(), summary)
    }

    fn record_quarantined(&self, key: &TrialKey, failure: &CellFailure) -> std::io::Result<()> {
        SweepManifest::record_quarantined(self, key.text(), failure)
    }

    fn resumed(&self) -> usize {
        SweepManifest::resumed(self)
    }

    fn barrier(&self) {
        SweepManifest::barrier(self);
    }

    fn io_health(&self) -> IoHealth {
        SweepManifest::io_health(self)
    }
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------
//
// Pack layout:   magic(8) · record*
// Record layout: body_len:u32 · body · fnv1a64(body):u64
// Body layout:   kind:u8 · key_len:u32 · key(utf8) · payload
//
// All integers little-endian. `body_len` covers `body` only, so the full
// record occupies `4 + body_len + 8` bytes. Payloads are fixed-layout
// binary (no serde): a summary is three u64 counters, a u32 sample
// count, then that many u64 sample bit patterns; a failure is a
// length-prefixed message, a bool byte, and a u32 worker index.

fn encode_summary(summary: &TrialSummary) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + 8 * summary.sample_level_bits.len());
    out.extend_from_slice(&summary.released.to_le_bytes());
    out.extend_from_slice(&summary.completed_in_time.to_le_bytes());
    out.extend_from_slice(&summary.missed.to_le_bytes());
    out.extend_from_slice(&(summary.sample_level_bits.len() as u32).to_le_bytes());
    for &bits in &summary.sample_level_bits {
        out.extend_from_slice(&bits.to_le_bytes());
    }
    out
}

fn decode_summary(payload: &[u8]) -> Option<TrialSummary> {
    if payload.len() < 28 {
        return None;
    }
    let u64_at = |o: usize| u64::from_le_bytes(payload[o..o + 8].try_into().unwrap());
    let n = u32::from_le_bytes(payload[24..28].try_into().unwrap()) as usize;
    if payload.len() != 28 + 8 * n {
        return None;
    }
    let sample_level_bits = (0..n).map(|i| u64_at(28 + 8 * i)).collect();
    Some(TrialSummary {
        released: u64_at(0),
        completed_in_time: u64_at(8),
        missed: u64_at(16),
        sample_level_bits,
    })
}

fn encode_failure(failure: &CellFailure) -> Vec<u8> {
    let msg = failure.message.as_bytes();
    let mut out = Vec::with_capacity(9 + msg.len());
    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    out.extend_from_slice(msg);
    out.push(failure.panicked as u8);
    out.extend_from_slice(&(failure.worker as u32).to_le_bytes());
    // Flight-dump path, appended only when present: records without it
    // stay byte-identical to the pre-telemetry encoding, so old packs
    // and new packs of flight-less failures read the same both ways.
    if let Some(flight) = &failure.flight {
        out.extend_from_slice(&(flight.len() as u32).to_le_bytes());
        out.extend_from_slice(flight.as_bytes());
    }
    out
}

fn decode_failure(payload: &[u8]) -> Option<CellFailure> {
    if payload.len() < 9 {
        return None;
    }
    let msg_len = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
    if payload.len() < 9 + msg_len {
        return None;
    }
    let message = String::from_utf8(payload[4..4 + msg_len].to_vec()).ok()?;
    let panicked = match payload[4 + msg_len] {
        0 => false,
        1 => true,
        _ => return None,
    };
    let worker = u32::from_le_bytes(payload[5 + msg_len..9 + msg_len].try_into().ok()?) as usize;
    let rest = &payload[9 + msg_len..];
    let flight = if rest.is_empty() {
        None
    } else {
        if rest.len() < 4 {
            return None;
        }
        let flight_len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if rest.len() != 4 + flight_len {
            return None;
        }
        Some(String::from_utf8(rest[4..].to_vec()).ok()?)
    };
    Some(CellFailure {
        message,
        panicked,
        worker,
        flight,
    })
}

fn encode_record(kind: u8, key_text: &str, payload: &[u8]) -> Vec<u8> {
    let body_len = 1 + 4 + key_text.len() + payload.len();
    let mut out = Vec::with_capacity(4 + body_len + 8);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(key_text.len() as u32).to_le_bytes());
    out.extend_from_slice(key_text.as_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out[4..]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// One record decoded in place from a pack buffer.
struct RawRecord<'a> {
    kind: u8,
    key_text: &'a str,
    payload: &'a [u8],
    /// Offset one past the record's trailing checksum.
    next: usize,
}

/// Decodes the record starting at `offset`. `None` means the bytes from
/// `offset` on are torn, truncated, or checksum-corrupt — by the
/// manifest discipline everything from `offset` is dropped.
fn decode_record(data: &[u8], offset: usize) -> Option<RawRecord<'_>> {
    let len_end = offset.checked_add(4)?;
    if len_end > data.len() {
        return None;
    }
    let body_len = u32::from_le_bytes(data[offset..len_end].try_into().unwrap()) as usize;
    if body_len < 5 {
        return None;
    }
    let body_end = len_end.checked_add(body_len)?;
    let next = body_end.checked_add(8)?;
    if next > data.len() {
        return None;
    }
    let body = &data[len_end..body_end];
    let stored = u64::from_le_bytes(data[body_end..next].try_into().unwrap());
    if fnv1a64(body) != stored {
        return None;
    }
    let kind = body[0];
    if kind != KIND_DONE && kind != KIND_QUARANTINED {
        return None;
    }
    let key_len = u32::from_le_bytes(body[1..5].try_into().unwrap()) as usize;
    if 5 + key_len > body.len() {
        return None;
    }
    let key_text = std::str::from_utf8(&body[5..5 + key_len]).ok()?;
    Some(RawRecord {
        kind,
        key_text,
        payload: &body[5 + key_len..],
        next,
    })
}

// ---------------------------------------------------------------------------
// Sidecar index
// ---------------------------------------------------------------------------
//
// Sidecar layout: magic(8) · covered:u64 · count:u64 · entry* ·
// fnv1a64(everything after magic, before this field):u64, with
// entry = fingerprint:u64 · offset:u64 · kind:u8. `covered` is the pack
// prefix (in bytes) the entries describe; records appended after a
// sidecar was written are recovered by scanning the tail from `covered`.

struct IdxEntry {
    fingerprint: u64,
    offset: usize,
    kind: u8,
}

fn encode_index(covered: usize, entries: &[IdxEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 17 * entries.len());
    out.extend_from_slice(&IDX_MAGIC);
    out.extend_from_slice(&(covered as u64).to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&e.fingerprint.to_le_bytes());
        out.extend_from_slice(&(e.offset as u64).to_le_bytes());
        out.push(e.kind);
    }
    let sum = fnv1a64(&out[8..]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes a sidecar. `None` (missing, truncated, corrupt, or covering
/// more bytes than the pack holds) forces a full pack scan.
fn decode_index(data: &[u8], pack_len: usize) -> Option<(usize, Vec<IdxEntry>)> {
    if data.len() < 32 || data[..8] != IDX_MAGIC {
        return None;
    }
    let body = &data[8..data.len() - 8];
    let stored = u64::from_le_bytes(data[data.len() - 8..].try_into().unwrap());
    if fnv1a64(body) != stored {
        return None;
    }
    let covered = u64::from_le_bytes(body[..8].try_into().unwrap()) as usize;
    let count = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
    if covered > pack_len || body.len() != 16 + 17 * count {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let at = 16 + 17 * i;
        let offset = u64::from_le_bytes(body[at + 8..at + 16].try_into().unwrap()) as usize;
        if offset < PACK_MAGIC.len() || offset >= covered {
            return None;
        }
        entries.push(IdxEntry {
            fingerprint: u64::from_le_bytes(body[at..at + 8].try_into().unwrap()),
            offset,
            kind: body[at + 16],
        });
    }
    Some((covered, entries))
}

fn idx_path_for(pack: &Path) -> PathBuf {
    pack.with_extension("idx")
}

// ---------------------------------------------------------------------------
// PackStore
// ---------------------------------------------------------------------------

/// Where one decided record lives: pack buffer index, byte offset of
/// its `body_len` field, and its kind (so `decided` lookups skip a
/// decode to discriminate).
#[derive(Clone, Copy)]
struct Loc {
    pack: usize,
    offset: usize,
    kind: u8,
}

/// One pack held in memory. `path` is retained so compaction and
/// sidecar rewrites know which file the bytes mirror.
struct PackBuf {
    path: PathBuf,
    data: Vec<u8>,
}

struct Inner {
    packs: Vec<PackBuf>,
    index: HashMap<u64, Loc>,
}

/// An advisory-locked claim on one global writer slot: the open,
/// `flock`ed lease file plus the epoch this writer stamped into it.
/// Dropping the lease (process exit included, even by SIGKILL) releases
/// the flock, so the slot is always recoverable.
struct WriterLease {
    /// Held open for the lifetime of the writer; the flock lives here.
    _file: std::fs::File,
    /// The global slot number this lease claims.
    slot: usize,
    /// The epoch stamped by this writer (predecessor's epoch + 1).
    epoch: u64,
    /// Whether this acquisition took the slot over from a dead process
    /// (a stale lease left by a crash).
    took_over: bool,
}

/// Lease file name for a global writer slot.
fn lease_path(dir: &Path, slot: usize) -> PathBuf {
    dir.join(format!("lease-{slot}"))
}

/// Claims the first free global writer slot at or after `preferred`,
/// scanning upward without bound (two concurrent processes simply
/// occupy disjoint slot ranges; nothing ever blocks). The lease file is
/// `flock`ed exclusively and stamped `pid epoch`.
fn acquire_lease(dir: &Path, preferred: usize) -> std::io::Result<WriterLease> {
    let mut slot = preferred;
    loop {
        let path = lease_path(dir, slot);
        // No truncate here: a prior holder's stamp must survive the
        // open so takeover detection can read it before restamping.
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        match file.try_lock() {
            Ok(()) => {
                let prior = read_lease_stamp(&mut file);
                let epoch = prior.map_or(0, |(_, e)| e.wrapping_add(1));
                let took_over =
                    prior.is_some_and(|(pid, _)| pid != std::process::id() && !pid_alive(pid));
                file.set_len(0)?;
                {
                    use std::io::Seek as _;
                    file.seek(std::io::SeekFrom::Start(0))?;
                }
                file.write_all(format!("{} {epoch}\n", std::process::id()).as_bytes())?;
                let _ = file.sync_all();
                return Ok(WriterLease {
                    _file: file,
                    slot,
                    epoch,
                    took_over,
                });
            }
            Err(std::fs::TryLockError::WouldBlock) => slot += 1,
            Err(std::fs::TryLockError::Error(e)) => return Err(e),
        }
    }
}

/// Every lease file currently present in `dir`, as `(slot, path)`.
fn lease_files(dir: &Path) -> Vec<(usize, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<(usize, PathBuf)> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter_map(|p| {
            let slot = p
                .file_name()?
                .to_str()?
                .strip_prefix("lease-")?
                .parse()
                .ok()?;
            Some((slot, p))
        })
        .collect();
    out.sort();
    out
}

/// Returns the pids of live writers holding leases in `dir` (their
/// lease flocks are currently held by running processes).
fn live_lease_holders(dir: &Path) -> Vec<u32> {
    let mut holders = Vec::new();
    for (_, path) in lease_files(dir) {
        let Ok(mut file) = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
        else {
            continue;
        };
        match file.try_lock() {
            Ok(()) => {
                // Free lease: released before drop closes the file.
                let _ = file.unlock();
            }
            Err(_) => {
                let pid = read_lease_stamp(&mut file).map_or(0, |(pid, _)| pid);
                holders.push(pid);
            }
        }
    }
    holders
}

struct Writer {
    file: Box<dyn StoreFile>,
    /// The flock-backed claim on this writer's global slot; released
    /// when the writer is dropped.
    _lease: WriterLease,
    pack: usize,
    /// Current file length — the offset the next record lands at. The
    /// slot mutex makes this exact: only this writer appends here.
    len: usize,
}

/// The pack-file trial store (see the module docs).
///
/// Shared immutably across sweep workers: probes take a read lock on
/// the in-memory map, appends serialize per writer slot, and all
/// counters are atomic.
pub struct PackStore {
    dir: PathBuf,
    io: Arc<dyn StoreIo>,
    retry: RetryPolicy,
    durability: Durability,
    counters: Arc<IoCounters>,
    inner: RwLock<Inner>,
    writers: [Mutex<Option<Writer>>; WRITER_SLOTS],
    loaded: usize,
    reclaimed: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    rejects: AtomicU64,
    stores: AtomicU64,
    write_degraded: AtomicBool,
    /// Records appended since the last successful durability barrier.
    dirty: AtomicU64,
}

impl std::fmt::Debug for PackStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackStore")
            .field("dir", &self.dir)
            .field("loaded", &self.loaded)
            .field("durability", &self.durability)
            .finish_non_exhaustive()
    }
}

/// What [`PackStore::stat`] reports about a store directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStat {
    /// Pack files loaded.
    pub packs: usize,
    /// Live (latest-per-key) records.
    pub records: usize,
    /// Live records that are `done` cells.
    pub done: usize,
    /// Live records that are `quarantined` cells.
    pub quarantined: usize,
    /// Records on disk superseded by a later write to the same key
    /// (what a [`PackStore::compact`] run would drop).
    pub superseded: usize,
    /// Total pack bytes on disk (after any torn-tail truncation).
    pub bytes: u64,
    /// Packs left behind by dead writer processes (stale leases) that
    /// this open folded back into the readable set.
    pub reclaimed: usize,
}

/// What [`PackStore::compact`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Pack files merged away.
    pub packs_before: usize,
    /// Records across all input packs, superseded duplicates included.
    pub records_before: usize,
    /// Live records written to the merged pack.
    pub records_after: usize,
    /// Pack bytes before compaction.
    pub bytes_before: u64,
    /// Pack bytes after compaction.
    pub bytes_after: u64,
}

/// What [`PackStore::scrub`] found and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubStats {
    /// Pack files scanned.
    pub packs: usize,
    /// Sidecar indexes that failed verification (rewritten fresh).
    pub sidecars_bad: usize,
    /// Checksum-valid records found across all packs (superseded
    /// duplicates included).
    pub records_scanned: usize,
    /// Live records written to the clean store.
    pub records_kept: usize,
    /// Corrupt byte spans quarantined (each span is one torn, bit-
    /// flipped, or truncated region between two valid records).
    pub corrupt_spans: usize,
    /// Bytes moved into `scrub-quarantine/`.
    pub corrupt_bytes: u64,
    /// Pack bytes before the rewrite.
    pub bytes_before: u64,
    /// Pack bytes after the rewrite.
    pub bytes_after: u64,
}

impl PackStore {
    /// Opens (and creates) a store rooted at `dir`, loading every pack
    /// into memory. Torn or corrupt pack tails are truncated away (their
    /// cells recompute); valid sidecar indexes skip re-scanning the
    /// prefix they cover. Packs whose header is unrecognized are
    /// ignored wholesale.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error when the directory cannot be
    /// created or listed. Per-pack read errors skip that pack only.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::open_with(
            dir,
            RealIo::shared(),
            RetryPolicy::default(),
            Durability::default(),
        )
    }

    /// [`open`](Self::open) with an explicit I/O backend, retry policy,
    /// and durability level — the constructor every recovery test and
    /// the `--durability` flag go through.
    ///
    /// # Errors
    ///
    /// Same contract as [`open`](Self::open).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        io: Arc<dyn StoreIo>,
        retry: RetryPolicy,
        durability: Durability,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        // Stale writer-slot reclamation: slots whose lease is free but
        // stamped with a dead pid were abandoned by a crash. Their
        // packs load like any other below; noting the dead pids here
        // lets open refresh the sidecars those writers never wrote.
        let mut dead_pids: Vec<u32> = Vec::new();
        for (_, lease) in lease_files(&dir) {
            let Ok(mut file) = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&lease)
            else {
                continue;
            };
            if file.try_lock().is_err() {
                continue; // held by a live writer
            }
            if let Some((pid, _)) = read_lease_stamp(&mut file) {
                if pid != std::process::id() && !pid_alive(pid) {
                    dead_pids.push(pid);
                }
            }
            let _ = file.unlock();
        }
        let mut pack_paths: Vec<PathBuf> = io
            .read_dir(&dir)?
            .into_iter()
            .filter(|p| p.extension().is_some_and(|x| x == "hpk"))
            .collect();
        // Deterministic load order makes cross-pack last-wins stable.
        pack_paths.sort();

        let mut packs = Vec::with_capacity(pack_paths.len());
        let mut index: HashMap<u64, Loc> = HashMap::new();
        let mut reclaimed = 0usize;
        let mut reclaimed_packs: Vec<usize> = Vec::new();
        for path in pack_paths {
            let Ok(mut data) = io.read(&path) else {
                continue;
            };
            if data.len() < PACK_MAGIC.len() || data[..PACK_MAGIC.len()] != PACK_MAGIC {
                continue;
            }
            let pack_idx = packs.len();
            let mut scan_from = PACK_MAGIC.len();
            let sidecar_applied = if let Some((covered, entries)) = io
                .read(&idx_path_for(&path))
                .ok()
                .and_then(|idx| decode_index(&idx, data.len()))
            {
                for e in entries {
                    index.insert(
                        e.fingerprint,
                        Loc {
                            pack: pack_idx,
                            offset: e.offset,
                            kind: e.kind,
                        },
                    );
                }
                scan_from = covered;
                covered == data.len()
            } else {
                false
            };
            // Scan the tail (the whole pack when no sidecar applied),
            // truncating at the first torn or corrupt record.
            let mut at = scan_from;
            while at < data.len() {
                let Some(rec) = decode_record(&data, at) else {
                    break;
                };
                index.insert(
                    fnv1a64(rec.key_text.as_bytes()),
                    Loc {
                        pack: pack_idx,
                        offset: at,
                        kind: rec.kind,
                    },
                );
                at = rec.next;
            }
            if at < data.len() {
                // Torn tail: drop it on disk too (best effort — a
                // read-only store still serves the good prefix).
                let _ = io.truncate(&path, at as u64);
                data.truncate(at);
            }
            let from_dead_writer = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix("pack-"))
                .and_then(|n| n.split('-').next())
                .and_then(|pid| pid.parse::<u32>().ok())
                .is_some_and(|pid| dead_pids.contains(&pid));
            if from_dead_writer && !sidecar_applied {
                // A crashed writer's pack without a current sidecar:
                // folded into the readable set like any pack, plus a
                // fresh sidecar below so future opens skip the scan.
                reclaimed += 1;
                reclaimed_packs.push(pack_idx);
            }
            packs.push(PackBuf { path, data });
        }
        let loaded = index.len();
        let store = PackStore {
            dir,
            io,
            retry,
            durability,
            counters: Arc::new(IoCounters::default()),
            inner: RwLock::new(Inner { packs, index }),
            writers: std::array::from_fn(|_| Mutex::new(None)),
            loaded,
            reclaimed,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            write_degraded: AtomicBool::new(false),
            dirty: AtomicU64::new(0),
        };
        if !reclaimed_packs.is_empty() {
            store.write_indexes_for(&reclaimed_packs);
        }
        Ok(store)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Decided records loaded at open.
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// Live decided records right now (loaded plus appended).
    pub fn len(&self) -> usize {
        self.inner.read().expect("store lock").index.len()
    }

    /// `true` when the store holds no decided record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks a fingerprint up and decodes its record, verifying the key
    /// text. `Ok(None)` = absent; `Err(())` = present but rejected on
    /// integrity grounds.
    #[allow(clippy::result_unit_err)]
    fn lookup(&self, key: &TrialKey) -> Result<Option<CellOutcome>, ()> {
        let inner = self.inner.read().expect("store lock");
        let Some(loc) = inner.index.get(&key.fingerprint()) else {
            return Ok(None);
        };
        let data = &inner.packs[loc.pack].data;
        let Some(rec) = decode_record(data, loc.offset) else {
            return Err(());
        };
        if rec.key_text != key.text() {
            // Fingerprint collision or poisoned pack: never serve it.
            return Err(());
        }
        match rec.kind {
            KIND_DONE => match decode_summary(rec.payload) {
                Some(s) => Ok(Some(CellOutcome::Done(s))),
                None => Err(()),
            },
            _ => match decode_failure(rec.payload) {
                Some(f) => Ok(Some(CellOutcome::Quarantined(f))),
                None => Err(()),
            },
        }
    }

    fn probe_one(&self, key: &TrialKey) -> Option<TrialSummary> {
        match self.lookup(key) {
            Ok(Some(CellOutcome::Done(s))) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(s)
            }
            Ok(_) => {
                // Absent, or decided-but-quarantined (not a summary).
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(()) => {
                self.rejects.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Picks this thread's writer slot. Thread-to-slot assignment is
    /// sticky (hash of the thread id), so a worker keeps appending to
    /// the same pack and records stay clustered per worker.
    fn slot(&self) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        (h.finish() as usize) % WRITER_SLOTS
    }

    /// Appends one record through this thread's writer slot, mirroring
    /// the bytes into the in-memory pack so probes see the new cell
    /// immediately. On IO failure flips into write-degraded mode (one
    /// warning) and reports the error.
    fn append(&self, kind: u8, key: &TrialKey, payload: &[u8]) -> std::io::Result<()> {
        self.append_raw(kind, key.text(), key.fingerprint(), payload)
    }

    fn append_raw(
        &self,
        kind: u8,
        key_text: &str,
        fingerprint: u64,
        payload: &[u8],
    ) -> std::io::Result<()> {
        if self.write_degraded.load(Ordering::Relaxed) {
            return Err(std::io::Error::other("store is write-degraded"));
        }
        let record = encode_record(kind, key_text, payload);
        let slot = self.slot();
        let mut guard = self.writers[slot].lock().expect("writer lock");
        let result = (|| -> std::io::Result<()> {
            if guard.is_none() {
                *guard = Some(self.open_writer(slot)?);
            }
            let writer = guard.as_mut().expect("writer just ensured");
            // Raw write loop: absorb short writes; retry transient
            // errors with bounded deterministic backoff. Any persistent
            // failure rolls the pack back to the record boundary below,
            // so a half-written record never precedes a good one.
            let mut written = 0usize;
            let mut retries_left = self.retry.attempts.saturating_sub(1);
            let mut retry_no = 0u32;
            let write_ok = loop {
                if written == record.len() {
                    break true;
                }
                match writer.file.write(&record[written..]) {
                    Ok(0) => break false,
                    Ok(n) => written += n,
                    Err(e) if RetryPolicy::is_transient(&e) && retries_left > 0 => {
                        retries_left -= 1;
                        self.counters.note_retry();
                        std::thread::sleep(self.retry.backoff(retry_no));
                        retry_no += 1;
                    }
                    Err(_) => break false,
                }
            };
            let flush_ok = write_ok && writer.file.flush().is_ok();
            let sync_ok = if flush_ok && self.durability == Durability::Record {
                let ok = writer.file.sync_all().is_ok();
                if !ok {
                    self.counters.note_sync_failure();
                }
                ok
            } else {
                flush_ok
            };
            if !sync_ok {
                // Roll the pack file back to the last good record so
                // the on-disk prefix stays clean. If even the truncate
                // fails, abandon this writer: the next append opens a
                // fresh pack and the torn tail is dropped at next open.
                let len = writer.len as u64;
                let path = {
                    let inner = self.inner.read().expect("store lock");
                    inner.packs[writer.pack].path.clone()
                };
                if self.io.truncate(&path, len).is_err() {
                    *guard = None;
                }
                return Err(std::io::Error::other("store append failed"));
            }
            let offset = writer.len;
            writer.len += record.len();
            if self.durability == Durability::Batch {
                self.dirty.fetch_add(1, Ordering::Relaxed);
            }
            let mut inner = self.inner.write().expect("store lock");
            let pack = writer.pack;
            inner.packs[pack].data.extend_from_slice(&record);
            inner.index.insert(fingerprint, Loc { pack, offset, kind });
            Ok(())
        })();
        match &result {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.counters.note_degraded();
                if !self.write_degraded.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "warning: sweep store at {} rejected a write ({e}); \
                         continuing without storing new results",
                        self.dir.display()
                    );
                }
            }
        }
        result
    }

    /// Acquires an advisory writer lease, then creates that lease
    /// slot's pack file (`O_EXCL`, bumping a counter until the name is
    /// free) and registers its in-memory mirror. The lease's `flock`
    /// makes two processes sharing the directory claim disjoint slots;
    /// it drops with the file handle on any process exit, so a crashed
    /// writer's slot is immediately reclaimable.
    fn open_writer(&self, slot: usize) -> std::io::Result<Writer> {
        let lease = acquire_lease(&self.dir, slot)?;
        if lease.took_over {
            eprintln!(
                "note: sweep store at {} took over stale writer lease {} (epoch {})",
                self.dir.display(),
                lease.slot,
                lease.epoch
            );
        }
        let pid = std::process::id();
        let mut n = 0usize;
        let (path, file) = loop {
            let path = self.dir.join(format!("pack-{pid}-{}-{n}.hpk", lease.slot));
            match self.io.create_new(&path) {
                Ok(f) => break (path, f),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => n += 1,
                Err(e) => return Err(e),
            }
        };
        let mut file = file;
        if let Err(e) = self
            .retry
            .run(&self.counters, || file.write_all(&PACK_MAGIC))
        {
            // A pack that never got its full header is useless and
            // would read as corruption; unlink it rather than leave
            // a headerless stub for scrub to quarantine.
            drop(file);
            let _ = self.io.remove_file(&path);
            return Err(e);
        }
        let mut inner = self.inner.write().expect("store lock");
        let pack = inner.packs.len();
        inner.packs.push(PackBuf {
            path,
            data: PACK_MAGIC.to_vec(),
        });
        Ok(Writer {
            file,
            _lease: lease,
            pack,
            len: PACK_MAGIC.len(),
        })
    }

    /// Writes (or refreshes) every pack's sidecar index so the next
    /// open skips the full scan. Best-effort: sidecars are pure
    /// acceleration, so failures are ignored.
    pub fn write_indexes(&self) {
        let all: Vec<usize> = {
            let inner = self.inner.read().expect("store lock");
            (0..inner.packs.len()).collect()
        };
        self.write_indexes_for(&all);
    }

    /// [`write_indexes`](Self::write_indexes) restricted to the given
    /// pack indices (used by open to refresh only reclaimed packs).
    /// Sidecars are written crash-consistently: tmp file, sync (unless
    /// durability is `None`), then rename over the live name.
    fn write_indexes_for(&self, packs: &[usize]) {
        let inner = self.inner.read().expect("store lock");
        for &pi in packs {
            let Some(pack) = inner.packs.get(pi) else {
                continue;
            };
            let entries: Vec<IdxEntry> = inner
                .index
                .iter()
                .filter(|(_, loc)| loc.pack == pi)
                .map(|(&fingerprint, loc)| IdxEntry {
                    fingerprint,
                    offset: loc.offset,
                    kind: loc.kind,
                })
                .collect();
            let bytes = encode_index(pack.data.len(), &entries);
            let tmp = pack.path.with_extension("idx.tmp");
            let write_synced = (|| -> std::io::Result<()> {
                let mut f = self.io.create(&tmp)?;
                f.write_all(&bytes)?;
                f.flush()?;
                if self.durability != Durability::None {
                    f.sync_all()?;
                }
                Ok(())
            })();
            if write_synced
                .and_then(|()| self.io.rename(&tmp, &idx_path_for(&pack.path)))
                .is_err()
            {
                let _ = self.io.remove_file(&tmp);
            }
        }
    }

    /// One-time ingest of a legacy per-file cache directory
    /// (`*.json` [`SweepCache`] entries) into this store. Each entry is
    /// verified (parseable, fingerprint matches its stored key text)
    /// before it is appended; already-present keys are skipped. A marker
    /// file makes the migration one-time; a missing legacy directory is
    /// a no-op.
    ///
    /// Returns how many cells were ingested.
    ///
    /// # Errors
    ///
    /// Returns the IO error when an ingest append fails (the marker is
    /// then not written, so a later run retries).
    pub fn migrate_legacy(&self, legacy_dir: impl AsRef<Path>) -> std::io::Result<usize> {
        let legacy_dir = legacy_dir.as_ref();
        let marker = self.dir.join(LEGACY_MARKER);
        if marker.exists() || !legacy_dir.is_dir() {
            return Ok(0);
        }
        #[derive(serde::Deserialize)]
        struct LegacyEntry {
            key: String,
            summary: TrialSummary,
        }
        let mut paths: Vec<PathBuf> = std::fs::read_dir(legacy_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        let mut ingested = 0usize;
        for path in paths {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let Ok(entry) = serde_json::from_str::<LegacyEntry>(&text) else {
                continue;
            };
            let fingerprint = fnv1a64(entry.key.as_bytes());
            let named: Option<u64> = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| u64::from_str_radix(s, 16).ok());
            if named != Some(fingerprint) {
                continue; // poisoned or foreign entry: never ingest
            }
            let already = {
                let inner = self.inner.read().expect("store lock");
                inner.index.contains_key(&fingerprint)
            };
            if already {
                continue;
            }
            self.append_done_text(&entry.key, &entry.summary)?;
            ingested += 1;
        }
        std::fs::write(&marker, b"migrated\n")?;
        Ok(ingested)
    }

    /// Appends a done record for a key known only by text (migration
    /// path — the key predates this process).
    fn append_done_text(&self, key_text: &str, summary: &TrialSummary) -> std::io::Result<()> {
        self.append_raw(
            KIND_DONE,
            key_text,
            fnv1a64(key_text.as_bytes()),
            &encode_summary(summary),
        )
    }

    /// Summarizes the store rooted at `dir` without holding it open.
    ///
    /// # Errors
    ///
    /// Returns the IO error when the directory cannot be opened.
    pub fn stat(dir: impl Into<PathBuf>) -> std::io::Result<StoreStat> {
        let store = PackStore::open(dir)?;
        let inner = store.inner.read().expect("store lock");
        let done = inner
            .index
            .values()
            .filter(|loc| loc.kind == KIND_DONE)
            .count();
        let mut on_disk = 0usize;
        for pack in &inner.packs {
            let mut at = PACK_MAGIC.len();
            while let Some(rec) = decode_record(&pack.data, at) {
                on_disk += 1;
                at = rec.next;
            }
        }
        Ok(StoreStat {
            packs: inner.packs.len(),
            records: inner.index.len(),
            done,
            quarantined: inner.index.len() - done,
            superseded: on_disk - inner.index.len(),
            bytes: inner.packs.iter().map(|p| p.data.len() as u64).sum(),
            reclaimed: store.reclaimed,
        })
    }

    /// Every live decided record — `(key text, outcome)` — sorted by
    /// key text so reports are deterministic regardless of pack layout.
    /// Undecodable records (which `probe`/`decided` would reject on
    /// integrity grounds) are skipped.
    pub fn decided_entries(&self) -> Vec<(String, CellOutcome)> {
        let inner = self.inner.read().expect("store lock");
        let mut out: Vec<(String, CellOutcome)> = inner
            .index
            .values()
            .filter_map(|loc| {
                let rec = decode_record(&inner.packs[loc.pack].data, loc.offset)?;
                let outcome = match rec.kind {
                    KIND_DONE => CellOutcome::Done(decode_summary(rec.payload)?),
                    _ => CellOutcome::Quarantined(decode_failure(rec.payload)?),
                };
                Some((rec.key_text.to_owned(), outcome))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Offline compaction: merges every pack into one, keeping only the
    /// latest record per key, writes a fresh sidecar, and removes the
    /// superseded packs. Refuses to run while any process holds a
    /// writer lease on the directory — concurrent writers would race
    /// the removal. The merge is crash-consistent: pack and sidecar
    /// are written to tmp names, synced, renamed into place, and only
    /// then are the superseded packs unlinked, so a crash at any point
    /// leaves either the old store or the new one, never neither.
    ///
    /// # Errors
    ///
    /// Returns the IO error when the merged pack cannot be written; the
    /// original packs are only removed after the merge landed.
    pub fn compact(dir: impl Into<PathBuf>) -> std::io::Result<CompactStats> {
        let dir = dir.into();
        let holders = live_lease_holders(&dir);
        if !holders.is_empty() {
            return Err(std::io::Error::other(format!(
                "store has live writers (pids {holders:?}); compact between campaigns"
            )));
        }
        let store = PackStore::open(&dir)?;
        let inner = store.inner.read().expect("store lock");
        let bytes_before: u64 = inner.packs.iter().map(|p| p.data.len() as u64).sum();
        let mut records_before = 0usize;
        for pack in &inner.packs {
            let mut at = PACK_MAGIC.len();
            while let Some(rec) = decode_record(&pack.data, at) {
                records_before += 1;
                at = rec.next;
            }
        }
        // Deterministic output order: by (pack, offset) of the live
        // record, i.e. survivor records keep their relative order.
        let mut live: Vec<&Loc> = inner.index.values().collect();
        live.sort_by_key(|loc| (loc.pack, loc.offset));

        let mut merged = PACK_MAGIC.to_vec();
        let mut entries = Vec::with_capacity(live.len());
        for loc in &live {
            let data = &inner.packs[loc.pack].data;
            let rec = decode_record(data, loc.offset).expect("indexed record decodes");
            let offset = merged.len();
            merged.extend_from_slice(&data[loc.offset..rec.next]);
            entries.push(IdxEntry {
                fingerprint: fnv1a64(rec.key_text.as_bytes()),
                offset,
                kind: rec.kind,
            });
        }
        let merged_path = dir.join(format!("pack-{}-merged-0.hpk", std::process::id()));
        let idx = encode_index(merged.len(), &entries);
        write_synced_then_rename(store.io.as_ref(), &merged_path, &merged)?;
        write_synced_then_rename(store.io.as_ref(), &idx_path_for(&merged_path), &idx)?;
        for pack in &inner.packs {
            if pack.path != merged_path {
                let _ = store.io.remove_file(&pack.path);
                let _ = store.io.remove_file(&idx_path_for(&pack.path));
            }
        }
        Ok(CompactStats {
            packs_before: inner.packs.len(),
            records_before,
            records_after: entries.len(),
            bytes_before,
            bytes_after: merged.len() as u64,
        })
    }

    /// Scrub-and-repair: verifies every record checksum across every
    /// pack by raw byte scan (ignoring sidecars, which are themselves
    /// verified against the scan), quarantines corrupt byte spans into
    /// a `scrub-quarantine/` pack, and rewrites a clean store
    /// crash-consistently. Refuses to run while any process holds a
    /// writer lease.
    ///
    /// Because decided keys live in record bodies, the cells lost to a
    /// corrupt span simply disappear from the decided set — the next
    /// warm campaign re-simulates exactly those cells.
    ///
    /// # Errors
    ///
    /// Returns the IO error when the store cannot be opened or the
    /// clean rewrite cannot land (the original packs are untouched in
    /// that case).
    pub fn scrub(dir: impl Into<PathBuf>) -> std::io::Result<ScrubStats> {
        Self::scrub_with(dir, RealIo::shared())
    }

    /// [`scrub`](Self::scrub) with an explicit I/O backend (fault
    /// injection in tests).
    ///
    /// # Errors
    ///
    /// Same contract as [`scrub`](Self::scrub).
    pub fn scrub_with(
        dir: impl Into<PathBuf>,
        io: Arc<dyn StoreIo>,
    ) -> std::io::Result<ScrubStats> {
        let dir = dir.into();
        let holders = live_lease_holders(&dir);
        if !holders.is_empty() {
            return Err(std::io::Error::other(format!(
                "store has live writers (pids {holders:?}); scrub between campaigns"
            )));
        }
        let mut pack_paths: Vec<PathBuf> = io
            .read_dir(&dir)?
            .into_iter()
            .filter(|p| p.extension().is_some_and(|x| x == "hpk"))
            .collect();
        pack_paths.sort();

        let mut stats = ScrubStats::default();
        // Last-wins per fingerprint in (pack, offset) scan order, same
        // discipline as open. A surviving record is (key fingerprint →
        // raw bytes); corrupt spans accumulate for quarantine.
        let mut live: HashMap<u64, (usize, Vec<u8>)> = HashMap::new();
        let mut order = 0usize;
        let mut quarantine: Vec<u8> = Vec::new();
        for path in &pack_paths {
            let Ok(data) = io.read(path) else { continue };
            stats.packs += 1;
            stats.bytes_before += data.len() as u64;
            if data.len() < PACK_MAGIC.len() || data[..PACK_MAGIC.len()] != PACK_MAGIC {
                stats.sidecars_bad += usize::from(io.exists(&idx_path_for(path)));
                stats.corrupt_spans += 1;
                stats.corrupt_bytes += data.len() as u64;
                quarantine.extend_from_slice(&data);
                continue;
            }
            // Sidecar health: a sidecar that does not decode against
            // this pack (or points past its end) is counted bad; all
            // sidecars are rewritten from scratch below either way.
            let idx_path = idx_path_for(path);
            if io.exists(&idx_path) {
                let ok = io
                    .read(&idx_path)
                    .ok()
                    .and_then(|idx| decode_index(&idx, data.len()))
                    .is_some();
                if !ok {
                    stats.sidecars_bad += 1;
                }
            }
            let mut at = PACK_MAGIC.len();
            let mut bad_from: Option<usize> = None;
            while at < data.len() {
                if let Some(rec) = decode_record(&data, at) {
                    if let Some(start) = bad_from.take() {
                        stats.corrupt_spans += 1;
                        stats.corrupt_bytes += (at - start) as u64;
                        quarantine.extend_from_slice(&data[start..at]);
                    }
                    stats.records_scanned += 1;
                    let fp = fnv1a64(rec.key_text.as_bytes());
                    live.insert(fp, (order, data[at..rec.next].to_vec()));
                    order += 1;
                    at = rec.next;
                } else {
                    // Corrupt or torn: resync byte-by-byte until a
                    // record decodes again (or the pack ends).
                    if bad_from.is_none() {
                        bad_from = Some(at);
                    }
                    at += 1;
                }
            }
            if let Some(start) = bad_from.take() {
                stats.corrupt_spans += 1;
                stats.corrupt_bytes += (data.len() - start) as u64;
                quarantine.extend_from_slice(&data[start..]);
            }
        }
        stats.records_kept = live.len();

        // Quarantined bytes land first — losing data silently is the
        // one thing a scrub must never do.
        if !quarantine.is_empty() {
            let qdir = dir.join("scrub-quarantine");
            io.create_dir_all(&qdir)?;
            let mut n = 0usize;
            let qpath = loop {
                let p = qdir.join(format!("quarantine-{n}.bin"));
                if !io.exists(&p) {
                    break p;
                }
                n += 1;
            };
            let mut f = io.create_new(&qpath)?;
            f.write_all(&quarantine)?;
            f.flush()?;
            f.sync_all()?;
        }

        // Clean rewrite: one merged pack + sidecar, tmp → sync →
        // rename, then unlink the old packs.
        let mut survivors: Vec<&(usize, Vec<u8>)> = live.values().collect();
        survivors.sort_by_key(|(ord, _)| *ord);
        let mut merged = PACK_MAGIC.to_vec();
        let mut entries = Vec::with_capacity(survivors.len());
        for (_, bytes) in survivors {
            let offset = merged.len();
            merged.extend_from_slice(bytes);
            let rec = decode_record(&merged, offset).expect("survivor record decodes");
            entries.push(IdxEntry {
                fingerprint: fnv1a64(rec.key_text.as_bytes()),
                offset,
                kind: rec.kind,
            });
        }
        let merged_path = dir.join(format!("pack-{}-scrubbed-0.hpk", std::process::id()));
        let idx = encode_index(merged.len(), &entries);
        write_synced_then_rename(io.as_ref(), &merged_path, &merged)?;
        write_synced_then_rename(io.as_ref(), &idx_path_for(&merged_path), &idx)?;
        for path in &pack_paths {
            if *path != merged_path {
                let _ = io.remove_file(path);
                let _ = io.remove_file(&idx_path_for(path));
            }
        }
        stats.bytes_after = merged.len() as u64;
        Ok(stats)
    }

    /// Durability barrier: when running at [`Durability::Batch`],
    /// syncs every writer that appended since the last barrier. A
    /// sync failure is counted (`store.sync_failures`) but does not
    /// degrade the store — the bytes are still queued with the kernel.
    pub fn barrier(&self) {
        if self.durability != Durability::Batch {
            return;
        }
        if self.dirty.swap(0, Ordering::Relaxed) == 0 {
            return;
        }
        for slot in &self.writers {
            let mut guard = slot.lock().expect("writer lock");
            if let Some(writer) = guard.as_mut() {
                if writer.file.sync_all().is_err() {
                    self.counters.note_sync_failure();
                }
            }
        }
    }

    /// Snapshot of this store's recovery accounting (retries taken,
    /// degradations, sync failures).
    pub fn io_health(&self) -> IoHealth {
        self.counters.snapshot()
    }

    /// Clears a sticky write degradation so the next campaign re-probes
    /// the directory instead of staying read-only for process lifetime.
    pub fn reprobe(&self) {
        self.write_degraded.store(false, Ordering::Relaxed);
    }
}

/// Crash-consistent publish of `bytes` at `path`: write `path.tmp`,
/// flush + `sync_all`, then rename over the live name.
fn write_synced_then_rename(io: &dyn StoreIo, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = io.create(&tmp)?;
    f.write_all(bytes)?;
    f.flush()?;
    f.sync_all()?;
    drop(f);
    io.rename(&tmp, path)
}

impl TrialStore for PackStore {
    fn probe(&self, key: &TrialKey) -> Option<TrialSummary> {
        self.probe_one(key)
    }

    fn probe_many(&self, keys: &[TrialKey]) -> Vec<Option<TrialSummary>> {
        // One read-lock acquisition for the whole grid; counters are
        // batched so the atomics are touched once per grid, not per
        // cell.
        let mut out = Vec::with_capacity(keys.len());
        let (mut hits, mut misses, mut rejects) = (0u64, 0u64, 0u64);
        {
            let inner = self.inner.read().expect("store lock");
            for key in keys {
                let mut resolved = None;
                match inner.index.get(&key.fingerprint()) {
                    None => misses += 1,
                    Some(loc) => {
                        let servable = decode_record(&inner.packs[loc.pack].data, loc.offset)
                            .filter(|rec| rec.key_text == key.text());
                        match servable {
                            Some(rec) if rec.kind == KIND_DONE => match decode_summary(rec.payload)
                            {
                                Some(s) => {
                                    hits += 1;
                                    resolved = Some(s);
                                }
                                None => {
                                    rejects += 1;
                                    misses += 1;
                                }
                            },
                            Some(_) => {
                                // Quarantined: decided, but not a
                                // summary — a plain miss for the cache
                                // surface.
                                misses += 1;
                            }
                            None => {
                                // Undecodable record or foreign key
                                // behind a collision: integrity reject.
                                rejects += 1;
                                misses += 1;
                            }
                        }
                    }
                }
                out.push(resolved);
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        self.rejects.fetch_add(rejects, Ordering::Relaxed);
        out
    }

    fn store(&self, key: &TrialKey, summary: &TrialSummary) {
        let _ = self.append(KIND_DONE, key, &encode_summary(summary));
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }

    fn location(&self) -> &Path {
        &self.dir
    }

    fn barrier(&self) {
        PackStore::barrier(self);
    }

    fn io_health(&self) -> IoHealth {
        PackStore::io_health(self)
    }

    fn reprobe(&self) {
        PackStore::reprobe(self);
    }
}

impl DecidedStore for PackStore {
    fn decided(&self, key: &TrialKey) -> Option<CellOutcome> {
        match self.lookup(key) {
            Ok(Some(outcome)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(outcome)
            }
            Ok(None) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(()) => {
                self.rejects.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn record_done(&self, key: &TrialKey, summary: &TrialSummary) -> std::io::Result<()> {
        self.append(KIND_DONE, key, &encode_summary(summary))
    }

    fn record_quarantined(&self, key: &TrialKey, failure: &CellFailure) -> std::io::Result<()> {
        self.append(KIND_QUARANTINED, key, &encode_failure(failure))
    }

    fn resumed(&self) -> usize {
        self.loaded
    }

    fn barrier(&self) {
        PackStore::barrier(self);
    }

    fn io_health(&self) -> IoHealth {
        PackStore::io_health(self)
    }
}

impl Drop for PackStore {
    fn drop(&mut self) {
        // A clean close syncs any batched appends and leaves fresh
        // sidecars so the next open skips the full scan. Best-effort
        // by design.
        self.barrier();
        if self.stores.load(Ordering::Relaxed) > 0 && !self.write_degraded.load(Ordering::Relaxed) {
            self.write_indexes();
        }
    }
}

/// Builds whatever trial store the environment asks for:
/// [`SWEEP_STORE_ENV`] (pack store, with one-time legacy-cache
/// migration from [`DEFAULT_LEGACY_CACHE_DIR`]) takes precedence over
/// [`SWEEP_CACHE_ENV`](crate::cache::SWEEP_CACHE_ENV) (per-file cache).
/// `None` when both are unset or
/// disabled. An unopenable store directory degrades exactly like the
/// cache: a warning on stderr, then the sweep runs unstored. The
/// warning fires on each healthy→failing *transition* (not once per
/// process), so a campaign after the directory is fixed re-probes and
/// a later regression warns again.
pub fn store_from_env() -> Option<Box<dyn TrialStore>> {
    if let Ok(raw) = std::env::var(SWEEP_STORE_ENV) {
        let raw = raw.trim();
        if !raw.is_empty() && raw != "0" {
            let dir = if raw == "1" {
                PathBuf::from(DEFAULT_STORE_DIR)
            } else {
                PathBuf::from(raw)
            };
            // Tracks whether the last open attempt failed, so the
            // warning fires on transitions instead of once-ever.
            static FAILING: AtomicBool = AtomicBool::new(false);
            return match PackStore::open(&dir) {
                Ok(store) => {
                    if FAILING.swap(false, Ordering::Relaxed) {
                        eprintln!(
                            "note: sweep store at {} is reachable again; storing resumed",
                            dir.display()
                        );
                    }
                    let _ = store.migrate_legacy(DEFAULT_LEGACY_CACHE_DIR);
                    Some(Box::new(store))
                }
                Err(e) => {
                    if !FAILING.swap(true, Ordering::Relaxed) {
                        eprintln!(
                            "warning: cannot open sweep store at {} ({e}); running uncached",
                            dir.display()
                        );
                    }
                    None
                }
            };
        }
        return None;
    }
    SweepCache::from_env().map(|c| Box::new(c) as Box<dyn TrialStore>)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SWEEP_CACHE_ENV;
    use crate::scenario::{PaperScenario, PolicyKind};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "harvest-pack-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(seed: u64) -> TrialKey {
        TrialKey::new(&PaperScenario::new(0.4, 500.0), PolicyKind::EaDvfs, seed)
    }

    fn summary(missed: u64) -> TrialSummary {
        TrialSummary {
            released: 40,
            completed_in_time: 40 - missed,
            missed,
            sample_level_bits: vec![1.0f64.to_bits(), 0.25f64.to_bits()],
        }
    }

    fn failure() -> CellFailure {
        CellFailure {
            message: "injected panic".to_owned(),
            panicked: true,
            worker: 3,
            flight: None,
        }
    }

    #[test]
    fn payload_codecs_round_trip() {
        let s = summary(7);
        assert_eq!(decode_summary(&encode_summary(&s)), Some(s));
        let empty = TrialSummary {
            sample_level_bits: Vec::new(),
            ..summary(0)
        };
        assert_eq!(decode_summary(&encode_summary(&empty)), Some(empty));
        let f = failure();
        assert_eq!(decode_failure(&encode_failure(&f)), Some(f));
        assert_eq!(decode_summary(b"short"), None);
        assert_eq!(decode_failure(b"short"), None);

        // A flight-dump path rides along and round-trips...
        let with_flight = CellFailure {
            flight: Some("target/flight/00ab.flight.jsonl".to_owned()),
            ..failure()
        };
        assert_eq!(
            decode_failure(&encode_failure(&with_flight)),
            Some(with_flight.clone())
        );
        // ...while flight-less failures keep the pre-telemetry byte
        // layout, so packs written before the field existed (or without
        // flight recording) decode unchanged.
        let flightless = encode_failure(&failure());
        assert_eq!(flightless.len(), 9 + failure().message.len());
        let truncated = &encode_failure(&with_flight)[..flightless.len()];
        assert_eq!(truncated, &flightless[..]);
    }

    #[test]
    fn round_trip_and_reopen_preserve_bits() {
        let dir = scratch_dir("roundtrip");
        let store = PackStore::open(&dir).unwrap();
        assert_eq!(store.probe(&key(1)), None);
        store.store(&key(1), &summary(1));
        assert_eq!(store.probe(&key(1)), Some(summary(1)));
        let stats = TrialStore::stats(&store);
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
        drop(store);

        let store = PackStore::open(&dir).unwrap();
        assert_eq!(store.loaded(), 1);
        assert_eq!(store.probe(&key(1)), Some(summary(1)));
        assert_eq!(
            store.probe(&key(1)).unwrap().normalized_sample_values(2.0),
            vec![0.5, 0.125]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_many_matches_per_key_probes() {
        let dir = scratch_dir("batch");
        let store = PackStore::open(&dir).unwrap();
        for seed in 0..16u64 {
            if seed % 3 != 0 {
                store.store(&key(seed), &summary(seed));
            }
        }
        let keys: Vec<TrialKey> = (0..16).map(key).collect();
        let batch = store.probe_many(&keys);
        for (seed, got) in batch.iter().enumerate() {
            let expect = (seed % 3 != 0).then(|| summary(seed as u64));
            assert_eq!(*got, expect, "seed {seed}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decided_records_unify_cache_and_manifest_roles() {
        let dir = scratch_dir("decided");
        let store = PackStore::open(&dir).unwrap();
        store.record_done(&key(1), &summary(0)).unwrap();
        store.record_quarantined(&key(2), &failure()).unwrap();
        assert_eq!(store.decided(&key(1)), Some(CellOutcome::Done(summary(0))));
        assert_eq!(
            store.decided(&key(2)),
            Some(CellOutcome::Quarantined(failure()))
        );
        assert_eq!(store.decided(&key(3)), None);
        // The cache surface must not serve a quarantined cell as data.
        assert_eq!(store.probe(&key(2)), None);
        // Reporting sees every live record, sorted by key text.
        let entries = store.decided_entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(entries
            .iter()
            .any(|(k, o)| k == key(2).text() && matches!(o, CellOutcome::Quarantined(_))));
        drop(store);

        let store = PackStore::open(&dir).unwrap();
        assert_eq!(DecidedStore::resumed(&store), 2);
        assert_eq!(
            store.decided(&key(2)),
            Some(CellOutcome::Quarantined(failure())),
            "quarantined cells stay decided on resume"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn last_write_wins_on_duplicate_keys() {
        let dir = scratch_dir("dup");
        let store = PackStore::open(&dir).unwrap();
        store.record_quarantined(&key(1), &failure()).unwrap();
        store.record_done(&key(1), &summary(4)).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.decided(&key(1)), Some(CellOutcome::Done(summary(4))));
        drop(store);
        let store = PackStore::open(&dir).unwrap();
        assert_eq!(store.decided(&key(1)), Some(CellOutcome::Done(summary(4))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_pack_tail_is_truncated_and_recomputes() {
        let dir = scratch_dir("torn");
        let store = PackStore::open(&dir).unwrap();
        store.store(&key(1), &summary(1));
        store.store(&key(2), &summary(2));
        drop(store);
        // Exactly one pack (one writer thread); tear its tail and also
        // remove the sidecar so open must re-derive by scanning.
        let pack = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "hpk"))
            .unwrap();
        let _ = std::fs::remove_file(idx_path_for(&pack));
        let full = std::fs::read(&pack).unwrap();
        std::fs::write(&pack, &full[..full.len() - 11]).unwrap();

        let store = PackStore::open(&dir).unwrap();
        assert_eq!(store.probe(&key(1)), Some(summary(1)), "good prefix kept");
        assert_eq!(store.probe(&key(2)), None, "torn cell recomputes");
        // Both records encode the same-length key and payload, so the
        // surviving prefix is the header plus exactly one record.
        let record_len = (full.len() - PACK_MAGIC.len()) / 2;
        assert_eq!(
            std::fs::metadata(&pack).unwrap().len() as usize,
            PACK_MAGIC.len() + record_len,
            "the torn tail is truncated away on disk"
        );
        // The torn bytes are gone on disk: a new record appends cleanly.
        store.store(&key(2), &summary(2));
        drop(store);
        let store = PackStore::open(&dir).unwrap();
        assert_eq!(store.probe(&key(2)), Some(summary(2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_record_is_rejected_not_served() {
        let dir = scratch_dir("poison");
        let store = PackStore::open(&dir).unwrap();
        // A record whose checksum is valid but whose key text differs
        // (fingerprint collision / deliberate poisoning) must never be
        // served for our key. Stage it by writing a foreign record and
        // pointing the index at it through a crafted sidecar.
        let foreign = key(99);
        store.store(&foreign, &summary(9));
        drop(store);
        let pack = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "hpk"))
            .unwrap();
        let entries = [
            IdxEntry {
                fingerprint: foreign.fingerprint(),
                offset: PACK_MAGIC.len(),
                kind: KIND_DONE,
            },
            IdxEntry {
                fingerprint: key(1).fingerprint(),
                offset: PACK_MAGIC.len(),
                kind: KIND_DONE,
            },
        ];
        let covered = std::fs::metadata(&pack).unwrap().len() as usize;
        std::fs::write(idx_path_for(&pack), encode_index(covered, &entries)).unwrap();

        let store = PackStore::open(&dir).unwrap();
        assert_eq!(store.probe(&key(1)), None, "foreign key must be rejected");
        assert!(TrialStore::stats(&store).rejects >= 1);
        assert_eq!(store.probe(&foreign), Some(summary(9)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_stale_sidecar_falls_back_to_full_scan() {
        let dir = scratch_dir("sidecar");
        let store = PackStore::open(&dir).unwrap();
        for seed in 0..8 {
            store.store(&key(seed), &summary(seed));
        }
        drop(store); // writes sidecars
        let pack = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "hpk"))
            .unwrap();
        let idx = idx_path_for(&pack);
        let good = std::fs::read(&idx).unwrap();

        // Truncated sidecar: ignored, full scan still finds all cells.
        std::fs::write(&idx, &good[..good.len() / 2]).unwrap();
        let store = PackStore::open(&dir).unwrap();
        assert_eq!(store.loaded(), 8);
        drop(store);

        // Bit-flipped sidecar: checksum rejects it, full scan recovers.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        std::fs::write(&idx, &bad).unwrap();
        let store = PackStore::open(&dir).unwrap();
        assert_eq!(store.loaded(), 8);
        for seed in 0..8 {
            assert_eq!(store.probe(&key(seed)), Some(summary(seed)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_writes_degrade_without_failing_the_run() {
        let dir = scratch_dir("write-degraded");
        let store = PackStore::open(&dir).unwrap();
        store.store(&key(1), &summary(1));
        // Yank the directory: new writer slots cannot be created. Use a
        // fresh store so no writer fd is already open.
        drop(store);
        let store = PackStore::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        store.store(&key(2), &summary(2));
        store.store(&key(3), &summary(3));
        assert!(
            store.record_done(&key(4), &summary(4)).is_err(),
            "manifest-surface records report the failure"
        );
        // Previously loaded cells still serve.
        assert_eq!(store.probe(&key(1)), Some(summary(1)));
    }

    #[test]
    fn compact_merges_packs_and_drops_superseded_records() {
        let dir = scratch_dir("compact");
        let store = PackStore::open(&dir).unwrap();
        for seed in 0..6 {
            store.store(&key(seed), &summary(seed));
        }
        // Supersede two cells.
        store.store(&key(0), &summary(5));
        store.record_quarantined(&key(1), &failure()).unwrap();
        drop(store);

        let pre = PackStore::stat(&dir).unwrap();
        assert_eq!((pre.records, pre.superseded), (6, 2));

        let stats = PackStore::compact(&dir).unwrap();
        assert_eq!(stats.records_before, 8);
        assert_eq!(stats.records_after, 6);
        assert!(stats.bytes_after < stats.bytes_before);

        let stat = PackStore::stat(&dir).unwrap();
        assert_eq!(stat.packs, 1);
        assert_eq!(stat.records, 6);
        assert_eq!(stat.done, 5);
        assert_eq!(stat.quarantined, 1);
        assert_eq!(stat.superseded, 0, "compaction dropped the duplicates");

        let store = PackStore::open(&dir).unwrap();
        assert_eq!(store.probe(&key(0)), Some(summary(5)), "latest survives");
        assert_eq!(
            store.decided(&key(1)),
            Some(CellOutcome::Quarantined(failure()))
        );
        for seed in 2..6 {
            assert_eq!(store.probe(&key(seed)), Some(summary(seed)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_cache_migrates_once_bit_identically() {
        let legacy = scratch_dir("legacy-src");
        let dir = scratch_dir("legacy-dst");
        let cache = SweepCache::new(&legacy).unwrap();
        for seed in 0..4 {
            cache.put(&key(seed), &summary(seed));
        }
        // Poisoned legacy entry: wrong name for its key text.
        #[derive(serde::Serialize)]
        struct Entry {
            key: String,
            summary: TrialSummary,
        }
        std::fs::write(
            legacy.join("00000000deadbeef.json"),
            serde_json::to_string(&Entry {
                key: key(7).text().to_owned(),
                summary: summary(0),
            })
            .unwrap(),
        )
        .unwrap();

        let store = PackStore::open(&dir).unwrap();
        assert_eq!(store.migrate_legacy(&legacy).unwrap(), 4);
        for seed in 0..4 {
            assert_eq!(
                store.probe(&key(seed)),
                Some(summary(seed)),
                "migrated cell is byte-identical"
            );
        }
        assert_eq!(store.probe(&key(7)), None, "poisoned entry not ingested");
        // One-time: a second call is a no-op even with new legacy cells.
        cache.put(&key(9), &summary(9));
        assert_eq!(store.migrate_legacy(&legacy).unwrap(), 0);
        assert_eq!(store.probe(&key(9)), None);
        let _ = std::fs::remove_dir_all(&legacy);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_from_env_precedence_and_degradation() {
        use crate::test_support::with_env;
        let dir = scratch_dir("env");
        let dir_str = dir.to_str().unwrap().to_owned();
        with_env(&[(SWEEP_STORE_ENV, None), (SWEEP_CACHE_ENV, None)], || {
            assert!(store_from_env().is_none())
        });
        with_env(
            &[(SWEEP_STORE_ENV, Some("0")), (SWEEP_CACHE_ENV, None)],
            || assert!(store_from_env().is_none()),
        );
        with_env(
            &[
                (SWEEP_STORE_ENV, Some(dir_str.as_str())),
                (SWEEP_CACHE_ENV, None),
            ],
            || {
                let store = store_from_env().expect("explicit dir enables the store");
                assert_eq!(store.location(), dir.as_path());
            },
        );
        // Store env wins over cache env.
        with_env(
            &[
                (SWEEP_STORE_ENV, Some(dir_str.as_str())),
                (SWEEP_CACHE_ENV, Some("1")),
            ],
            || {
                let store = store_from_env().expect("store env wins");
                assert_eq!(store.location(), dir.as_path());
            },
        );
        // Unopenable store dir (file standing where the dir must go, as
        // in the cache test — root ignores permission bits): degrade.
        let blocker = scratch_dir("env-blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let blocked = blocker.join("sub");
        let blocked_str = blocked.to_str().unwrap().to_owned();
        with_env(
            &[
                (SWEEP_STORE_ENV, Some(blocked_str.as_str())),
                (SWEEP_CACHE_ENV, None),
            ],
            || {
                assert!(
                    store_from_env().is_none(),
                    "an unopenable store dir must disable storing, not fail"
                );
            },
        );
        let _ = std::fs::remove_file(&blocker);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn fd_budget_is_constant_in_grid_size() {
        let open_fds = || std::fs::read_dir("/proc/self/fd").unwrap().count();
        let dir = scratch_dir("fds");
        let store = PackStore::open(&dir).unwrap();
        store.store(&key(0), &summary(0));
        let baseline = open_fds();
        for seed in 1..512 {
            store.store(&key(seed), &summary(seed % 8));
        }
        let keys: Vec<TrialKey> = (0..512).map(key).collect();
        let hits = store.probe_many(&keys);
        assert!(hits.iter().all(|h| h.is_some()));
        // 511 more cells and 512 probes cost zero additional fds: the
        // store keeps at most one writer fd per slot, nothing per cell.
        assert!(
            open_fds() <= baseline + WRITER_SLOTS,
            "fd count grew with grid size: {} -> {}",
            baseline,
            open_fds()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
