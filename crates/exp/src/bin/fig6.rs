//! Figure 6 — normalized remaining energy over time at U = 0.4:
//! EA-DVFS stores significantly more energy than LSA.

use harvest_exp::cli::CliArgs;
use harvest_exp::figures::remaining_energy_figure;
use harvest_exp::report::{ascii_plot, fmt_num, Table};
use harvest_exp::scenario::PolicyKind;

fn main() {
    let args = CliArgs::parse(20);
    let policies = [PolicyKind::EaDvfs, PolicyKind::Lsa];
    let fig = remaining_energy_figure(0.4, &policies, args.trials, args.threads, 100);

    println!(
        "Figure 6: normalized remaining energy, U = 0.4 ({} task sets x {} capacities)",
        fig.trials,
        fig.capacities.len()
    );
    println!();
    let ea = fig.curve(PolicyKind::EaDvfs).unwrap();
    let lsa = fig.curve(PolicyKind::Lsa).unwrap();
    println!(
        "{}",
        ascii_plot(&[("EA-DVFS", ea), ("LSA", lsa)], "t (x100 units)", 100, 16)
    );
    println!(
        "time-averaged normalized remaining energy: EA-DVFS {} vs LSA {}",
        fmt_num(fig.mean_level(PolicyKind::EaDvfs).unwrap()),
        fmt_num(fig.mean_level(PolicyKind::Lsa).unwrap()),
    );
    println!("paper shape: EA-DVFS curve sits clearly above LSA");
    println!();
    let mut breakdown = Table::new(vec!["capacity", "EA-DVFS", "LSA", "gap"]);
    for (c, row) in fig.capacities.iter().zip(&fig.per_capacity) {
        breakdown.row(vec![
            fmt_num(*c),
            format!("{:.3}", row[0]),
            format!("{:.3}", row[1]),
            format!("{:+.3}", row[0] - row[1]),
        ]);
    }
    println!("per-capacity time-averaged normalized level:");
    println!("{}", breakdown.render());

    let mut csv = Table::new(vec!["t", "ea_dvfs", "lsa"]);
    for ((t, e), l) in fig.times.iter().zip(ea).zip(lsa) {
        csv.row(vec![fmt_num(*t), fmt_num(*e), fmt_num(*l)]);
    }
    args.maybe_write_csv(&csv.to_csv());
    args.maybe_write_json("fig6", &fig);
}
