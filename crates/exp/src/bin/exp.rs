//! `exp` — record, inspect, and diff observable runs.
//!
//! ```text
//! exp record      [--policy NAME] [--util U] [--capacity C] [--seed N]
//!                 [--horizon UNITS] [--sample UNITS] [--out PATH]
//! exp inspect     PATH
//! exp diff        PATH BASELINE
//! exp sweep       [--util U] [--trials N] [--threads N] [--store DIR]
//!                 [--cache PATH] [--trace PATH] [--progress PATH] [--expect-warm]
//! exp fault-sweep [--util U] [--capacity C] [--trials N] [--threads N]
//!                 [--horizon UNITS] [--intensities A,B,..] [--manifest PATH]
//!                 [--store DIR] [--cache PATH] [--trace PATH] [--progress PATH]
//!                 [--flight DIR]
//!                 [--inject-panic POLICY:SEED:INTENSITY]
//!                 [--inject-starve POLICY:SEED:INTENSITY] [--expect-resumed]
//! exp report      [--store DIR] [--manifest PATH] [--progress PATH] [--trace PATH]
//!                 [--json] [--out PATH]
//! exp store stat    DIR [--json]
//! exp store compact DIR
//! ```
//!
//! `record` replays one §5.1 trial with full observability (trace,
//! metrics, phase profiling) and writes the run as a JSONL artifact.
//! `inspect` renders an artifact's metrics, phase profile, and
//! energy/level timelines as tables and ASCII plots. `diff` compares two
//! artifacts' metric snapshots line by line. `sweep` runs a small
//! cache-aware miss-rate sweep and reports how it executed (simulated
//! vs. cached cells, pool reuse, and a digest of the figure data) — the
//! CI smoke runs it twice against one cache directory and `--expect-warm`
//! makes the second invocation fail unless every cell was a cache hit.
//! `fault-sweep` runs the robustness campaign (miss rate vs. fault
//! intensity for EDF/LSA/EA-DVFS) through the quarantining harness:
//! panicking or watchdog-aborted cells are reported as `quarantine`
//! lines and the sweep still exits 0; `--manifest` checkpoints every
//! decided cell so a killed campaign resumes without re-simulating, and
//! `--expect-resumed` makes a resumed invocation fail unless zero cells
//! were re-simulated. The `--inject-*` flags deterministically sabotage
//! single cells — the CI smoke's failure-injection hooks.
//!
//! Both sweeps resolve results through a trial store: `--store DIR`
//! opens a segment-packed [`PackStore`] (one-time migrating any legacy
//! per-file cache), `--cache PATH` the legacy per-file JSON cache; the
//! two are mutually exclusive, and with neither flag the
//! `HARVEST_SWEEP_STORE` / `HARVEST_SWEEP_CACHE` environment variables
//! decide. Under `--store`, `fault-sweep` also checkpoints decided
//! cells into the pack as decided records, so resume and cache are one
//! read path and `--manifest` is unnecessary. `store stat` summarizes a
//! store directory (`--json` for machine consumption); `store compact`
//! merges its packs, dropping superseded records.
//!
//! Campaign telemetry (all off by default, zero-cost when off):
//! `--trace PATH` records phase and per-cell spans and exports them as
//! Chrome-trace JSON (loadable in `chrome://tracing` or Perfetto);
//! `--progress PATH` streams one versioned JSONL event per decided cell
//! plus rate/ETA heartbeats (and mirrors heartbeats as human lines on
//! stderr); `--flight DIR` (fault-sweep only) arms a crash flight
//! recorder on every worker and writes one `*.flight.jsonl` post-mortem
//! per failed cell, linked from the quarantine report. `report` folds a
//! store/manifest, a progress stream, and a trace back into one
//! markdown (or `--json`) campaign report.
//!
//! Exit codes: 0 on success (including sweeps with quarantined cells),
//! 1 on a runtime failure, 2 on a usage error.

use std::path::PathBuf;
use std::sync::Arc;

use harvest_exp::artifact::RunArtifact;
use harvest_exp::cache::{fnv1a64, SweepCache};
use harvest_exp::figures::{
    miss_rate_figure_grouped, robustness_campaign_instrumented, GroupingMode, RobustnessConfig,
    Sabotage, SweepExecStats,
};
use harvest_exp::manifest::{CellOutcome, SweepManifest};
use harvest_exp::report::Table;
use harvest_exp::scenario::{PaperScenario, PolicyKind, PredictorKind};
use harvest_exp::store::{
    store_from_env, DecidedStore, PackStore, TrialStore, DEFAULT_LEGACY_CACHE_DIR,
};
use harvest_exp::telemetry::{CampaignTelemetry, FlightOptions};
use harvest_obs::io::{Durability, IoHealth, RealIo, RetryPolicy};
use harvest_obs::progress::{progress_from_jsonl, ProgressLine};
use harvest_obs::span::SpanCollector;
use harvest_obs::ProgressReporter;
use harvest_obs::{MetricsRegistry, MetricsSink};
use serde::Value;

const USAGE: &str = "usage:
  exp record      [--policy edf|lsa|ea-dvfs|greedy-stretch] [--util U] [--capacity C]
                  [--seed N] [--horizon UNITS] [--sample UNITS] [--out PATH]
  exp inspect     PATH
  exp diff        PATH BASELINE
  exp sweep       [--util U] [--trials N] [--threads N] [--batch B]
                  [--batch-group seed|policy|auto] [--store DIR]
                  [--durability none|batch|record]
                  [--cache PATH] [--trace PATH] [--progress PATH] [--expect-warm]
  exp fault-sweep [--util U] [--capacity C] [--trials N] [--threads N] [--batch B]
                  [--horizon UNITS] [--intensities A,B,..] [--manifest PATH]
                  [--store DIR] [--durability none|batch|record]
                  [--cache PATH] [--trace PATH] [--progress PATH]
                  [--flight DIR]
                  [--inject-panic POLICY:SEED:INTENSITY]
                  [--inject-starve POLICY:SEED:INTENSITY] [--expect-resumed]
  exp report      [--store DIR] [--manifest PATH] [--progress PATH] [--trace PATH]
                  [--json] [--out PATH]
  exp store stat    DIR [--json]
  exp store compact DIR
  exp store scrub   DIR [--json]";

/// A failed invocation, split by whose fault it is: `Usage` exits 2 and
/// reprints the usage text, `Runtime` exits 1 with a one-line message.
#[derive(Debug)]
enum ExpError {
    Usage(String),
    Runtime(String),
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpError::Usage(msg) | ExpError::Runtime(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ExpError {}

/// Parameters of one recorded run.
#[derive(Debug, Clone, PartialEq)]
struct RecordArgs {
    policy: PolicyKind,
    utilization: f64,
    capacity: f64,
    seed: u64,
    horizon_units: i64,
    sample_units: i64,
    out: Option<PathBuf>,
}

impl Default for RecordArgs {
    fn default() -> Self {
        RecordArgs {
            policy: PolicyKind::EaDvfs,
            utilization: 0.4,
            capacity: 500.0,
            seed: 0,
            horizon_units: 10_000,
            sample_units: 100,
            out: None,
        }
    }
}

/// Parameters of one smoke sweep.
#[derive(Debug, Clone, PartialEq)]
struct SweepArgs {
    utilization: f64,
    trials: usize,
    threads: usize,
    batch: usize,
    batch_group: GroupingMode,
    store: Option<PathBuf>,
    durability: Durability,
    cache: Option<PathBuf>,
    trace: Option<PathBuf>,
    progress: Option<PathBuf>,
    expect_warm: bool,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            utilization: 0.4,
            trials: 2,
            threads: 2,
            batch: 1,
            batch_group: GroupingMode::Seed,
            store: None,
            durability: Durability::default(),
            cache: None,
            trace: None,
            progress: None,
            expect_warm: false,
        }
    }
}

/// One sabotage target: the (policy, seed, intensity) cell to fail.
type InjectSpec = (PolicyKind, u64, f64);

/// Parameters of one robustness campaign.
#[derive(Debug, Clone, PartialEq)]
struct FaultSweepArgs {
    utilization: f64,
    capacity: f64,
    trials: usize,
    threads: usize,
    batch: usize,
    horizon_units: i64,
    intensities: Vec<f64>,
    manifest: Option<PathBuf>,
    store: Option<PathBuf>,
    durability: Durability,
    cache: Option<PathBuf>,
    trace: Option<PathBuf>,
    progress: Option<PathBuf>,
    flight: Option<PathBuf>,
    inject_panic: Vec<InjectSpec>,
    inject_starve: Vec<InjectSpec>,
    expect_resumed: bool,
}

impl Default for FaultSweepArgs {
    fn default() -> Self {
        FaultSweepArgs {
            utilization: 0.4,
            capacity: 300.0,
            trials: 2,
            threads: 2,
            batch: 1,
            horizon_units: 2_000,
            intensities: vec![0.0, 0.5, 1.0],
            manifest: None,
            store: None,
            durability: Durability::default(),
            cache: None,
            trace: None,
            progress: None,
            flight: None,
            inject_panic: Vec::new(),
            inject_starve: Vec::new(),
            expect_resumed: false,
        }
    }
}

/// Parameters of one campaign report.
#[derive(Debug, Clone, PartialEq, Default)]
struct ReportArgs {
    store: Option<PathBuf>,
    manifest: Option<PathBuf>,
    progress: Option<PathBuf>,
    trace: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Record(RecordArgs),
    Inspect(PathBuf),
    Diff { run: PathBuf, baseline: PathBuf },
    Sweep(SweepArgs),
    FaultSweep(FaultSweepArgs),
    Report(ReportArgs),
    StoreStat { dir: PathBuf, json: bool },
    StoreCompact(PathBuf),
    StoreScrub { dir: PathBuf, json: bool },
}

fn parse_policy(name: &str) -> Result<PolicyKind, String> {
    PolicyKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown policy `{name}` (try ea-dvfs, lsa, edf, greedy-stretch)"))
}

fn parse_record<I, S>(args: I) -> Result<RecordArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = RecordArgs::default();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let flag = flag.as_ref().to_owned();
        let mut value = || {
            it.next()
                .map(|v| v.as_ref().to_owned())
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match flag.as_str() {
            "--policy" => out.policy = parse_policy(&value()?)?,
            "--util" => {
                out.utilization = value()?
                    .parse()
                    .map_err(|_| "--util expects a number".to_owned())?;
                if !(out.utilization > 0.0 && out.utilization.is_finite()) {
                    return Err("--util must be positive".into());
                }
            }
            "--capacity" => {
                out.capacity = value()?
                    .parse()
                    .map_err(|_| "--capacity expects a number".to_owned())?;
                if !(out.capacity > 0.0 && out.capacity.is_finite()) {
                    return Err("--capacity must be positive".into());
                }
            }
            "--seed" => {
                out.seed = value()?
                    .parse()
                    .map_err(|_| "--seed expects an unsigned integer".to_owned())?;
            }
            "--horizon" => {
                out.horizon_units = value()?
                    .parse()
                    .map_err(|_| "--horizon expects a positive integer".to_owned())?;
                if out.horizon_units <= 0 {
                    return Err("--horizon must be positive".into());
                }
            }
            "--sample" => {
                out.sample_units = value()?
                    .parse()
                    .map_err(|_| "--sample expects a positive integer".to_owned())?;
                if out.sample_units <= 0 {
                    return Err("--sample must be positive".into());
                }
            }
            "--out" => out.out = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

fn parse_command<I, S>(args: I) -> Result<Command, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut it = args.into_iter();
    let sub = it
        .next()
        .map(|s| s.as_ref().to_owned())
        .ok_or_else(|| "missing subcommand".to_owned())?;
    match sub.as_str() {
        "record" => Ok(Command::Record(parse_record(it)?)),
        "inspect" => {
            let path = it
                .next()
                .map(|s| PathBuf::from(s.as_ref()))
                .ok_or_else(|| "inspect expects an artifact path".to_owned())?;
            if let Some(extra) = it.next() {
                return Err(format!("unexpected argument {}", extra.as_ref()));
            }
            Ok(Command::Inspect(path))
        }
        "diff" => {
            let run = it
                .next()
                .map(|s| PathBuf::from(s.as_ref()))
                .ok_or_else(|| "diff expects two artifact paths".to_owned())?;
            let baseline = it
                .next()
                .map(|s| PathBuf::from(s.as_ref()))
                .ok_or_else(|| "diff expects two artifact paths".to_owned())?;
            if let Some(extra) = it.next() {
                return Err(format!("unexpected argument {}", extra.as_ref()));
            }
            Ok(Command::Diff { run, baseline })
        }
        "sweep" => Ok(Command::Sweep(parse_sweep(it)?)),
        "fault-sweep" => Ok(Command::FaultSweep(parse_fault_sweep(it)?)),
        "report" => Ok(Command::Report(parse_report(it)?)),
        "store" => {
            let verb = it
                .next()
                .map(|s| s.as_ref().to_owned())
                .ok_or_else(|| "store expects `stat`, `compact`, or `scrub`".to_owned())?;
            let mut dir: Option<PathBuf> = None;
            let mut json = false;
            for arg in it {
                match arg.as_ref() {
                    "--json" => json = true,
                    a if dir.is_none() && !a.starts_with("--") => dir = Some(PathBuf::from(a)),
                    other => return Err(format!("unexpected argument {other}")),
                }
            }
            let dir = dir.ok_or_else(|| format!("store {verb} expects a store directory"))?;
            match verb.as_str() {
                "stat" => Ok(Command::StoreStat { dir, json }),
                "compact" if json => Err("store compact does not take --json".into()),
                "compact" => Ok(Command::StoreCompact(dir)),
                "scrub" => Ok(Command::StoreScrub { dir, json }),
                other => Err(format!(
                    "unknown store verb `{other}` (try stat, compact, scrub)"
                )),
            }
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Parses `POLICY:SEED:INTENSITY`, e.g. `lsa:0:0.5`.
fn parse_inject(spec: &str) -> Result<InjectSpec, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [policy, seed, intensity] = parts.as_slice() else {
        return Err(format!(
            "injection spec `{spec}` must be POLICY:SEED:INTENSITY"
        ));
    };
    let policy = parse_policy(policy)?;
    let seed = seed
        .parse()
        .map_err(|_| format!("injection seed `{seed}` must be an unsigned integer"))?;
    let intensity: f64 = intensity
        .parse()
        .map_err(|_| format!("injection intensity `{intensity}` must be a number"))?;
    if !(intensity.is_finite() && (0.0..=1.0).contains(&intensity)) {
        return Err("injection intensity must lie in [0, 1]".into());
    }
    Ok((policy, seed, intensity))
}

fn parse_fault_sweep<I, S>(args: I) -> Result<FaultSweepArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = FaultSweepArgs::default();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let flag = flag.as_ref().to_owned();
        let mut value = || {
            it.next()
                .map(|v| v.as_ref().to_owned())
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match flag.as_str() {
            "--util" => {
                out.utilization = value()?
                    .parse()
                    .map_err(|_| "--util expects a number".to_owned())?;
                if !(out.utilization > 0.0 && out.utilization.is_finite()) {
                    return Err("--util must be positive".into());
                }
            }
            "--capacity" => {
                out.capacity = value()?
                    .parse()
                    .map_err(|_| "--capacity expects a number".to_owned())?;
                if !(out.capacity > 0.0 && out.capacity.is_finite()) {
                    return Err("--capacity must be positive".into());
                }
            }
            "--trials" => {
                out.trials = value()?
                    .parse()
                    .map_err(|_| "--trials expects a positive integer".to_owned())?;
                if out.trials == 0 {
                    return Err("--trials must be positive".into());
                }
            }
            "--threads" => {
                out.threads = value()?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_owned())?;
                if out.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--horizon" => {
                out.horizon_units = value()?
                    .parse()
                    .map_err(|_| "--horizon expects a positive integer".to_owned())?;
                if out.horizon_units <= 0 {
                    return Err("--horizon must be positive".into());
                }
            }
            "--intensities" => {
                let raw = value()?;
                let parsed: Result<Vec<f64>, _> =
                    raw.split(',').map(|s| s.trim().parse::<f64>()).collect();
                out.intensities = parsed
                    .map_err(|_| "--intensities expects comma-separated numbers".to_owned())?;
                if out.intensities.is_empty()
                    || out
                        .intensities
                        .iter()
                        .any(|i| !(i.is_finite() && (0.0..=1.0).contains(i)))
                {
                    return Err("--intensities values must lie in [0, 1]".into());
                }
            }
            "--batch" => {
                out.batch = value()?
                    .parse()
                    .map_err(|_| "--batch expects a positive integer".to_owned())?;
                if out.batch == 0 {
                    return Err("--batch must be positive".into());
                }
            }
            "--manifest" => out.manifest = Some(PathBuf::from(value()?)),
            "--store" => out.store = Some(PathBuf::from(value()?)),
            "--durability" => {
                out.durability = Durability::parse(&value()?)
                    .ok_or_else(|| "--durability expects none, batch, or record".to_owned())?;
            }
            "--cache" => out.cache = Some(PathBuf::from(value()?)),
            "--trace" => out.trace = Some(PathBuf::from(value()?)),
            "--progress" => out.progress = Some(PathBuf::from(value()?)),
            "--flight" => out.flight = Some(PathBuf::from(value()?)),
            "--inject-panic" => out.inject_panic.push(parse_inject(&value()?)?),
            "--inject-starve" => out.inject_starve.push(parse_inject(&value()?)?),
            "--expect-resumed" => out.expect_resumed = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if out.store.is_some() && out.cache.is_some() {
        return Err("--store and --cache are mutually exclusive".into());
    }
    Ok(out)
}

/// Opens the pack store at `dir`, one-time migrating any legacy
/// per-file cache entries sitting in the default cache directory.
fn open_pack_store(dir: &std::path::Path, durability: Durability) -> Result<PackStore, String> {
    let store = PackStore::open_with(dir, RealIo::shared(), RetryPolicy::default(), durability)
        .map_err(|e| format!("cannot open store {}: {e}", dir.display()))?;
    match store.migrate_legacy(DEFAULT_LEGACY_CACHE_DIR) {
        Ok(0) => {}
        Ok(n) => eprintln!("migrated {n} legacy cache entries from {DEFAULT_LEGACY_CACHE_DIR}"),
        Err(e) => eprintln!("warning: legacy cache migration failed: {e}"),
    }
    Ok(store)
}

/// Resolves the sweep's trial store: `--store` wins, then `--cache`,
/// then the environment (`HARVEST_SWEEP_STORE` / `HARVEST_SWEEP_CACHE`).
fn open_trial_store(
    store: &Option<PathBuf>,
    cache: &Option<PathBuf>,
    durability: Durability,
) -> Result<Option<Box<dyn TrialStore>>, String> {
    match (store, cache) {
        (Some(dir), _) => Ok(Some(Box::new(open_pack_store(dir, durability)?))),
        (None, Some(dir)) => {
            Ok(Some(Box::new(SweepCache::new(dir).map_err(|e| {
                format!("cannot open cache {}: {e}", dir.display())
            })?)))
        }
        (None, None) => Ok(store_from_env()),
    }
}

/// Publishes the sweep's execution accounting and the store's hit/miss
/// counters into one [`MetricsRegistry`] and renders its snapshot as
/// `metric name=value` lines — the same registry pipeline run artifacts
/// use, so store hit rates sit alongside the pool gauges.
fn print_metrics(stats: &SweepExecStats, store: Option<&dyn TrialStore>, health: &IoHealth) {
    let mut reg = MetricsRegistry::new();
    reg.counter("sweep.simulated", stats.simulated);
    reg.counter("sweep.cached", stats.cached);
    reg.counter("pool.runs", stats.pool.runs);
    reg.counter("pool.batched_runs", stats.pool.batched_runs);
    reg.counter("pool.policy_batched_runs", stats.pool.policy_batched_runs);
    reg.counter("pool.batch_ticks", stats.pool.batch_ticks);
    reg.counter("pool.multi_lane_ticks", stats.pool.multi_lane_ticks);
    reg.gauge(
        "pool.event_slab_high_water",
        stats.pool.event_slab_high_water as f64,
    );
    reg.gauge("pool.ready_high_water", stats.pool.ready_high_water as f64);
    reg.gauge(
        "pool.batch_lane_high_water",
        stats.pool.batch_lane_high_water as f64,
    );
    reg.gauge(
        "pool.batch_policy_lane_high_water",
        stats.pool.batch_policy_lane_high_water as f64,
    );
    reg.gauge("pool.multi_lane_fraction", stats.pool.multi_lane_fraction());
    if let Some(s) = store {
        s.stats().publish("store", &mut reg);
    }
    health.publish("store", &mut reg);
    for e in reg.snapshot().entries {
        println!("metric {}={}", e.name, e.value.scalar());
    }
}

/// Prints the store's own accounting line, mirroring the legacy
/// `cache dir=...` line for per-file caches.
fn print_store_line(store: &dyn TrialStore) {
    let cs = store.stats();
    println!(
        "store dir={} hits={} misses={} rejects={} stores={}",
        store.location().display(),
        cs.hits,
        cs.misses,
        cs.rejects,
        cs.stores
    );
}

/// Builds the campaign observer bundle the sweep flags ask for:
/// `--trace` installs a span collector, `--progress` opens the JSONL
/// stream (heartbeats mirror to stderr), `--flight` arms per-worker
/// crash recorders dumping into the given directory.
fn build_telemetry(
    trace: &Option<PathBuf>,
    progress: &Option<PathBuf>,
    flight: &Option<PathBuf>,
) -> Result<CampaignTelemetry, String> {
    let mut t = CampaignTelemetry::off();
    if trace.is_some() {
        t.spans = Some(SpanCollector::shared());
    }
    if let Some(path) = progress {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        let writer: Box<dyn std::io::Write + Send> = Box::new(std::io::BufWriter::new(file));
        t.progress = Some(Arc::new(ProgressReporter::new(Some(writer), true)));
    }
    if let Some(dir) = flight {
        t.flight = Some(FlightOptions::new(dir));
    }
    Ok(t)
}

/// Closes the campaign's observers: the progress stream's final
/// heartbeat + finish line, then the Chrome-trace export (the drivers
/// drop every worker sink before returning, so the collector is
/// complete by the time this runs).
fn finish_telemetry(t: &CampaignTelemetry, trace: &Option<PathBuf>) -> Result<(), String> {
    if let Some(p) = &t.progress {
        p.finish()
            .map_err(|e| format!("cannot finish progress stream: {e}"))?;
    }
    if let (Some(spans), Some(path)) = (&t.spans, trace) {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        let mut out = std::io::BufWriter::new(file);
        spans
            .write_chrome_trace(&mut out)
            .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
        eprintln!("trace: {} spans -> {}", spans.len(), path.display());
    }
    Ok(())
}

fn store_stat(dir: &std::path::Path, json: bool) -> Result<(), String> {
    let s = PackStore::stat(dir).map_err(|e| format!("cannot stat {}: {e}", dir.display()))?;
    if json {
        let value = Value::Map(vec![
            ("dir".into(), Value::Str(dir.display().to_string())),
            ("packs".into(), Value::U64(s.packs as u64)),
            ("records".into(), Value::U64(s.records as u64)),
            ("done".into(), Value::U64(s.done as u64)),
            ("quarantined".into(), Value::U64(s.quarantined as u64)),
            ("superseded".into(), Value::U64(s.superseded as u64)),
            ("reclaimed".into(), Value::U64(s.reclaimed as u64)),
            ("bytes".into(), Value::U64(s.bytes)),
        ]);
        let text =
            serde_json::to_string_pretty(&value).map_err(|e| format!("serialize stat: {e}"))?;
        println!("{text}");
        return Ok(());
    }
    println!(
        "store dir={} packs={} records={} done={} quarantined={} bytes={} superseded={} \
         reclaimed={}",
        dir.display(),
        s.packs,
        s.records,
        s.done,
        s.quarantined,
        s.bytes,
        s.superseded,
        s.reclaimed
    );
    Ok(())
}

fn store_compact(dir: &std::path::Path) -> Result<(), String> {
    let c =
        PackStore::compact(dir).map_err(|e| format!("cannot compact {}: {e}", dir.display()))?;
    println!(
        "compact dir={} packs_before={} records_before={} records_after={} bytes_before={} \
         bytes_after={}",
        dir.display(),
        c.packs_before,
        c.records_before,
        c.records_after,
        c.bytes_before,
        c.bytes_after
    );
    Ok(())
}

fn store_scrub(dir: &std::path::Path, json: bool) -> Result<(), String> {
    let s = PackStore::scrub(dir).map_err(|e| format!("cannot scrub {}: {e}", dir.display()))?;
    if json {
        let value = Value::Map(vec![
            ("dir".into(), Value::Str(dir.display().to_string())),
            ("packs".into(), Value::U64(s.packs as u64)),
            ("sidecars_bad".into(), Value::U64(s.sidecars_bad as u64)),
            (
                "records_scanned".into(),
                Value::U64(s.records_scanned as u64),
            ),
            ("records_kept".into(), Value::U64(s.records_kept as u64)),
            ("corrupt_spans".into(), Value::U64(s.corrupt_spans as u64)),
            ("corrupt_bytes".into(), Value::U64(s.corrupt_bytes)),
            ("bytes_before".into(), Value::U64(s.bytes_before)),
            ("bytes_after".into(), Value::U64(s.bytes_after)),
        ]);
        let text =
            serde_json::to_string_pretty(&value).map_err(|e| format!("serialize scrub: {e}"))?;
        println!("{text}");
        return Ok(());
    }
    println!(
        "scrub dir={} packs={} sidecars_bad={} records_scanned={} records_kept={} \
         corrupt_spans={} corrupt_bytes={} bytes_before={} bytes_after={}",
        dir.display(),
        s.packs,
        s.sidecars_bad,
        s.records_scanned,
        s.records_kept,
        s.corrupt_spans,
        s.corrupt_bytes,
        s.bytes_before,
        s.bytes_after
    );
    if s.corrupt_spans > 0 {
        eprintln!(
            "scrub quarantined {} corrupt byte span(s); raw bytes kept under {}",
            s.corrupt_spans,
            dir.join("scrub-quarantine").display()
        );
    }
    Ok(())
}

/// The policy segment of a canonical trial key
/// (`v1|{scenario}|{policy}|{seed}` — the second-to-last `|` field).
fn key_policy(key: &str) -> &str {
    let mut it = key.rsplit('|');
    it.next();
    it.next().unwrap_or("?")
}

/// Folds decided cells (store or manifest) into the report: totals,
/// per-policy counts, and quarantine details.
fn report_cells(
    entries: &[(String, CellOutcome)],
    md: &mut String,
    json: &mut Vec<(String, Value)>,
) {
    let done = entries
        .iter()
        .filter(|(_, o)| matches!(o, CellOutcome::Done(_)))
        .count();
    let quarantined = entries.len() - done;
    md.push_str(&format!(
        "\n## Decided cells\n\n{} cells decided: {done} done, {quarantined} quarantined.\n\n",
        entries.len()
    ));
    let mut per: std::collections::BTreeMap<&str, (u64, u64)> = std::collections::BTreeMap::new();
    for (key, outcome) in entries {
        let slot = per.entry(key_policy(key)).or_default();
        match outcome {
            CellOutcome::Done(_) => slot.0 += 1,
            CellOutcome::Quarantined(_) => slot.1 += 1,
        }
    }
    let mut table = Table::new(vec!["policy", "done", "quarantined"]);
    for (policy, (d, q)) in &per {
        table.row(vec![(*policy).to_owned(), d.to_string(), q.to_string()]);
    }
    md.push_str(&table.render());
    let failures: Vec<_> = entries
        .iter()
        .filter_map(|(k, o)| match o {
            CellOutcome::Quarantined(f) => Some((k.as_str(), f)),
            CellOutcome::Done(_) => None,
        })
        .collect();
    if !failures.is_empty() {
        md.push_str("\n### Quarantined cells\n\n");
        let mut t = Table::new(vec!["worker", "panicked", "flight", "key"]);
        for (key, f) in &failures {
            t.row(vec![
                f.worker.to_string(),
                f.panicked.to_string(),
                f.flight.clone().unwrap_or_else(|| "-".into()),
                (*key).to_owned(),
            ]);
        }
        md.push_str(&t.render());
    }
    json.push((
        "cells".into(),
        Value::Map(vec![
            ("total".into(), Value::U64(entries.len() as u64)),
            ("done".into(), Value::U64(done as u64)),
            ("quarantined".into(), Value::U64(quarantined as u64)),
            (
                "policies".into(),
                Value::Seq(
                    per.iter()
                        .map(|(policy, (d, q))| {
                            Value::Map(vec![
                                ("policy".into(), Value::Str((*policy).to_owned())),
                                ("done".into(), Value::U64(*d)),
                                ("quarantined".into(), Value::U64(*q)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "quarantines".into(),
                Value::Seq(
                    failures
                        .iter()
                        .map(|(key, f)| {
                            Value::Map(vec![
                                ("key".into(), Value::Str((*key).to_owned())),
                                ("worker".into(), Value::U64(f.worker as u64)),
                                ("panicked".into(), Value::Bool(f.panicked)),
                                (
                                    "flight".into(),
                                    match &f.flight {
                                        Some(p) => Value::Str(p.clone()),
                                        None => Value::Null,
                                    },
                                ),
                                ("message".into(), Value::Str(f.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    ));
}

/// Folds a progress stream into the report: campaign identity, the
/// final heartbeat's decided totals, and the finish wall-clock.
fn report_progress(
    path: &std::path::Path,
    md: &mut String,
    json: &mut Vec<(String, Value)>,
) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let lines = progress_from_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let Some(ProgressLine::Started(start)) = lines.first() else {
        unreachable!("progress_from_jsonl guarantees a Started head");
    };
    let heartbeat = lines.iter().rev().find_map(|l| match l {
        ProgressLine::Heartbeat(h) => Some(h),
        _ => None,
    });
    let finished = lines.iter().rev().find_map(|l| match l {
        ProgressLine::Finished(f) => Some(f),
        _ => None,
    });
    md.push_str(&format!(
        "\n## Progress stream\n\ncampaign `{}`: {} cells, {} resumed at open, {} threads.\n",
        start.campaign, start.cells, start.resumed, start.threads
    ));
    let mut entries = vec![
        ("campaign".into(), Value::Str(start.campaign.clone())),
        ("cells".into(), Value::U64(start.cells)),
        ("resumed_at_open".into(), Value::U64(start.resumed)),
        ("threads".into(), Value::U64(start.threads)),
    ];
    if let Some(hb) = heartbeat {
        md.push_str(&format!(
            "decided {}/{} ({} hit, {} simulated, {} resumed, {} quarantined) at {:.1} cells/s, \
             lane high water {}.\n",
            hb.done,
            hb.total,
            hb.hits,
            hb.simulated,
            hb.resumed,
            hb.quarantined,
            hb.cells_per_sec,
            hb.lane_high_water
        ));
        entries.extend([
            ("done".into(), Value::U64(hb.done)),
            ("hits".into(), Value::U64(hb.hits)),
            ("simulated".into(), Value::U64(hb.simulated)),
            ("resumed".into(), Value::U64(hb.resumed)),
            ("quarantined".into(), Value::U64(hb.quarantined)),
            ("lane_high_water".into(), Value::U64(hb.lane_high_water)),
        ]);
        if hb.store_retries > 0 || hb.store_degraded > 0 || hb.store_sync_failures > 0 {
            md.push_str(&format!(
                "store health: {} retried write(s), {} degradation(s), {} sync failure(s).\n",
                hb.store_retries, hb.store_degraded, hb.store_sync_failures
            ));
            entries.extend([
                ("store_retries".into(), Value::U64(hb.store_retries)),
                ("store_degraded".into(), Value::U64(hb.store_degraded)),
                (
                    "store_sync_failures".into(),
                    Value::U64(hb.store_sync_failures),
                ),
            ]);
        }
        if hb.batch_ticks > 0 {
            md.push_str(&format!(
                "batch grouping `{}`: {} of {} instants multi-lane \
                 ({:.1}% lane synchrony).\n",
                hb.batch_grouping,
                hb.multi_lane_ticks,
                hb.batch_ticks,
                hb.multi_lane_fraction() * 100.0
            ));
            entries.extend([
                (
                    "batch_grouping".into(),
                    Value::Str(hb.batch_grouping.clone()),
                ),
                ("batch_ticks".into(), Value::U64(hb.batch_ticks)),
                ("multi_lane_ticks".into(), Value::U64(hb.multi_lane_ticks)),
                (
                    "multi_lane_fraction".into(),
                    Value::F64(hb.multi_lane_fraction()),
                ),
            ]);
        }
    }
    if let Some(f) = finished {
        md.push_str(&format!("finished in {:.2} s.\n", f.wall_s));
        entries.push(("wall_s".into(), Value::F64(f.wall_s)));
    } else {
        md.push_str("stream has no Finished line (campaign killed or still running).\n");
    }
    json.push(("progress".into(), Value::Map(entries)));
    Ok(())
}

/// Folds a Chrome-trace export into the report: wall-clock per span
/// category and the slowest simulated cells.
fn report_trace(
    path: &std::path::Path,
    md: &mut String,
    json: &mut Vec<(String, Value)>,
) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value: Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    let events = value
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{} is not a Chrome trace (no traceEvents)", path.display()))?;
    let mut cats: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut cells: Vec<(String, u64)> = Vec::new();
    for ev in events {
        let cat = ev.get("cat").and_then(Value::as_str).unwrap_or("?");
        let dur = ev.get("dur").and_then(Value::as_u64).unwrap_or(0);
        let slot = cats.entry(cat.to_owned()).or_default();
        slot.0 += 1;
        slot.1 += dur;
        if ev.get("name").and_then(Value::as_str) == Some("cell") {
            let label = ev
                .get("args")
                .and_then(|a| a.get("key"))
                .and_then(Value::as_str)
                .unwrap_or("cell");
            cells.push((label.to_owned(), dur));
        }
    }
    cells.sort_by_key(|cell| std::cmp::Reverse(cell.1));
    cells.truncate(5);
    md.push_str(&format!("\n## Trace\n\n{} spans.\n\n", events.len()));
    let mut table = Table::new(vec!["category", "spans", "total ms"]);
    for (cat, (n, us)) in &cats {
        table.row(vec![
            cat.clone(),
            n.to_string(),
            format!("{:.3}", *us as f64 / 1000.0),
        ]);
    }
    md.push_str(&table.render());
    if !cells.is_empty() {
        md.push_str("\nSlowest cells:\n\n");
        let mut t = Table::new(vec!["ms", "key"]);
        for (key, us) in &cells {
            t.row(vec![format!("{:.3}", *us as f64 / 1000.0), key.clone()]);
        }
        md.push_str(&t.render());
    }
    json.push((
        "trace".into(),
        Value::Map(vec![
            ("spans".into(), Value::U64(events.len() as u64)),
            (
                "categories".into(),
                Value::Seq(
                    cats.iter()
                        .map(|(cat, (n, us))| {
                            Value::Map(vec![
                                ("category".into(), Value::Str(cat.clone())),
                                ("spans".into(), Value::U64(*n)),
                                ("total_us".into(), Value::U64(*us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "slowest_cells".into(),
                Value::Seq(
                    cells
                        .iter()
                        .map(|(key, us)| {
                            Value::Map(vec![
                                ("key".into(), Value::Str(key.clone())),
                                ("dur_us".into(), Value::U64(*us)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    ));
    Ok(())
}

/// `exp report`: folds a result store or manifest, a progress stream,
/// and a span trace into one campaign report (markdown, or `--json`).
fn campaign_report(args: &ReportArgs) -> Result<(), String> {
    let mut md = String::from("# Campaign report\n");
    let mut json: Vec<(String, Value)> = Vec::new();
    let decided = match (&args.store, &args.manifest) {
        (Some(dir), _) => Some(open_pack_store(dir, Durability::default())?.decided_entries()),
        (None, Some(path)) => Some(
            SweepManifest::open(path)
                .map_err(|e| format!("cannot open manifest {}: {e}", path.display()))?
                .decided_entries(),
        ),
        (None, None) => None,
    };
    if let Some(entries) = &decided {
        report_cells(entries, &mut md, &mut json);
    }
    if let Some(path) = &args.progress {
        report_progress(path, &mut md, &mut json)?;
    }
    if let Some(path) = &args.trace {
        report_trace(path, &mut md, &mut json)?;
    }
    let text = if args.json {
        let mut s = serde_json::to_string_pretty(&Value::Map(json))
            .map_err(|e| format!("serialize report: {e}"))?;
        s.push('\n');
        s
    } else {
        md
    };
    match &args.out {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn fault_sweep(args: &FaultSweepArgs) -> Result<(), String> {
    // `--store` plays both roles: trial cache and decided-cell manifest
    // (one read path). An explicit `--manifest` still takes the
    // manifest role so a JSONL checkpoint can ride alongside the pack.
    let pack = args
        .store
        .as_ref()
        .map(|d| open_pack_store(d, args.durability))
        .transpose()?;
    let cache: Option<Box<dyn TrialStore>> = if pack.is_some() {
        None
    } else {
        open_trial_store(&None, &args.cache, args.durability)?
    };
    let manifest = match &args.manifest {
        Some(path) => Some(
            SweepManifest::open_with(
                path,
                RealIo::shared(),
                RetryPolicy::default(),
                args.durability,
            )
            .map_err(|e| format!("cannot open manifest {}: {e}", path.display()))?,
        ),
        None => None,
    };
    let manifest_ref: Option<&dyn DecidedStore> = manifest
        .as_ref()
        .map(|m| m as &dyn DecidedStore)
        .or_else(|| pack.as_ref().map(|p| p as &dyn DecidedStore));
    // When the pack *is* the manifest, its decided records already
    // answer everything a trial-store probe could, and wiring it into
    // both roles would append every decided cell twice (`store` plus
    // `record_done`). The pack acts as a plain trial cache only while
    // an explicit JSONL manifest holds the manifest role.
    let store_ref: Option<&dyn TrialStore> = if manifest.is_some() {
        pack.as_ref().map(|p| p as &dyn TrialStore)
    } else {
        None
    }
    .or(cache.as_deref());
    // Accounting still reports the pack even when it only serves
    // through the manifest role.
    let stats_ref: Option<&dyn TrialStore> = pack
        .as_ref()
        .map(|p| p as &dyn TrialStore)
        .or(cache.as_deref());
    let config = RobustnessConfig {
        utilization: args.utilization,
        capacity: args.capacity,
        horizon_units: args.horizon_units,
        intensities: args.intensities.clone(),
        policies: vec![PolicyKind::Edf, PolicyKind::Lsa, PolicyKind::EaDvfs],
        predictors: vec![PredictorKind::Oracle],
        trials: args.trials,
        threads: args.threads,
        batch: args.batch,
        ..RobustnessConfig::default()
    };
    let matches = |list: &[InjectSpec], cell: &harvest_exp::figures::Cell| {
        list.iter()
            .any(|&(p, s, i)| p == cell.policy && s == cell.seed && i == cell.intensity)
    };
    let telemetry = build_telemetry(&args.trace, &args.progress, &args.flight)?;
    let report = robustness_campaign_instrumented(
        &config,
        store_ref,
        manifest_ref,
        |cell| {
            if matches(&args.inject_panic, cell) {
                Sabotage::Panic
            } else if matches(&args.inject_starve, cell) {
                Sabotage::Starve
            } else {
                Sabotage::None
            }
        },
        &telemetry,
    );
    let cells = config.intensities.len() * config.policies.len() * config.trials;
    println!(
        "fault-sweep util={} capacity={} trials={} batch={} cells={cells} simulated={} cached={} \
         resumed={} quarantined={} pool_runs={} batched_runs={} event_slab_high_water={} \
         ready_high_water={} batch_lane_high_water={} figure_fnv64={:016x}",
        args.utilization,
        args.capacity,
        args.trials,
        args.batch,
        report.exec.simulated,
        report.exec.cached,
        report.resumed,
        report.quarantined.len(),
        report.exec.pool.runs,
        report.exec.pool.batched_runs,
        report.exec.pool.event_slab_high_water,
        report.exec.pool.ready_high_water,
        report.exec.pool.batch_lane_high_water,
        report.figure.digest(),
    );
    for q in &report.quarantined {
        println!(
            "quarantine key={} policy={} seed={} intensity={} panicked={} worker={} message={}",
            q.key,
            q.policy.name(),
            q.seed,
            q.intensity,
            q.failure.panicked,
            q.failure.worker,
            q.failure.message,
        );
        // The post-mortem pointer goes to stderr: CI tees stdout and
        // greps exact quarantine lines, and the dump path is transient
        // diagnostics, not part of the campaign's stable accounting.
        if let Some(flight) = &q.failure.flight {
            eprintln!(
                "flight key={} worker={} panicked={} dump={flight}",
                q.key, q.failure.worker, q.failure.panicked
            );
        }
    }
    // Pooled queues reset their run counters between trials (bit-exact
    // replay requires it); what survives per worker is the retained
    // slab footprint.
    for (i, qs) in report.queues.iter().enumerate() {
        println!("queue worker={i} slab_capacity={}", qs.slab_capacity);
    }
    if let Some(s) = stats_ref {
        print_store_line(s);
    }
    // Merge recovery accounting across both store roles: the pack (or
    // cache) on the trial path and the JSONL manifest on the decided
    // path share one `store.*` metric namespace.
    let mut health = IoHealth::default();
    if let Some(s) = stats_ref {
        health = health.merge(s.io_health());
    }
    if let Some(m) = &manifest {
        health = health.merge(m.io_health());
    }
    print_metrics(&report.exec, stats_ref, &health);
    finish_telemetry(&telemetry, &args.trace)?;
    if args.expect_resumed && report.exec.simulated != 0 {
        return Err(format!(
            "expected a resumed campaign but {} of {cells} cells were simulated",
            report.exec.simulated
        ));
    }
    Ok(())
}

fn parse_sweep<I, S>(args: I) -> Result<SweepArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = SweepArgs::default();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let flag = flag.as_ref().to_owned();
        let mut value = || {
            it.next()
                .map(|v| v.as_ref().to_owned())
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match flag.as_str() {
            "--util" => {
                out.utilization = value()?
                    .parse()
                    .map_err(|_| "--util expects a number".to_owned())?;
                if !(out.utilization > 0.0 && out.utilization.is_finite()) {
                    return Err("--util must be positive".into());
                }
            }
            "--trials" => {
                out.trials = value()?
                    .parse()
                    .map_err(|_| "--trials expects a positive integer".to_owned())?;
                if out.trials == 0 {
                    return Err("--trials must be positive".into());
                }
            }
            "--threads" => {
                out.threads = value()?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_owned())?;
                if out.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--batch" => {
                out.batch = value()?
                    .parse()
                    .map_err(|_| "--batch expects a positive integer".to_owned())?;
                if out.batch == 0 {
                    return Err("--batch must be positive".into());
                }
            }
            "--batch-group" => out.batch_group = value()?.parse()?,
            "--store" => out.store = Some(PathBuf::from(value()?)),
            "--durability" => {
                out.durability = Durability::parse(&value()?)
                    .ok_or_else(|| "--durability expects none, batch, or record".to_owned())?;
            }
            "--cache" => out.cache = Some(PathBuf::from(value()?)),
            "--trace" => out.trace = Some(PathBuf::from(value()?)),
            "--progress" => out.progress = Some(PathBuf::from(value()?)),
            "--expect-warm" => out.expect_warm = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if out.store.is_some() && out.cache.is_some() {
        return Err("--store and --cache are mutually exclusive".into());
    }
    Ok(out)
}

fn parse_report<I, S>(args: I) -> Result<ReportArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = ReportArgs::default();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let flag = flag.as_ref().to_owned();
        let mut value = || {
            it.next()
                .map(|v| v.as_ref().to_owned())
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match flag.as_str() {
            "--store" => out.store = Some(PathBuf::from(value()?)),
            "--manifest" => out.manifest = Some(PathBuf::from(value()?)),
            "--progress" => out.progress = Some(PathBuf::from(value()?)),
            "--trace" => out.trace = Some(PathBuf::from(value()?)),
            "--json" => out.json = true,
            "--out" => out.out = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if out.store.is_some() && out.manifest.is_some() {
        return Err("--store and --manifest are mutually exclusive".into());
    }
    if out.store.is_none()
        && out.manifest.is_none()
        && out.progress.is_none()
        && out.trace.is_none()
    {
        return Err(
            "report needs at least one input (--store, --manifest, --progress, or --trace)".into(),
        );
    }
    Ok(out)
}

fn sweep(args: &SweepArgs) -> Result<(), String> {
    let store = open_trial_store(&args.store, &args.cache, args.durability)?;
    let store_ref = store.as_deref();
    let telemetry = build_telemetry(&args.trace, &args.progress, &None)?;
    let (figure, stats) = miss_rate_figure_grouped(
        store_ref,
        args.utilization,
        &[PolicyKind::Lsa, PolicyKind::EaDvfs],
        args.trials,
        args.threads,
        args.batch,
        args.batch_group,
        &telemetry,
    );
    let json = serde_json::to_string(&figure).map_err(|e| format!("serialize figure: {e}"))?;
    println!(
        "sweep util={} trials={} batch={} batch_group={} cells={} simulated={} cached={} \
         pool_runs={} batched_runs={} policy_batched_runs={} event_slab_high_water={} \
         ready_high_water={} batch_lane_high_water={} batch_policy_lane_high_water={} \
         multi_lane_fraction={:.3} figure_fnv64={:016x}",
        args.utilization,
        args.trials,
        args.batch,
        args.batch_group.label(),
        stats.simulated + stats.cached,
        stats.simulated,
        stats.cached,
        stats.pool.runs,
        stats.pool.batched_runs,
        stats.pool.policy_batched_runs,
        stats.pool.event_slab_high_water,
        stats.pool.ready_high_water,
        stats.pool.batch_lane_high_water,
        stats.pool.batch_policy_lane_high_water,
        stats.pool.multi_lane_fraction(),
        fnv1a64(json.as_bytes()),
    );
    if let Some(s) = store_ref {
        print_store_line(s);
    }
    let health = store_ref.map(|s| s.io_health()).unwrap_or_default();
    print_metrics(&stats, store_ref, &health);
    finish_telemetry(&telemetry, &args.trace)?;
    if args.expect_warm && stats.simulated != 0 {
        return Err(format!(
            "expected a warm cache but {} of {} cells were simulated",
            stats.simulated,
            stats.simulated + stats.cached
        ));
    }
    Ok(())
}

fn record(args: &RecordArgs) -> Result<RunArtifact, String> {
    let mut scenario = PaperScenario::new(args.utilization, args.capacity);
    scenario.horizon_units = args.horizon_units;
    scenario = scenario.with_sampling(args.sample_units);
    let prefab = scenario.prefab(args.seed);
    let result = scenario.run_prefab_observed(args.policy, &prefab);
    Ok(RunArtifact::from_result(&result))
}

fn load(path: &PathBuf) -> Result<RunArtifact, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    RunArtifact::from_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn run(cmd: Command) -> Result<(), ExpError> {
    let result = match cmd {
        Command::Record(args) => record(&args).and_then(|artifact| match &args.out {
            Some(path) => {
                let file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
                let lines = artifact
                    .write_jsonl(std::io::BufWriter::new(file))
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                eprintln!("wrote {} ({lines} lines)", path.display());
                Ok(())
            }
            None => {
                print!("{}", artifact.to_jsonl());
                Ok(())
            }
        }),
        Command::Inspect(path) => load(&path).map(|artifact| print!("{}", artifact.render())),
        Command::Diff { run, baseline } => load(&run).and_then(|run| {
            let base = load(&baseline)?;
            let diff = run.render_diff(&base)?;
            print!("{diff}");
            Ok(())
        }),
        Command::Sweep(args) => sweep(&args),
        Command::FaultSweep(args) => fault_sweep(&args),
        Command::Report(args) => campaign_report(&args),
        Command::StoreStat { dir, json } => store_stat(&dir, json),
        Command::StoreCompact(dir) => store_compact(&dir),
        Command::StoreScrub { dir, json } => store_scrub(&dir, json),
    };
    // Everything past parsing is the machine's fault, not the user's.
    result.map_err(ExpError::Runtime)
}

fn main() {
    let code = match parse_command(std::env::args().skip(1))
        .map_err(ExpError::Usage)
        .and_then(run)
    {
        Ok(()) => 0,
        Err(ExpError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            2
        }
        Err(ExpError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            1
        }
    };
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_flags_parse() {
        let args = parse_record([
            "--policy",
            "lsa",
            "--util",
            "0.8",
            "--capacity",
            "200",
            "--seed",
            "9",
            "--horizon",
            "1000",
            "--sample",
            "50",
            "--out",
            "/tmp/run.jsonl",
        ])
        .unwrap();
        assert_eq!(args.policy, PolicyKind::Lsa);
        assert_eq!(args.utilization, 0.8);
        assert_eq!(args.capacity, 200.0);
        assert_eq!(args.seed, 9);
        assert_eq!(args.horizon_units, 1000);
        assert_eq!(args.sample_units, 50);
        assert_eq!(args.out, Some(PathBuf::from("/tmp/run.jsonl")));
    }

    #[test]
    fn sweep_flags_parse() {
        let args = parse_sweep([
            "--util",
            "0.8",
            "--trials",
            "3",
            "--threads",
            "2",
            "--batch",
            "8",
            "--batch-group",
            "policy",
            "--cache",
            "/tmp/sweep-cache",
            "--expect-warm",
        ])
        .unwrap();
        assert_eq!(args.utilization, 0.8);
        assert_eq!(args.trials, 3);
        assert_eq!(args.threads, 2);
        assert_eq!(args.batch, 8);
        assert_eq!(args.batch_group, GroupingMode::Policy);
        assert_eq!(args.cache, Some(PathBuf::from("/tmp/sweep-cache")));
        assert!(args.expect_warm);
        assert_eq!(args.trace, None);
        assert_eq!(args.progress, None);

        let traced = parse_sweep(["--trace", "/tmp/t.json", "--progress", "/tmp/p.jsonl"]).unwrap();
        assert_eq!(traced.trace, Some(PathBuf::from("/tmp/t.json")));
        assert_eq!(traced.progress, Some(PathBuf::from("/tmp/p.jsonl")));
        let defaults = parse_sweep(Vec::<String>::new()).unwrap();
        assert_eq!(defaults.batch, 1);
        assert_eq!(defaults.batch_group, GroupingMode::Seed);
        assert_eq!(
            parse_sweep(["--batch-group", "auto"]).unwrap().batch_group,
            GroupingMode::Auto
        );
        assert!(parse_sweep(["--trials", "0"]).is_err());
        assert!(parse_sweep(["--batch", "0"]).is_err());
        assert!(parse_sweep(["--batch-group", "bogus"]).is_err());
        assert!(parse_sweep(["--bogus"]).is_err());

        let stored = parse_sweep(["--store", "/tmp/sweep-store"]).unwrap();
        assert_eq!(stored.store, Some(PathBuf::from("/tmp/sweep-store")));
        assert_eq!(stored.cache, None);
        assert_eq!(stored.durability, Durability::Batch);
        assert!(parse_sweep(["--store", "/tmp/a", "--cache", "/tmp/b"])
            .unwrap_err()
            .contains("mutually exclusive"));

        for (name, level) in [
            ("none", Durability::None),
            ("batch", Durability::Batch),
            ("record", Durability::Record),
        ] {
            let parsed = parse_sweep(["--durability", name]).unwrap();
            assert_eq!(parsed.durability, level);
        }
        assert!(parse_sweep(["--durability", "paranoid"])
            .unwrap_err()
            .contains("none, batch, or record"));
    }

    #[test]
    fn fault_sweep_flags_parse() {
        let args = parse_fault_sweep([
            "--util",
            "0.8",
            "--capacity",
            "200",
            "--trials",
            "3",
            "--threads",
            "2",
            "--batch",
            "4",
            "--horizon",
            "1500",
            "--intensities",
            "0.0, 0.5, 1.0",
            "--manifest",
            "/tmp/m.jsonl",
            "--cache",
            "/tmp/c",
            "--inject-panic",
            "lsa:0:0.5",
            "--inject-starve",
            "ea-dvfs:1:1.0",
            "--expect-resumed",
        ])
        .unwrap();
        assert_eq!(args.utilization, 0.8);
        assert_eq!(args.capacity, 200.0);
        assert_eq!(args.trials, 3);
        assert_eq!(args.batch, 4);
        assert_eq!(args.horizon_units, 1500);
        assert_eq!(args.intensities, vec![0.0, 0.5, 1.0]);
        assert_eq!(args.manifest, Some(PathBuf::from("/tmp/m.jsonl")));
        assert_eq!(args.inject_panic, vec![(PolicyKind::Lsa, 0, 0.5)]);
        assert_eq!(args.inject_starve, vec![(PolicyKind::EaDvfs, 1, 1.0)]);
        assert!(args.expect_resumed);
        assert!(parse_fault_sweep(["--batch", "0"]).is_err());
        assert!(parse_fault_sweep(["--intensities", "2.0"]).is_err());
        assert!(parse_fault_sweep(["--inject-panic", "lsa:0"]).is_err());
        assert!(parse_fault_sweep(["--inject-panic", "sjf:0:0.5"]).is_err());

        let stored = parse_fault_sweep(["--store", "/tmp/campaign"]).unwrap();
        assert_eq!(stored.store, Some(PathBuf::from("/tmp/campaign")));
        assert_eq!(stored.durability, Durability::Batch);
        let durable =
            parse_fault_sweep(["--store", "/tmp/campaign", "--durability", "record"]).unwrap();
        assert_eq!(durable.durability, Durability::Record);
        assert!(parse_fault_sweep(["--durability", "fsync-everything"]).is_err());
        assert!(
            parse_fault_sweep(["--store", "/tmp/a", "--cache", "/tmp/b"])
                .unwrap_err()
                .contains("mutually exclusive")
        );

        let observed = parse_fault_sweep([
            "--trace",
            "/tmp/t.json",
            "--progress",
            "/tmp/p.jsonl",
            "--flight",
            "/tmp/flight",
        ])
        .unwrap();
        assert_eq!(observed.trace, Some(PathBuf::from("/tmp/t.json")));
        assert_eq!(observed.progress, Some(PathBuf::from("/tmp/p.jsonl")));
        assert_eq!(observed.flight, Some(PathBuf::from("/tmp/flight")));
    }

    #[test]
    fn report_flags_parse() {
        let args = parse_report([
            "--store",
            "/tmp/s",
            "--progress",
            "/tmp/p.jsonl",
            "--trace",
            "/tmp/t.json",
            "--json",
            "--out",
            "/tmp/report.json",
        ])
        .unwrap();
        assert_eq!(args.store, Some(PathBuf::from("/tmp/s")));
        assert_eq!(args.progress, Some(PathBuf::from("/tmp/p.jsonl")));
        assert_eq!(args.trace, Some(PathBuf::from("/tmp/t.json")));
        assert!(args.json);
        assert_eq!(args.out, Some(PathBuf::from("/tmp/report.json")));

        let from_manifest = parse_report(["--manifest", "/tmp/m.jsonl"]).unwrap();
        assert_eq!(from_manifest.manifest, Some(PathBuf::from("/tmp/m.jsonl")));
        assert!(!from_manifest.json);

        // No input at all is a usage error; so are both cell sources.
        assert!(parse_report(Vec::<String>::new())
            .unwrap_err()
            .contains("at least one input"));
        assert!(parse_report(["--json"])
            .unwrap_err()
            .contains("at least one input"));
        assert!(parse_report(["--store", "/tmp/a", "--manifest", "/tmp/b"])
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(parse_report(["--bogus"]).is_err());
    }

    #[test]
    fn key_policy_extracts_second_to_last_segment() {
        assert_eq!(key_policy("v1|{\"u\":0.4}|lsa|7"), "lsa");
        assert_eq!(key_policy("v1|{\"u\":0.4}|ea-dvfs|0"), "ea-dvfs");
        assert_eq!(key_policy("no-pipes"), "?");
    }

    #[test]
    fn store_subcommand_parses() {
        match parse_command(["store", "stat", "/tmp/s"]).unwrap() {
            Command::StoreStat { dir, json } => {
                assert_eq!(dir, PathBuf::from("/tmp/s"));
                assert!(!json);
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse_command(["store", "stat", "/tmp/s", "--json"]).unwrap() {
            Command::StoreStat { dir, json } => {
                assert_eq!(dir, PathBuf::from("/tmp/s"));
                assert!(json);
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse_command(["store", "compact", "/tmp/s"]).unwrap() {
            Command::StoreCompact(dir) => assert_eq!(dir, PathBuf::from("/tmp/s")),
            other => panic!("wrong command: {other:?}"),
        }
        match parse_command(["store", "scrub", "/tmp/s", "--json"]).unwrap() {
            Command::StoreScrub { dir, json } => {
                assert_eq!(dir, PathBuf::from("/tmp/s"));
                assert!(json);
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse_command(["store", "scrub", "/tmp/s"]).unwrap() {
            Command::StoreScrub { dir, json } => {
                assert_eq!(dir, PathBuf::from("/tmp/s"));
                assert!(!json);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse_command(["store"]).is_err());
        assert!(parse_command(["store", "scrub"]).is_err());
        assert!(parse_command(["store", "stat"]).is_err());
        assert!(parse_command(["store", "prune", "/tmp/s"]).is_err());
        assert!(parse_command(["store", "stat", "/tmp/s", "extra"]).is_err());
        assert!(parse_command(["store", "compact", "/tmp/s", "--json"]).is_err());
    }

    #[test]
    fn bad_invocations_rejected() {
        assert!(parse_command(Vec::<String>::new()).is_err());
        assert!(parse_command(["bogus"]).is_err());
        assert!(parse_command(["inspect"]).is_err());
        assert!(parse_command(["diff", "one.jsonl"]).is_err());
        assert!(parse_record(["--policy", "sjf"]).is_err());
        assert!(parse_record(["--util", "-1"]).is_err());
        assert!(parse_record(["--horizon", "0"]).is_err());
    }

    #[test]
    fn record_produces_inspectable_artifact() {
        let args = RecordArgs {
            horizon_units: 1_000,
            sample_units: 50,
            ..RecordArgs::default()
        };
        let artifact = record(&args).unwrap();
        assert!(artifact.metrics.is_some());
        assert!(artifact.profile.is_some());
        let text = artifact.render();
        assert!(text.contains("metrics"));
        let back = RunArtifact::from_jsonl(&artifact.to_jsonl()).unwrap();
        assert_eq!(back, artifact);
    }
}
