//! Figure 8 — deadline miss rate vs. normalized storage capacity at
//! U = 0.4: EA-DVFS cuts the miss rate by ≥50% on average vs. LSA.

use harvest_exp::cli::CliArgs;
use harvest_exp::figures::miss_rate_figure;
use harvest_exp::report::{fmt_num, Table};
use harvest_exp::scenario::PolicyKind;

fn main() {
    let args = CliArgs::parse(30);
    let policies = [PolicyKind::Lsa, PolicyKind::EaDvfs];
    let fig = miss_rate_figure(0.4, &policies, args.trials, args.threads);

    println!(
        "Figure 8: deadline miss rate vs normalized capacity, U = 0.4 ({} task sets/point)",
        fig.trials
    );
    println!();
    let mut table = Table::new(vec!["C/Cmax", "LSA", "EA-DVFS", "reduction"]);
    for row in &fig.rows {
        let (lsa, ea) = (row.miss_rates[0], row.miss_rates[1]);
        let reduction = if lsa > 0.0 {
            format!("{:.0}%", 100.0 * (lsa - ea) / lsa)
        } else {
            "-".into()
        };
        table.row(vec![
            format!("{:.2}", row.normalized_capacity),
            fmt_num(lsa),
            fmt_num(ea),
            reduction,
        ]);
    }
    println!("{}", table.render());
    let mean_lsa = fig.mean_miss_rate(PolicyKind::Lsa).unwrap();
    let mean_ea = fig.mean_miss_rate(PolicyKind::EaDvfs).unwrap();
    println!(
        "mean miss rate: LSA {} vs EA-DVFS {} (reduction {:.0}%)",
        fmt_num(mean_lsa),
        fmt_num(mean_ea),
        100.0 * (mean_lsa - mean_ea) / mean_lsa.max(1e-12),
    );
    println!("paper claim: EA-DVFS reduces the miss rate by over 50% on average at U = 0.4");
    args.maybe_write_csv(&table.to_csv());
    args.maybe_write_json("fig8", &fig);
}
