//! Quick PASS/FAIL validation of every paper claim at reduced scale —
//! a reproduction smoke test that finishes in well under a minute.
//!
//! ```sh
//! cargo run --release -p harvest-exp --bin validate
//! ```
//!
//! Exit code 0 when every claim holds, 1 otherwise.

use harvest_exp::cli::CliArgs;
use harvest_exp::figures::{
    min_zero_miss_capacity, miss_rate_figure, remaining_energy_figure, source_figure,
};
use harvest_exp::scenario::PolicyKind;

struct Check {
    name: &'static str,
    passed: bool,
    detail: String,
}

fn main() {
    let args = CliArgs::parse(5);
    let (trials, threads) = (args.trials, args.threads);
    let policies = [PolicyKind::Lsa, PolicyKind::EaDvfs];
    let mut checks: Vec<Check> = Vec::new();

    // Fig. 5: source statistics.
    let src = source_figure(args.seed, 10_000);
    checks.push(Check {
        name: "fig5: eq.13 source mean ~2, non-negative",
        passed: (src.mean - 2.0).abs() < 0.4 && src.power.iter().all(|&p| p >= 0.0),
        detail: format!("mean {:.3}, peak {:.1}", src.mean, src.max),
    });

    // Figs. 6/7: remaining-energy ordering and gap collapse.
    let fig6 = remaining_energy_figure(0.4, &policies, trials, threads, 200);
    let fig7 = remaining_energy_figure(0.8, &policies, trials, threads, 200);
    let gap6 = fig6.per_capacity[0][1] - fig6.per_capacity[0][0]; // EA − LSA at C=200
    let gap7 = fig7.per_capacity[0][1] - fig7.per_capacity[0][0];
    checks.push(Check {
        name: "fig6: EA-DVFS stores more at U=0.4 (C=200)",
        passed: gap6 > 0.0,
        detail: format!("gap {gap6:+.3}"),
    });
    checks.push(Check {
        name: "fig7: gap collapses at U=0.8",
        passed: gap7.abs() < gap6.abs() || gap7.abs() < 0.02,
        detail: format!("gap {gap7:+.3} vs {gap6:+.3}"),
    });

    // Figs. 8/9: miss-rate reduction and its shrinkage.
    let fig8 = miss_rate_figure(0.4, &policies, trials, threads);
    let (l8, e8) = (
        fig8.mean_miss_rate(PolicyKind::Lsa).unwrap(),
        fig8.mean_miss_rate(PolicyKind::EaDvfs).unwrap(),
    );
    let red8 = (l8 - e8) / l8.max(1e-12);
    checks.push(Check {
        name: "fig8: >=35% average miss-rate reduction at U=0.4",
        passed: red8 > 0.35,
        detail: format!("LSA {l8:.3} vs EA {e8:.3} ({:.0}%)", 100.0 * red8),
    });
    let fig9 = miss_rate_figure(0.8, &policies, trials, threads);
    let (l9, e9) = (
        fig9.mean_miss_rate(PolicyKind::Lsa).unwrap(),
        fig9.mean_miss_rate(PolicyKind::EaDvfs).unwrap(),
    );
    let red9 = (l9 - e9) / l9.max(1e-12);
    checks.push(Check {
        name: "fig9: reduction shrinks at U=0.8, EA never worse",
        passed: e9 <= l9 + 0.02 && red9 < red8,
        detail: format!("LSA {l9:.3} vs EA {e9:.3} ({:.0}%)", 100.0 * red9),
    });

    // Table 1: storage ratio shape.
    let r02 = {
        let lsa = min_zero_miss_capacity(PolicyKind::Lsa, 0.2, trials, threads, 1e7, 0.01);
        let ea = min_zero_miss_capacity(PolicyKind::EaDvfs, 0.2, trials, threads, 1e7, 0.01);
        lsa / ea
    };
    let r08 = {
        let lsa = min_zero_miss_capacity(PolicyKind::Lsa, 0.8, trials, threads, 1e7, 0.01);
        let ea = min_zero_miss_capacity(PolicyKind::EaDvfs, 0.8, trials, threads, 1e7, 0.01);
        lsa / ea
    };
    checks.push(Check {
        name: "table1: Cmin ratio large at U=0.2, ~1 at U=0.8",
        passed: r02 > 1.15 && r08 < r02 && r08 < 1.5,
        detail: format!("ratio(0.2) {r02:.2}, ratio(0.8) {r08:.2}"),
    });

    println!("EA-DVFS reproduction validation ({trials} trials/point)");
    println!();
    let mut all_ok = true;
    for c in &checks {
        let mark = if c.passed { "PASS" } else { "FAIL" };
        all_ok &= c.passed;
        println!("[{mark}] {:55} {}", c.name, c.detail);
    }
    println!();
    if all_ok {
        println!("all {} claims hold", checks.len());
    } else {
        println!("some claims FAILED — raise --trials before concluding");
        std::process::exit(1);
    }
}
