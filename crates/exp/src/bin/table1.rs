//! Table 1 — the ratio of minimum storage capacities
//! `C_min,LSA / C_min,EA-DVFS` needed for zero deadline misses, swept
//! over utilization.

use harvest_exp::cli::CliArgs;
use harvest_exp::figures::min_capacity_table;
use harvest_exp::report::{fmt_num, Table};

fn main() {
    let args = CliArgs::parse(10);
    let utils = [0.2, 0.4, 0.6, 0.8];
    let table1 = min_capacity_table(&utils, args.trials, args.threads);

    println!(
        "Table 1: minimum storage capacity for zero miss rate ({} task sets per point)",
        table1.trials
    );
    println!();
    let mut table = Table::new(vec!["U", "Cmin-LSA", "Cmin-EA-DVFS", "ratio"]);
    for row in &table1.rows {
        table.row(vec![
            format!("{:.1}", row.utilization),
            fmt_num(row.cmin_lsa),
            fmt_num(row.cmin_ea_dvfs),
            format!("{:.2}", row.ratio),
        ]);
    }
    println!("{}", table.render());
    println!("paper row:   U = 0.2 / 0.4 / 0.6 / 0.8  ->  2.50 / 1.33 / 1.05 / 1.01");
    println!("expectation: ratio large at low U, approaching 1 as U grows");
    args.maybe_write_csv(&table.to_csv());
    args.maybe_write_json("table1", &table1);
}
