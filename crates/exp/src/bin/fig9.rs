//! Figure 9 — deadline miss rate vs. normalized storage capacity at
//! U = 0.8: EA-DVFS performs about as well as LSA (little slack left).

use harvest_exp::cli::CliArgs;
use harvest_exp::figures::miss_rate_figure;
use harvest_exp::report::{fmt_num, Table};
use harvest_exp::scenario::PolicyKind;

fn main() {
    let args = CliArgs::parse(30);
    let policies = [PolicyKind::Lsa, PolicyKind::EaDvfs];
    let fig = miss_rate_figure(0.8, &policies, args.trials, args.threads);

    println!(
        "Figure 9: deadline miss rate vs normalized capacity, U = 0.8 ({} task sets/point)",
        fig.trials
    );
    println!();
    let mut table = Table::new(vec!["C/Cmax", "LSA", "EA-DVFS"]);
    for row in &fig.rows {
        table.row(vec![
            format!("{:.2}", row.normalized_capacity),
            fmt_num(row.miss_rates[0]),
            fmt_num(row.miss_rates[1]),
        ]);
    }
    println!("{}", table.render());
    println!(
        "mean miss rate: LSA {} vs EA-DVFS {}",
        fmt_num(fig.mean_miss_rate(PolicyKind::Lsa).unwrap()),
        fmt_num(fig.mean_miss_rate(PolicyKind::EaDvfs).unwrap()),
    );
    println!("paper claim: at U = 0.8 EA-DVFS performs about as well as LSA");
    args.maybe_write_csv(&table.to_csv());
    args.maybe_write_json("fig9", &fig);
}
