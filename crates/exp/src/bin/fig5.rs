//! Figure 5 — energy source behaviour: one realization of the paper's
//! eq. 13 solar generator over 10 000 time units.

use harvest_exp::cli::CliArgs;
use harvest_exp::figures::source_figure;
use harvest_exp::report::{ascii_plot, fmt_num, Table};

fn main() {
    let args = CliArgs::parse(1);
    let fig = source_figure(args.seed, 10_000);

    println!(
        "Figure 5: energy source behaviour (eq. 13, seed {})",
        args.seed
    );
    println!();
    // Plot a 200-point decimation so the terminal plot stays readable.
    let stride = fig.power.len() / 200;
    let decimated: Vec<f64> = fig.power.iter().step_by(stride.max(1)).copied().collect();
    println!(
        "{}",
        ascii_plot(&[("PS(t)", &decimated)], "t (x50 units)", 100, 16)
    );
    println!("mean power  : {}", fmt_num(fig.mean));
    println!("peak power  : {}", fmt_num(fig.max));
    println!("paper shape : spiky, cos^2 envelope, peaks near 20, mean ~2");

    let mut csv = Table::new(vec!["t", "ps"]);
    for (t, p) in fig.times.iter().zip(&fig.power) {
        csv.row(vec![fmt_num(*t), fmt_num(*p)]);
    }
    args.maybe_write_csv(&csv.to_csv());
    args.maybe_write_json("fig5", &fig);
}
