//! Runs the entire evaluation — Figures 5–9 and Table 1 — with one
//! command and prints a compact paper-vs-measured summary.

use harvest_exp::cli::CliArgs;
use harvest_exp::figures::{
    min_capacity_table, miss_rate_figure, remaining_energy_figure, source_figure,
};
use harvest_exp::report::{fmt_num, Table};
use harvest_exp::scenario::PolicyKind;

fn main() {
    let args = CliArgs::parse(20);
    let policies = [PolicyKind::Lsa, PolicyKind::EaDvfs];
    println!(
        "EA-DVFS reproduction — full evaluation ({} trials/point, {} threads)",
        args.trials, args.threads
    );
    println!();

    // Fig. 5 — source sanity.
    let src = source_figure(args.seed, 10_000);
    println!(
        "[fig5] source: mean {} (paper ~2), peak {} (paper ~20)",
        fmt_num(src.mean),
        fmt_num(src.max)
    );

    // Figs. 6-7 — remaining energy.
    for (label, u) in [("fig6", 0.4), ("fig7", 0.8)] {
        let fig = remaining_energy_figure(u, &policies, args.trials, args.threads, 100);
        let lsa = fig.mean_level(PolicyKind::Lsa).unwrap();
        let ea = fig.mean_level(PolicyKind::EaDvfs).unwrap();
        println!(
            "[{label}] U={u}: mean normalized remaining energy LSA {} vs EA-DVFS {}",
            fmt_num(lsa),
            fmt_num(ea)
        );
    }

    // Figs. 8-9 — miss rates.
    for (label, u) in [("fig8", 0.4), ("fig9", 0.8)] {
        let fig = miss_rate_figure(u, &policies, args.trials, args.threads);
        let lsa = fig.mean_miss_rate(PolicyKind::Lsa).unwrap();
        let ea = fig.mean_miss_rate(PolicyKind::EaDvfs).unwrap();
        let reduction = 100.0 * (lsa - ea) / lsa.max(1e-12);
        println!(
            "[{label}] U={u}: mean miss rate LSA {} vs EA-DVFS {} (reduction {:.0}%)",
            fmt_num(lsa),
            fmt_num(ea),
            reduction
        );
    }

    // Table 1 — minimum storage ratio.
    let t1 = min_capacity_table(&[0.2, 0.4, 0.6, 0.8], args.trials.min(10), args.threads);
    let mut table = Table::new(vec!["U", "ratio (paper)", "ratio (measured)"]);
    let paper = [2.5, 1.33, 1.05, 1.01];
    for (row, p) in t1.rows.iter().zip(paper) {
        table.row(vec![
            format!("{:.1}", row.utilization),
            format!("{p:.2}"),
            format!("{:.2}", row.ratio),
        ]);
    }
    println!();
    println!("[table1] Cmin-LSA / Cmin-EA-DVFS");
    println!("{}", table.render());
}
