//! Structured run artifacts: a streaming JSONL schema for one
//! closed-loop run, plus rendering and diffing for `exp inspect`.
//!
//! One artifact file is a sequence of self-describing lines, one JSON
//! object per line, in a fixed order:
//!
//! 1. `Meta` — schema version, policy, horizon, headline outcomes;
//! 2. `Metrics` — the frozen [`MetricsSnapshot`], if collected;
//! 3. `Profile` — the wall-clock [`PhaseProfile`], if collected;
//! 4. `Energy` — storage-level samples `(t, EC(t))`, one per line;
//! 5. `Level` — active-DVFS-level change points, one per line;
//! 6. `Trace` — the scheduling trace, one stamped event per line.
//!
//! Streaming JSONL (rather than one JSON document) keeps the exporter
//! O(1) in memory for long traces and lets tooling `grep`/`head`
//! artifacts without a parser. The line enum is externally tagged, so
//! every line is `{"<Kind>": ...}` and unknown kinds fail loudly on
//! read — schema drift is a hard error, not a silent skip.

use harvest_core::result::SimResult;
use harvest_core::trace::TraceEvent;
use harvest_obs::timeline::{LevelPoint, TimePoint, Timeline};
use harvest_obs::{jsonl_to_vec, JsonlWriter, MetricsSnapshot, PhaseProfile};
use harvest_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Version stamp written into every artifact's `Meta` line; readers
/// reject files whose stamp differs.
pub const SCHEMA_VERSION: u32 = 1;

/// Headline facts about the run the artifact describes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMeta {
    /// Artifact schema version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// Scheduling policy name.
    pub scheduler: String,
    /// Simulated horizon in time units.
    pub horizon_units: f64,
    /// Jobs released.
    pub released: u64,
    /// Jobs that missed their deadline.
    pub missed: u64,
    /// Engine events handled.
    pub events: u64,
    /// Domain trace events emitted.
    pub trace_events: u64,
}

/// One stamped scheduling event, flattened to plain fields for JSONL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLine {
    /// Emission instant.
    pub t: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// One line of a run artifact (externally tagged).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunLine {
    /// Run header; always the first line.
    Meta(RunMeta),
    /// Frozen metrics registry.
    Metrics(MetricsSnapshot),
    /// Wall-clock phase profile.
    Profile(PhaseProfile),
    /// One storage-level sample.
    Energy(TimePoint),
    /// One active-DVFS-level change point.
    Level(LevelPoint),
    /// One scheduling trace event.
    Trace(TraceLine),
}

/// Everything `exp inspect` can show about one run, assembled from a
/// [`SimResult`] or parsed back from its JSONL form.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifact {
    /// Run header.
    pub meta: RunMeta,
    /// Metrics snapshot, if the run collected one.
    pub metrics: Option<MetricsSnapshot>,
    /// Phase profile, if the run collected one.
    pub profile: Option<PhaseProfile>,
    /// Energy/level timelines.
    pub timeline: Timeline,
    /// Full scheduling trace, if the run retained one.
    pub trace: Vec<TraceLine>,
}

/// Maps one trace event to the DVFS-level timeline value it implies, if
/// it changes the processor's activity at all.
fn level_of(event: &TraceEvent) -> Option<i64> {
    match event {
        TraceEvent::Started { level, .. } => Some(*level as i64),
        TraceEvent::Idled { .. } | TraceEvent::Completed { .. } => Some(LevelPoint::IDLE),
        TraceEvent::Stalled { .. } => Some(LevelPoint::STALLED),
        TraceEvent::Released { .. }
        | TraceEvent::Missed { .. }
        | TraceEvent::HarvestFault { .. }
        | TraceEvent::LevelLockout { .. } => None,
    }
}

impl RunArtifact {
    /// Assembles the artifact from a finished run. The energy series
    /// comes from the run's storage samples and the level series is
    /// derived from the trace (`Started` → its level, `Idled`/
    /// `Completed` → idle, `Stalled` → stalled), so observability never
    /// adds state to the simulation itself.
    pub fn from_result(r: &SimResult) -> Self {
        let mut timeline = Timeline::default();
        for &(t, level) in &r.samples {
            timeline.energy.push(TimePoint {
                t: t.as_units(),
                value: level,
            });
        }
        let mut last = None;
        for (t, ev) in &r.trace {
            if let Some(level) = level_of(ev) {
                if last != Some(level) {
                    timeline.level.push(LevelPoint {
                        t_ticks: t.as_ticks(),
                        level,
                    });
                    last = Some(level);
                }
            }
        }
        RunArtifact {
            meta: RunMeta {
                schema: SCHEMA_VERSION,
                scheduler: r.scheduler.clone(),
                horizon_units: r.horizon.as_units(),
                released: r.released() as u64,
                missed: r.missed() as u64,
                events: r.events,
                trace_events: r.trace_events,
            },
            metrics: r.metrics.clone(),
            profile: r.profile.clone(),
            timeline,
            trace: r
                .trace
                .iter()
                .map(|&(t, event)| TraceLine { t, event })
                .collect(),
        }
    }

    /// Streams the artifact into `out` as JSONL.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors from the writer.
    pub fn write_jsonl<W: std::io::Write>(&self, out: W) -> std::io::Result<u64> {
        let mut w = JsonlWriter::new(out);
        w.write(&RunLine::Meta(self.meta.clone()))?;
        if let Some(m) = &self.metrics {
            w.write(&RunLine::Metrics(m.clone()))?;
        }
        if let Some(p) = &self.profile {
            w.write(&RunLine::Profile(p.clone()))?;
        }
        for &p in &self.timeline.energy {
            w.write(&RunLine::Energy(p))?;
        }
        for &p in &self.timeline.level {
            w.write(&RunLine::Level(p))?;
        }
        for line in &self.trace {
            w.write(&RunLine::Trace(line.clone()))?;
        }
        let lines = w.lines();
        w.finish()?;
        Ok(lines)
    }

    /// The artifact as one JSONL string.
    pub fn to_jsonl(&self) -> String {
        let mut buf = Vec::new();
        self.write_jsonl(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("JSON is UTF-8")
    }

    /// Parses an artifact back from its JSONL form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for malformed JSON,
    /// unknown line kinds, a missing/misplaced `Meta` header, or a
    /// schema-version mismatch.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let lines: Vec<RunLine> = jsonl_to_vec(text)?;
        let mut it = lines.into_iter();
        let meta = match it.next() {
            Some(RunLine::Meta(meta)) => meta,
            Some(other) => return Err(format!("first line must be Meta, got {other:?}")),
            None => return Err("empty artifact".into()),
        };
        if meta.schema != SCHEMA_VERSION {
            return Err(format!(
                "schema version {} unsupported (expected {SCHEMA_VERSION})",
                meta.schema
            ));
        }
        let mut artifact = RunArtifact {
            meta,
            metrics: None,
            profile: None,
            timeline: Timeline::default(),
            trace: Vec::new(),
        };
        for line in it {
            match line {
                RunLine::Meta(_) => return Err("duplicate Meta line".into()),
                RunLine::Metrics(m) => artifact.metrics = Some(m),
                RunLine::Profile(p) => artifact.profile = Some(p),
                RunLine::Energy(p) => artifact.timeline.energy.push(p),
                RunLine::Level(p) => artifact.timeline.level.push(p),
                RunLine::Trace(t) => artifact.trace.push(t),
            }
        }
        Ok(artifact)
    }

    /// Renders the full inspection report: header, metrics table, phase
    /// profile, and timelines as ASCII plots.
    pub fn render(&self) -> String {
        use crate::report::{ascii_plot, fmt_num, Table};
        use std::fmt::Write as _;

        let mut out = String::new();
        let m = &self.meta;
        let _ = writeln!(
            out,
            "run: {} | horizon {} | released {} | missed {} | engine events {} | trace events {}",
            m.scheduler,
            fmt_num(m.horizon_units),
            m.released,
            m.missed,
            m.events,
            m.trace_events
        );

        if let Some(snap) = &self.metrics {
            let mut t = Table::new(vec!["metric", "value", "detail"]);
            for e in &snap.entries {
                let (value, detail) = match &e.value {
                    harvest_obs::MetricValue::Counter(c) => (c.to_string(), String::new()),
                    harvest_obs::MetricValue::Gauge(g) => (fmt_num(*g), "gauge".into()),
                    harvest_obs::MetricValue::Histogram(h) => (
                        h.count.to_string(),
                        format!(
                            "mean {} p50 {} max {}",
                            fmt_num(h.mean()),
                            fmt_num(h.quantile(0.5)),
                            fmt_num(h.max)
                        ),
                    ),
                };
                t.row(vec![e.name.clone(), value, detail]);
            }
            let _ = write!(out, "\nmetrics\n{}", t.render());
        } else {
            out.push_str("\nmetrics: not collected (run with --metrics)\n");
        }

        if let Some(profile) = &self.profile {
            let total = profile.total_ns().max(1);
            let mut t = Table::new(vec!["phase", "calls", "total_ms", "mean_us", "max_us", "%"]);
            for p in &profile.phases {
                t.row(vec![
                    p.name.clone(),
                    p.calls.to_string(),
                    format!("{:.3}", p.total_ns as f64 / 1e6),
                    format!("{:.2}", p.mean_ns() / 1e3),
                    format!("{:.2}", p.max_ns as f64 / 1e3),
                    format!("{:.1}", 100.0 * p.total_ns as f64 / total as f64),
                ]);
            }
            let _ = write!(out, "\nphase profile\n{}", t.render());
        } else {
            out.push_str("\nphase profile: not collected (run with --profile)\n");
        }

        const PLOT_WIDTH: usize = 72;
        if !self.timeline.energy.is_empty() {
            let series = self.timeline.energy_series(PLOT_WIDTH);
            let _ = write!(
                out,
                "\nstorage level over time\n{}",
                ascii_plot(&[("EC(t)", &series[..])], "t", PLOT_WIDTH, 10)
            );
        }
        if !self.timeline.level.is_empty() {
            let series = self.timeline.level_series(PLOT_WIDTH);
            let _ = write!(
                out,
                "\nactive DVFS level over time (-1 idle, -2 stalled)\n{}",
                ascii_plot(&[("level", &series[..])], "t", PLOT_WIDTH, 8)
            );
        }
        out
    }

    /// Renders a metric-by-metric diff of two runs' snapshots.
    ///
    /// # Errors
    ///
    /// Returns a message if either artifact carries no metrics snapshot.
    pub fn render_diff(&self, baseline: &RunArtifact) -> Result<String, String> {
        use crate::report::{fmt_num, Table};
        let (a, b) = match (&self.metrics, &baseline.metrics) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err("both artifacts need a Metrics line to diff".into()),
        };
        let mut t = Table::new(vec!["metric", "baseline", "this run", "delta"]);
        for row in a.diff(b) {
            t.row(vec![
                row.name.clone(),
                row.before.map_or("-".into(), fmt_num),
                row.after.map_or("-".into(), fmt_num),
                fmt_num(row.delta()),
            ]);
        }
        Ok(format!(
            "diff: {} (baseline) -> {} (this run)\n{}",
            baseline.meta.scheduler,
            self.meta.scheduler,
            t.render()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{PaperScenario, PolicyKind};
    use harvest_core::config::SystemConfig;
    use harvest_core::system::simulate;
    use harvest_cpu::presets;
    use harvest_energy::predictor::OraclePredictor;
    use harvest_energy::storage::StorageSpec;
    use harvest_sim::piecewise::PiecewiseConstant;
    use harvest_sim::time::SimDuration;
    use harvest_task::task::Task;
    use harvest_task::taskset::TaskSet;

    fn observed_run() -> SimResult {
        let tasks = TaskSet::new(vec![Task::periodic_implicit(
            SimDuration::from_whole_units(10),
            2.0,
        )]);
        let profile = PiecewiseConstant::constant(1.0);
        let config = SystemConfig::new(
            presets::xscale(),
            StorageSpec::ideal(50.0),
            SimDuration::from_whole_units(200),
        )
        .with_sample_interval(SimDuration::from_whole_units(10))
        .with_trace()
        .with_metrics()
        .with_profiling();
        simulate(
            config,
            &tasks,
            profile.clone(),
            Box::new(harvest_core::policies::EaDvfsScheduler::new()),
            Box::new(OraclePredictor::new(profile)),
        )
    }

    #[test]
    fn artifact_round_trips_losslessly() {
        let r = observed_run();
        let art = RunArtifact::from_result(&r);
        assert_eq!(art.meta.schema, SCHEMA_VERSION);
        assert!(art.metrics.is_some() && art.profile.is_some());
        assert!(!art.timeline.energy.is_empty());
        assert!(!art.timeline.level.is_empty());
        assert!(!art.trace.is_empty());
        let jsonl = art.to_jsonl();
        assert!(jsonl.lines().count() > 4);
        let back = RunArtifact::from_jsonl(&jsonl).expect("parses");
        assert_eq!(back, art, "JSONL round-trip must be lossless");
    }

    #[test]
    fn schema_drift_is_rejected() {
        let r = observed_run();
        let mut art = RunArtifact::from_result(&r);
        art.meta.schema = SCHEMA_VERSION + 1;
        let err = RunArtifact::from_jsonl(&art.to_jsonl()).unwrap_err();
        assert!(err.contains("schema version"), "got: {err}");
        assert!(RunArtifact::from_jsonl("").is_err());
        assert!(RunArtifact::from_jsonl("{\"Energy\":{\"t\":0.0,\"value\":1.0}}").is_err());
    }

    #[test]
    fn level_timeline_tracks_started_and_idle() {
        let r = observed_run();
        let art = RunArtifact::from_result(&r);
        assert!(
            art.timeline.level.iter().any(|p| p.level >= 0),
            "some execution level appears"
        );
        // Change points only: no two consecutive equal levels.
        for w in art.timeline.level.windows(2) {
            assert_ne!(w[0].level, w[1].level);
        }
    }

    #[test]
    fn render_mentions_metrics_and_phases() {
        let r = observed_run();
        let art = RunArtifact::from_result(&r);
        let text = art.render();
        assert!(text.contains("engine.events"));
        assert!(text.contains("policy.decide"));
        assert!(text.contains("storage level over time"));
        assert!(text.contains("active DVFS level"));
    }

    #[test]
    fn diff_requires_and_uses_metrics() {
        let mut s = PaperScenario::new(0.4, 500.0);
        s.horizon_units = 2_000;
        let prefab = s.prefab(1);
        let a = RunArtifact::from_result(&s.run_prefab_observed(PolicyKind::Lsa, &prefab));
        let b = RunArtifact::from_result(&s.run_prefab_observed(PolicyKind::EaDvfs, &prefab));
        let text = b.render_diff(&a).expect("both have metrics");
        assert!(text.contains("sched.decisions"));
        let bare = RunArtifact {
            metrics: None,
            ..a.clone()
        };
        assert!(bare.render_diff(&a).is_err());
    }
}
