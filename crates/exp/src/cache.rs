//! Content-addressed on-disk cache of sweep trial results.
//!
//! The Fig. 5–9 evaluations are grids of thousands of independent
//! trials, each fully determined by `(scenario, policy, seed)` — the
//! simulator is deterministic. This module gives every such cell a
//! stable fingerprint and persists its [`TrialSummary`] (the handful of
//! numbers the figure drivers actually consume) under
//! `target/sweep-cache/`, so re-running a figure after an interruption,
//! or probing a capacity the `min_zero_miss_capacity` search already
//! visited in an earlier run, skips the simulation entirely.
//!
//! Integrity rules:
//!
//! * The cache key is the **canonical key text** (schema version +
//!   serialized scenario + policy name + seed), not just its hash: every
//!   entry stores the text and a lookup re-verifies it, so a fingerprint
//!   collision or a poisoned file can never substitute a foreign result.
//! * Entries that fail to parse, carry the wrong key, or are truncated
//!   are rejected and recomputed — a cache read never trusts the file.
//! * [`CACHE_SCHEMA_VERSION`] participates in the key text; bump it on
//!   any change to simulation semantics or to the summary layout, and
//!   every stale entry misses naturally.
//! * Sampled storage levels round-trip as `f64::to_bits` integers, so a
//!   warm-cache figure is bit-identical to a cold one.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::scenario::{PaperScenario, PolicyKind};
use harvest_core::result::SimResult;
use harvest_obs::io::{IoCounters, IoHealth, RealIo, RetryPolicy, StoreIo};

/// Version of the cached-trial contract. Participates in every key, so
/// bumping it invalidates all prior entries. Bump whenever simulation
/// semantics, scenario serialization, or the summary layout change.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// Environment variable gating the sweep cache (read by
/// [`SweepCache::from_env`]): unset, empty, or `0` disables; `1`
/// enables at the default `target/sweep-cache/`; any other value is
/// used as the cache directory path.
pub const SWEEP_CACHE_ENV: &str = "HARVEST_SWEEP_CACHE";

/// FNV-1a 64-bit, the workspace's standing content-hash choice. Public
/// so smoke tooling can digest figure outputs for equality checks.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// The stable identity of one sweep cell.
///
/// Holds the canonical key text — a versioned, serde-serialized record
/// of everything that determines the trial's outcome — plus its
/// fingerprint. Two keys are interchangeable exactly when their texts
/// are byte-equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialKey {
    text: String,
    fingerprint: u64,
}

thread_local! {
    /// Last scenario serialized on this thread, with its JSON. Key
    /// construction is on the warm probe path, and one figure grid
    /// builds thousands of keys over a handful of scenarios in runs of
    /// identical ones (the seed/policy axes vary faster), so a
    /// last-value memo turns the dominant cost — the serde `Value`-tree
    /// serialization — into an equality check plus a `String` clone.
    static SCENARIO_JSON_MEMO: std::cell::RefCell<Option<(PaperScenario, String)>> =
        const { std::cell::RefCell::new(None) };
}

/// The canonical JSON of `scenario`, memoized per thread. The text is
/// byte-identical to a fresh `serde_json::to_string`, so fingerprints
/// and stored key texts are unaffected.
fn scenario_json(scenario: &PaperScenario) -> String {
    SCENARIO_JSON_MEMO.with(|memo| {
        let mut memo = memo.borrow_mut();
        if let Some((cached, json)) = memo.as_ref() {
            if cached == scenario {
                return json.clone();
            }
        }
        let json = serde_json::to_string(scenario).expect("scenario serialization is infallible");
        *memo = Some((scenario.clone(), json.clone()));
        json
    })
}

impl TrialKey {
    /// Builds the key for `(scenario, policy, seed)` under the current
    /// [`CACHE_SCHEMA_VERSION`].
    pub fn new(scenario: &PaperScenario, policy: PolicyKind, seed: u64) -> Self {
        let text = format!(
            "v{CACHE_SCHEMA_VERSION}|{}|{}|{seed}",
            scenario_json(scenario),
            policy.name()
        );
        let fingerprint = fnv1a64(text.as_bytes());
        TrialKey { text, fingerprint }
    }

    /// The canonical key text (stored inside every cache entry).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// 64-bit content fingerprint of the key text; names the on-disk
    /// entry. Collisions are harmless (the stored text disambiguates)
    /// but cost a recompute.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// The figure-facing subset of a [`SimResult`], reduced to exactly what
/// the Fig. 5–9 drivers consume. Counts are stored raw and rates are
/// recomputed with the same integer-to-float arithmetic as
/// [`SimResult`], and sample levels are stored as `f64::to_bits`
/// integers, so a summary read back from disk reproduces the original
/// figures bit for bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialSummary {
    /// Jobs released within the horizon.
    pub released: u64,
    /// Jobs that completed by their deadline.
    pub completed_in_time: u64,
    /// Jobs that missed their deadline.
    pub missed: u64,
    /// Raw storage-level samples (`IEEE-754` bit patterns, in grid
    /// order), empty unless the run sampled.
    pub sample_level_bits: Vec<u64>,
}

impl TrialSummary {
    /// Extracts the summary from a full result.
    pub fn of(result: &SimResult) -> Self {
        TrialSummary {
            released: result.released() as u64,
            completed_in_time: result.completed_in_time() as u64,
            missed: result.missed() as u64,
            sample_level_bits: result.samples.iter().map(|&(_, v)| v.to_bits()).collect(),
        }
    }

    /// Deadline miss rate, mirroring [`SimResult::miss_rate`].
    pub fn miss_rate(&self) -> f64 {
        let decided = self.completed_in_time + self.missed;
        if decided == 0 {
            0.0
        } else {
            self.missed as f64 / decided as f64
        }
    }

    /// `true` if every decided job met its deadline.
    pub fn is_miss_free(&self) -> bool {
        self.missed == 0
    }

    /// Sample levels normalized by `capacity`, mirroring
    /// [`SimResult::normalized_samples`] (values only; the grid is
    /// implied by the scenario's sampling interval).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    pub fn normalized_sample_values(&self, capacity: f64) -> Vec<f64> {
        assert!(capacity > 0.0, "capacity must be positive");
        self.sample_level_bits
            .iter()
            .map(|&bits| f64::from_bits(bits) / capacity)
            .collect()
    }
}

/// On-disk entry layout: the key text for verification plus the payload.
#[derive(Debug, Serialize, Deserialize)]
struct CacheEntry {
    key: String,
    summary: TrialSummary,
}

/// Hit/miss accounting of one [`SweepCache`] over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups with no usable entry (absent or rejected).
    pub misses: u64,
    /// Entries rejected on integrity grounds (unparseable, truncated,
    /// or carrying a foreign key). A subset of `misses`.
    pub rejects: u64,
    /// Entries written.
    pub stores: u64,
}

impl CacheStats {
    /// Publishes the counters into a metrics sink under `prefix` (so
    /// `publish("store", ..)` yields `store.hits`, `store.misses`, ...),
    /// plus a `{prefix}.hit_rate` gauge when any lookup happened. Store
    /// accounting then renders alongside the engine's queue and pool
    /// metrics in one [`harvest_obs::MetricsRegistry`] snapshot.
    pub fn publish<S: harvest_obs::MetricsSink>(&self, prefix: &str, sink: &mut S) {
        sink.counter(&format!("{prefix}.hits"), self.hits);
        sink.counter(&format!("{prefix}.misses"), self.misses);
        sink.counter(&format!("{prefix}.rejects"), self.rejects);
        sink.counter(&format!("{prefix}.stores"), self.stores);
        let lookups = self.hits + self.misses;
        if lookups > 0 {
            sink.gauge(
                &format!("{prefix}.hit_rate"),
                self.hits as f64 / lookups as f64,
            );
        }
    }
}

/// A content-addressed store of [`TrialSummary`] values, one JSON file
/// per key under a cache directory. Shared immutably across sweep
/// workers — all counters are atomic and writes go through a
/// temp-file-plus-rename so concurrent readers never observe a torn
/// entry.
#[derive(Debug)]
pub struct SweepCache {
    dir: PathBuf,
    io: Arc<dyn StoreIo>,
    retry: RetryPolicy,
    counters: Arc<IoCounters>,
    hits: AtomicU64,
    misses: AtomicU64,
    rejects: AtomicU64,
    stores: AtomicU64,
    write_degraded: AtomicBool,
}

impl SweepCache {
    /// Opens (and creates) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::new_with(dir, RealIo::shared(), RetryPolicy::default())
    }

    /// [`new`](Self::new) with an explicit I/O backend and retry policy
    /// (fault injection in tests).
    ///
    /// # Errors
    ///
    /// Returns the IO error when the directory cannot be created.
    pub fn new_with(
        dir: impl Into<PathBuf>,
        io: Arc<dyn StoreIo>,
        retry: RetryPolicy,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        Ok(SweepCache {
            dir,
            io,
            retry,
            counters: Arc::new(IoCounters::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            write_degraded: AtomicBool::new(false),
        })
    }

    /// Builds the cache the environment asks for (see
    /// [`SWEEP_CACHE_ENV`]): `None` when disabled or unset. A directory
    /// that cannot be created degrades gracefully — a warning on
    /// stderr, then the sweep runs uncached; a sweep must not fail
    /// because its cache is unavailable. The warning fires on each
    /// healthy→failing *transition* (not once per process), so a later
    /// campaign re-probes a fixed directory and a later regression
    /// warns again.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var(SWEEP_CACHE_ENV).ok()?;
        let raw = raw.trim();
        if raw.is_empty() || raw == "0" {
            return None;
        }
        let dir = if raw == "1" {
            PathBuf::from("target/sweep-cache")
        } else {
            PathBuf::from(raw)
        };
        // Tracks whether the last open attempt failed, so the warning
        // fires on transitions instead of once-ever.
        static FAILING: AtomicBool = AtomicBool::new(false);
        match SweepCache::new(&dir) {
            Ok(cache) => {
                if FAILING.swap(false, Ordering::Relaxed) {
                    eprintln!(
                        "note: sweep cache at {} is reachable again; caching resumed",
                        dir.display()
                    );
                }
                Some(cache)
            }
            Err(e) => {
                if !FAILING.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "warning: cannot open sweep cache at {} ({e}); running uncached",
                        dir.display()
                    );
                }
                None
            }
        }
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &TrialKey) -> PathBuf {
        self.dir.join(format!("{:016x}.json", key.fingerprint()))
    }

    /// Looks `key` up. Any unreadable, unparseable, or key-mismatched
    /// entry counts as a miss (and a reject) — never as data.
    pub fn get(&self, key: &TrialKey) -> Option<TrialSummary> {
        let path = self.entry_path(key);
        let text = match self.io.read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match serde_json::from_str::<CacheEntry>(&text) {
            Ok(entry) if entry.key == key.text() => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.summary)
            }
            _ => {
                // Truncated write, foreign key behind a fingerprint
                // collision, or deliberate poisoning: reject, recompute.
                self.rejects.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists `summary` under `key` (temp file + rename, so readers
    /// see old-or-new, never torn). An IO failure never fails the run:
    /// the first one warns on stderr and flips the cache into
    /// write-degraded mode — reads keep working (a read-only cache
    /// directory still answers hits), further writes are skipped.
    pub fn put(&self, key: &TrialKey, summary: &TrialSummary) {
        if self.write_degraded.load(Ordering::Relaxed) {
            return;
        }
        let entry = CacheEntry {
            key: key.text().to_owned(),
            summary: summary.clone(),
        };
        let Ok(json) = serde_json::to_string(&entry) else {
            return;
        };
        let path = self.entry_path(key);
        // Writer-unique temp name: concurrent workers computing the same
        // cell must not clobber each other's half-written temp file.
        let tmp = self.dir.join(format!(
            "{:016x}.{:?}.tmp",
            key.fingerprint(),
            std::thread::current().id()
        ));
        let result = self.retry.run(&self.counters, || {
            let mut f = self.io.create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.flush()?;
            drop(f);
            self.io.rename(&tmp, &path)
        });
        match result {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                let _ = self.io.remove_file(&tmp);
                self.counters.note_degraded();
                if !self.write_degraded.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "warning: sweep cache at {} rejected a write ({e}); \
                         continuing without caching new results",
                        self.dir.display()
                    );
                }
            }
        }
    }

    /// Lifetime hit/miss counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of this cache's recovery accounting (retries taken,
    /// degradations).
    pub fn io_health(&self) -> IoHealth {
        self.counters.snapshot()
    }

    /// Clears a sticky write degradation so the next campaign re-probes
    /// the directory instead of staying read-only for process lifetime.
    pub fn reprobe(&self) {
        self.write_degraded.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "harvest-sweep-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn summary() -> TrialSummary {
        TrialSummary {
            released: 40,
            completed_in_time: 30,
            missed: 10,
            sample_level_bits: vec![1.0f64.to_bits(), 0.25f64.to_bits()],
        }
    }

    #[test]
    fn scenario_json_memo_matches_fresh_serialization() {
        // Alternate between two scenarios so every call after the first
        // exercises both the memo hit and the memo replacement path;
        // the memoized text must stay byte-identical to a direct
        // serialization (stored keys depend on it).
        let a = PaperScenario::new(0.4, 500.0);
        let b = PaperScenario::new(0.8, 200.0);
        for scenario in [&a, &b, &a, &a, &b] {
            assert_eq!(
                scenario_json(scenario),
                serde_json::to_string(scenario).unwrap()
            );
        }
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes_cells() {
        let s = PaperScenario::new(0.4, 500.0);
        let a = TrialKey::new(&s, PolicyKind::EaDvfs, 7);
        let b = TrialKey::new(&s, PolicyKind::EaDvfs, 7);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let other_seed = TrialKey::new(&s, PolicyKind::EaDvfs, 8);
        let other_policy = TrialKey::new(&s, PolicyKind::Lsa, 7);
        let other_cap = TrialKey::new(&PaperScenario::new(0.4, 501.0), PolicyKind::EaDvfs, 7);
        for other in [&other_seed, &other_policy, &other_cap] {
            assert_ne!(a.text(), other.text());
            assert_ne!(a.fingerprint(), other.fingerprint());
        }
        assert!(a.text().starts_with(&format!("v{CACHE_SCHEMA_VERSION}|")));
    }

    #[test]
    fn round_trip_preserves_summary_bits() {
        let dir = scratch_dir("roundtrip");
        let cache = SweepCache::new(&dir).unwrap();
        let key = TrialKey::new(&PaperScenario::new(0.8, 100.0), PolicyKind::Lsa, 3);
        assert_eq!(cache.get(&key), None);
        let s = summary();
        cache.put(&key, &s);
        assert_eq!(cache.get(&key), Some(s.clone()));
        assert_eq!(
            cache.get(&key).unwrap().normalized_sample_values(2.0),
            vec![0.5, 0.125]
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (2, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_rates_mirror_sim_result() {
        let s = summary();
        assert_eq!(s.miss_rate(), 10.0 / 40.0);
        assert!(!s.is_miss_free());
        let clean = TrialSummary {
            missed: 0,
            ..summary()
        };
        assert!(clean.is_miss_free());
        let undecided = TrialSummary {
            completed_in_time: 0,
            missed: 0,
            ..summary()
        };
        assert_eq!(undecided.miss_rate(), 0.0);
    }

    #[test]
    fn poisoned_and_truncated_entries_are_rejected() {
        let dir = scratch_dir("poison");
        let cache = SweepCache::new(&dir).unwrap();
        let key = TrialKey::new(&PaperScenario::new(0.4, 500.0), PolicyKind::EaDvfs, 0);
        cache.put(&key, &summary());
        let path = dir.join(format!("{:016x}.json", key.fingerprint()));

        // Truncate: reject.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.get(&key), None, "truncated entry must be rejected");

        // Valid JSON under a foreign key: reject.
        let foreign = CacheEntry {
            key: "v1|something-else|edf|9".to_owned(),
            summary: summary(),
        };
        std::fs::write(&path, serde_json::to_string(&foreign).unwrap()).unwrap();
        assert_eq!(cache.get(&key), None, "foreign key must be rejected");

        // Not JSON at all: reject.
        std::fs::write(&path, b"{ not json").unwrap();
        assert_eq!(cache.get(&key), None);

        assert_eq!(cache.stats().rejects, 3);

        // Recompute-and-store heals the entry.
        cache.put(&key, &summary());
        assert_eq!(cache.get(&key), Some(summary()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unopenable_cache_dir_degrades_to_uncached() {
        use crate::test_support::with_env;
        // Root ignores permission bits, so "unwritable" is staged as a
        // plain file standing where a directory must go: create_dir_all
        // on `<file>/sub` fails for any uid.
        let blocker = scratch_dir("blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let dir = blocker.join("sub");
        let dir_str = dir.to_str().unwrap().to_owned();
        with_env(&[(SWEEP_CACHE_ENV, Some(dir_str.as_str()))], || {
            assert!(
                SweepCache::from_env().is_none(),
                "an unopenable cache dir must disable caching, not fail"
            );
        });
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn failed_writes_degrade_without_failing_the_run() {
        let dir = scratch_dir("write-degraded");
        let cache = SweepCache::new(&dir).unwrap();
        // Yank the directory out from under the cache: every write
        // now fails, which must degrade (once) instead of erroring.
        std::fs::remove_dir_all(&dir).unwrap();
        let key = TrialKey::new(&PaperScenario::new(0.4, 500.0), PolicyKind::Edf, 1);
        cache.put(&key, &summary());
        cache.put(&key, &summary());
        assert_eq!(cache.stats().stores, 0, "no write can have landed");
        assert_eq!(cache.get(&key), None, "reads degrade to misses");
    }

    #[test]
    fn from_env_is_read_under_the_shared_lock() {
        use crate::test_support::with_env;
        let dir = scratch_dir("fromenv");
        let dir_str = dir.to_str().unwrap().to_owned();
        with_env(&[(SWEEP_CACHE_ENV, None)], || {
            assert!(SweepCache::from_env().is_none());
        });
        with_env(&[(SWEEP_CACHE_ENV, Some("0"))], || {
            assert!(SweepCache::from_env().is_none());
        });
        with_env(&[(SWEEP_CACHE_ENV, Some(""))], || {
            assert!(SweepCache::from_env().is_none());
        });
        with_env(&[(SWEEP_CACHE_ENV, Some(dir_str.as_str()))], || {
            let cache = SweepCache::from_env().expect("explicit dir enables the cache");
            assert_eq!(cache.dir(), dir.as_path());
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
